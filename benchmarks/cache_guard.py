"""CI guard: the planner caches must actually pay for themselves.

Plans a 20-request mix (the five Fig. 7 models cycled) on Kirin 990
twice with the same planner instance:

* **cold** — first plan; fills the profile, partition, objective and
  plan caches while doing the full Algorithm 1-3 pass;
* **warm** — identical request mix again; must be served from the
  plan cache (fingerprint hit, zero re-simulations).

The guard fails when the warm re-plan is not at least
``MIN_SPEEDUP``x faster than the cold plan, or when the warm pass runs
any event-driven simulation at all (``objective_evaluations`` must stay
flat — that is the memoization contract, not a tuning target).

A second check plans the same mix with ``PlannerConfig.uncached()`` and
asserts the cached cold pass is not slower than the uncached one beyond
``MAX_COLD_OVERHEAD`` — the cache bookkeeping itself must stay cheap.

A third check pins the foundation both caches stand on: the committed
plan is executed twice through the discrete-event engine
(:mod:`repro.runtime.engine`) and the makespans must be identical —
``ObjectiveCache`` memoizes simulation outputs by plan fingerprint, so
a non-deterministic engine would serve stale-by-construction entries.

Timers come from :mod:`repro.obs.bench` (the unified harness), and
``--json PATH`` writes the measurements as ``hetero2pipe.bench.v1``
rows so the guard's numbers land in the same trend files as
``hetero2pipe bench``.

Run directly (exit code 0/1, used by the ``planner-cache-guard`` CI
job)::

    PYTHONPATH=src python benchmarks/cache_guard.py [--json PATH]
"""

import sys

from repro import obs
from repro.core.planner import Hetero2PipePlanner, PlannerConfig
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs import bench
from repro.runtime.executor import execute_plan
from repro.util import approx_eq

MODEL_MIX = ("yolov4", "bert", "squeezenet", "resnet50", "vit")
SOC = "kirin990"
NUM_REQUESTS = 20
MIN_SPEEDUP = 50.0  # warm re-plan must be >= 50x faster than cold
MAX_COLD_OVERHEAD = 0.10  # cached cold plan <= uncached + 10% + slack
ABS_SLACK_S = 0.050


def measure():
    soc = get_soc(SOC)
    models = [
        get_model(MODEL_MIX[i % len(MODEL_MIX)]) for i in range(NUM_REQUESTS)
    ]

    with obs.use_recorder(obs.InMemoryRecorder()) as rec:
        planner = Hetero2PipePlanner(soc)
        cold_s = bench.time_call_s(lambda: planner.plan(models))
        cold_evals = rec.metrics.counter("objective_evaluations").value
        warm_s = bench.time_call_s(lambda: planner.plan(models))
        warm_evals = (
            rec.metrics.counter("objective_evaluations").value - cold_evals
        )
        plan_hits = rec.metrics.counter("plan_cache_hits").value

    uncached = Hetero2PipePlanner(soc, PlannerConfig.uncached())
    uncached_s = bench.time_call_s(lambda: uncached.plan(models))

    # Engine-path determinism: two runs of the committed plan through
    # the event engine must agree exactly, or the objective/plan caches
    # would memoize outputs that a re-simulation could not reproduce.
    plan = planner.plan(models).plan
    first_ms = execute_plan(plan, record=False).makespan_ms
    second_ms = execute_plan(plan, record=False).makespan_ms
    engine_deterministic = approx_eq(first_ms, second_ms)
    return cold_s, warm_s, uncached_s, warm_evals, plan_hits, engine_deterministic


def _write_rows(path, cold_s, warm_s, uncached_s):
    rows = [
        bench.bench_row(scenario, SOC, [value_s * 1e3])
        for scenario, value_s in (
            ("guard.cache.cold", cold_s),
            ("guard.cache.warm", warm_s),
            ("guard.cache.uncached", uncached_s),
        )
    ]
    bench.write_bench_json(path, bench.bench_doc(rows))


def main():
    json_path = None
    argv = sys.argv[1:]
    if argv[:1] == ["--json"] and len(argv) == 2:
        json_path = argv[1]
    elif argv:
        print(f"usage: {sys.argv[0]} [--json PATH]", file=sys.stderr)
        return 2
    (
        cold_s,
        warm_s,
        uncached_s,
        warm_evals,
        plan_hits,
        engine_deterministic,
    ) = measure()
    if json_path:
        _write_rows(json_path, cold_s, warm_s, uncached_s)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    cold_limit_s = uncached_s * (1.0 + MAX_COLD_OVERHEAD) + ABS_SLACK_S
    print(f"planner.plan, {NUM_REQUESTS}-request mix on {SOC}:")
    print(f"  uncached cold     : {uncached_s * 1e3:9.2f} ms")
    print(f"  cached cold       : {cold_s * 1e3:9.2f} ms "
          f"(budget {cold_limit_s * 1e3:.2f} ms)")
    print(f"  cached warm       : {warm_s * 1e3:9.2f} ms "
          f"({speedup:,.0f}x, need >= {MIN_SPEEDUP:.0f}x)")
    print(f"  warm simulations  : {warm_evals} (need 0), "
          f"plan cache hits: {plan_hits}")
    failed = False
    if warm_evals != 0:
        print("FAIL: warm re-plan re-ran the event-driven simulation")
        failed = True
    if plan_hits < 1:
        print("FAIL: warm re-plan missed the plan cache")
        failed = True
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: warm re-plan only {speedup:.1f}x faster than cold")
        failed = True
    if cold_s > cold_limit_s:
        print("FAIL: cache bookkeeping slows the cold planning path")
        failed = True
    if not engine_deterministic:
        print("FAIL: event-engine re-simulation of the committed plan "
              "diverged — the objective/plan caches cannot be trusted")
        failed = True
    if failed:
        return 1
    print("OK: plan cache serves repeats, bookkeeping within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
