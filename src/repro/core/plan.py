"""Pipeline plan data structures shared by the planner and the runtime.

A :class:`PipelinePlan` is the planner's output: an ordered sequence of
requests (models), each horizontally partitioned into per-stage layer
slices over the SoC's ordered processors.  Stage ``k`` of request ``i``
executes on processor ``k``; requests flow down the stage order, so
stage ``k`` of request ``i`` co-runs with stage ``k'`` of request ``i'``
whenever ``i + k == i' + k'`` (the same execution *diagonal*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..profiling.profiler import INFEASIBLE, ModelProfile


@dataclass
class StageAssignment:
    """Mutable per-request partition: one slice (or None) per stage.

    Work stealing (Algorithm 3) adjusts these slices in place.
    """

    profile: ModelProfile
    slices: List[Optional[Tuple[int, int]]]

    def __post_init__(self) -> None:
        self.validate()

    @property
    def model_name(self) -> str:
        return self.profile.model.name

    @property
    def num_stages(self) -> int:
        return len(self.slices)

    def validate(self) -> None:
        """Check the slices form a contiguous, complete, in-order cover.

        Raises:
            ValueError: if slices overlap, leave gaps, or are reordered.
        """
        expected = 0
        n = self.profile.model.num_layers
        for k, slc in enumerate(self.slices):
            if slc is None:
                continue
            start, end = slc
            if start != expected:
                raise ValueError(
                    f"{self.model_name}: stage {k} starts at layer {start}, "
                    f"expected {expected}"
                )
            if end < start or end >= n:
                raise ValueError(
                    f"{self.model_name}: stage {k} has invalid slice {slc}"
                )
            expected = end + 1
        if expected != n:
            raise ValueError(
                f"{self.model_name}: slices cover {expected} of {n} layers"
            )

    def stage_time_ms(self, k: int, processors: Sequence[ProcessorSpec]) -> float:
        """Cost of stage ``k`` (exec + boundary copy), 0.0 when empty."""
        slc = self.slices[k]
        if slc is None:
            return 0.0
        next_proc = processors[k + 1] if k + 1 < len(processors) else None
        return self.profile.slice_cost_ms(processors[k], slc[0], slc[1], next_proc)

    def stage_times_ms(self, processors: Sequence[ProcessorSpec]) -> List[float]:
        return [self.stage_time_ms(k, processors) for k in range(self.num_stages)]

    def total_time_ms(self, processors: Sequence[ProcessorSpec]) -> float:
        """End-to-end pipeline latency of this single request."""
        return sum(self.stage_times_ms(processors))

    def is_feasible(self, processors: Sequence[ProcessorSpec]) -> bool:
        """All occupied stages can actually execute their slice."""
        for k, slc in enumerate(self.slices):
            if slc is None:
                continue
            if not self.profile.feasible(processors[k], slc[0], slc[1]):
                return False
        return True

    def working_set_bytes(self) -> float:
        """Peak resident footprint across the request's stages."""
        return sum(
            self.profile.working_set_bytes(s[0], s[1])
            for s in self.slices
            if s is not None
        )

    def copy(self) -> "StageAssignment":
        return StageAssignment(profile=self.profile, slices=list(self.slices))


@dataclass
class PipelinePlan:
    """Planner output: ordered, partitioned requests over an SoC pipeline.

    Attributes:
        soc: Target platform.
        processors: Pipeline stages in execution order.
        assignments: One :class:`StageAssignment` per request, in the
            (possibly re-ordered) execution order.
        order: Mapping from execution position to the original request
            index (identity when no mitigation re-ordering happened).
    """

    soc: SocSpec
    processors: Tuple[ProcessorSpec, ...]
    assignments: List[StageAssignment]
    order: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.order:
            self.order = tuple(range(len(self.assignments)))
        if len(self.order) != len(self.assignments):
            raise ValueError("order and assignments must have equal length")

    @property
    def num_requests(self) -> int:
        return len(self.assignments)

    @property
    def depth(self) -> int:
        return len(self.processors)

    def stage_time_matrix(self) -> List[List[float]]:
        """T[i][k]: solo cost of request i's stage k (0 when empty)."""
        return [a.stage_times_ms(self.processors) for a in self.assignments]

    def validate(self) -> None:
        for a in self.assignments:
            a.validate()
            if not a.is_feasible(self.processors):
                raise ValueError(
                    f"plan places an unsupported layer: {a.model_name}"
                )

    def copy(self) -> "PipelinePlan":
        return PipelinePlan(
            soc=self.soc,
            processors=self.processors,
            assignments=[a.copy() for a in self.assignments],
            order=self.order,
        )
