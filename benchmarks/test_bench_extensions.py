"""Extension and design-choice ablation benchmarks.

Covers the knobs DESIGN.md calls out beyond the paper's own figures:
energy accounting, windowed streaming planning, lightweight-request
coalescing, and the exact-vs-fast horizontal DP trade-off.
"""

import pytest

from repro.core.online import StreamingPlanner
from repro.core.partition import (
    make_slice_cost,
    min_makespan_partition,
    min_makespan_partition_fast,
)
from repro.experiments import ext_energy
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler
from repro.workloads.generator import arrival_times_ms


def test_bench_ext_energy(run_once):
    rows = run_once(ext_energy.run, num_combinations=6)
    print("\n" + ext_energy.render(rows))
    by_scheme = {r.scheme: r for r in rows}
    # Pipelined schemes beat serial CPU on energy, not just latency.
    assert (
        by_scheme["h2p"].mean_energy_per_inference_mj
        < by_scheme["mnn"].mean_energy_per_inference_mj
    )
    assert (
        by_scheme["h2p"].mean_energy_per_inference_mj
        <= by_scheme["pipe_it"].mean_energy_per_inference_mj
    )


def test_bench_streaming_window_sizes(run_once):
    """Ablation: planning-window size vs stream latency (Sec. V remark).

    Two regimes: with all requests available up front, a larger window
    gives the planner more to balance and wins on makespan; with
    staggered arrivals, window-based planning must wait for its last
    member, so small windows win on responsiveness — the frequency
    trade-off the paper's complexity discussion alludes to.
    """
    soc = get_soc("kirin990")
    stream = [
        get_model(n)
        for n in (
            "mobilenetv2", "resnet50", "squeezenet", "googlenet",
            "mobilenetv2", "vit", "squeezenet", "resnet50",
            "mobilenetv2", "googlenet", "squeezenet", "vit",
        )
    ]
    staggered = arrival_times_ms(len(stream), 15.0)

    def sweep():
        out = {}
        for window in (2, 4, 12):
            planner = StreamingPlanner(soc, window_size=window)
            out[window] = {
                "batch": planner.run(stream),
                "stream": planner.run(stream, staggered),
            }
        return out

    results = run_once(sweep)
    print("\nwindow  batch_makespan  stream_makespan  stream_mean_latency")
    for window, res in sorted(results.items()):
        print(
            f"{window:6d}  {res['batch'].makespan_ms:14.1f}  "
            f"{res['stream'].makespan_ms:15.1f}  "
            f"{res['stream'].mean_latency_ms():19.1f}"
        )
    # Batch regime: whole-stream planning never loses to tiny windows.
    assert (
        results[12]["batch"].makespan_ms
        <= results[2]["batch"].makespan_ms * 1.05
    )
    # Streaming regime: waiting for a 12-request window costs mean
    # latency vs dispatching every 2 requests.
    assert (
        results[2]["stream"].mean_latency_ms()
        < results[12]["stream"].mean_latency_ms()
    )


def test_bench_batch_coalescing(run_once):
    """Ablation: Appendix D coalescing on a lightweight-heavy stream."""
    soc = get_soc("kirin990")
    stream = [get_model("mobilenetv2")] * 9 + [get_model("bert")] + [
        get_model("squeezenet")
    ] * 6

    def compare():
        plain = StreamingPlanner(soc, window_size=len(stream)).run(stream)
        coalesced = StreamingPlanner(
            soc,
            window_size=len(stream),
            coalesce_batches=True,
            max_batch=16,
        ).run(stream)
        return plain, coalesced

    plain, coalesced = run_once(compare)
    print(f"\nplain     : {plain.makespan_ms:8.1f} ms")
    print(f"coalesced : {coalesced.makespan_ms:8.1f} ms")
    assert coalesced.makespan_ms <= plain.makespan_ms * 1.10


def test_bench_dp_exact_vs_fast(run_once):
    """Ablation: exact O(n^2 K) DP vs the monotonicity-accelerated one.

    On copy-free (monotone) costs the two agree; the bench reports their
    planning-time ratio over the whole zoo.
    """
    import time

    soc = get_soc("kirin990")
    profiler = SocProfiler(soc)
    profiles = [
        profiler.profile(get_model(n))
        for n in ("vgg16", "bert", "vit", "yolov4", "inceptionv4")
    ]

    def run_both():
        out = []
        for profile in profiles:
            cost = make_slice_cost(profile, soc.processors, include_copy=False)
            n = profile.model.num_layers
            t0 = time.perf_counter()
            exact, _ = min_makespan_partition(n, soc.num_processors, cost)
            t1 = time.perf_counter()
            fast, _ = min_makespan_partition_fast(n, soc.num_processors, cost)
            t2 = time.perf_counter()
            out.append((profile.model.name, exact, fast, t1 - t0, t2 - t1))
        return out

    rows = run_once(run_both)
    print("\nmodel          exact_ms_result  fast_ms_result  exact_s    fast_s")
    for name, exact, fast, t_exact, t_fast in rows:
        print(f"{name:14s} {exact:15.2f} {fast:15.2f} {t_exact:9.5f} {t_fast:9.5f}")
        assert exact == pytest.approx(fast)
