"""Re-implementations of the paper's comparison schemes."""

from .annealing import AnnealingConfig, anneal_plan
from .band import (
    BandMapping,
    execute_band,
    plan_band,
    plan_band_contention_aware,
    segment_by_npu_support,
)
from .ulayer import (
    ulayer_model_latency_ms,
    ulayer_sequence_latency_ms,
    ulayer_speedup_over_cpu,
)
from .exhaustive import exhaustive_plan
from .mnn_serial import plan_mnn_serial, serial_latency_ms
from .pipe_it import local_search_split, plan_pipe_it

__all__ = [
    "AnnealingConfig",
    "anneal_plan",
    "BandMapping",
    "execute_band",
    "plan_band",
    "plan_band_contention_aware",
    "ulayer_model_latency_ms",
    "ulayer_sequence_latency_ms",
    "ulayer_speedup_over_cpu",
    "segment_by_npu_support",
    "exhaustive_plan",
    "plan_mnn_serial",
    "serial_latency_ms",
    "local_search_split",
    "plan_pipe_it",
]
