"""Streaming drift detection over prediction residuals.

:mod:`repro.obs.accuracy` produces per-slice residuals; this module
watches them *online* and decides when the planner's model has stopped
describing reality.  Two classic detectors run side by side per key
(one pair per processor and per model):

* **EWMA** (:class:`EwmaDetector`) — an exponentially-weighted moving
  average of the relative residual; fires when the smoothed error
  exceeds a threshold.  Catches sustained level shifts fast.
* **CUSUM** (:class:`CusumDetector`) — tabular cumulative sums with a
  slack ``k``; fires when the one-sided cumulative drift exceeds ``h``.
  Catches slow ramps the EWMA's smoothing can hide.

:class:`DriftMonitor` multiplexes both over the residual stream, keyed
by processor and by model, emits typed
:class:`~repro.obs.events.DriftDetected` provenance events through the
recorder, and invokes registered *replan triggers* — the hook
``StreamingPlanner`` uses to invalidate planner caches and re-profile
before the next contention window.

Detectors are tuned for *relative* residuals (fractions, not ms): on a
clean run the planner's predictions are exact (the objective and the
executor share one simulator), so the stream sits at 0.0 and any
sustained deviation is genuine environment drift (thermal throttling, a
co-runner outside the plan, device aging) rather than model noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .events import DriftDetected
from .recorder import add, emit
from .accuracy import ResidualReport, SliceResidual


@dataclass
class EwmaDetector:
    """Exponentially-weighted moving average level detector.

    Args:
        alpha: Smoothing weight of the newest sample.
        threshold: Fire when ``|ewma| > threshold`` (relative error).
        min_samples: Samples required before the detector may fire.
    """

    alpha: float = 0.3
    threshold: float = 0.15
    min_samples: int = 3
    value: float = 0.0
    samples: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    @property
    def statistic(self) -> float:
        return self.value

    def observe(self, x: float) -> bool:
        """Consume one residual; True when the detector fires."""
        self.samples += 1
        if self.samples == 1:
            self.value = x
        else:
            self.value = self.alpha * x + (1.0 - self.alpha) * self.value
        return self.samples >= self.min_samples and abs(self.value) > self.threshold

    def reset(self) -> None:
        self.value = 0.0
        self.samples = 0


@dataclass
class CusumDetector:
    """Two-sided tabular CUSUM drift detector.

    Args:
        slack: Per-sample allowance ``k`` — drift smaller than this is
            absorbed, so benign jitter never accumulates.
        threshold: Decision interval ``h``; fire when either one-sided
            cumulative sum exceeds it.
        min_samples: Samples required before the detector may fire.
    """

    slack: float = 0.05
    threshold: float = 0.5
    min_samples: int = 3
    positive: float = 0.0
    negative: float = 0.0
    samples: int = 0

    def __post_init__(self) -> None:
        if self.slack < 0:
            raise ValueError("slack must be >= 0")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    @property
    def statistic(self) -> float:
        return max(self.positive, self.negative)

    def observe(self, x: float) -> bool:
        """Consume one residual; True when either side trips."""
        self.samples += 1
        self.positive = max(0.0, self.positive + x - self.slack)
        self.negative = max(0.0, self.negative - x - self.slack)
        return self.samples >= self.min_samples and (
            self.positive > self.threshold or self.negative > self.threshold
        )

    def reset(self) -> None:
        self.positive = 0.0
        self.negative = 0.0
        self.samples = 0


#: A replan/re-profile trigger: called once per fired detection.
DriftCallback = Callable[[DriftDetected], None]


@dataclass
class _KeyedDetectors:
    ewma: EwmaDetector
    cusum: CusumDetector


class DriftMonitor:
    """Per-processor / per-model drift detection over residual streams.

    One EWMA + CUSUM pair is lazily created per ``(scope, key)`` —
    ``("processor", "gpu")``, ``("model", "resnet50")`` — and fed every
    slice residual touching that key.  When either detector fires the
    monitor emits a :class:`~repro.obs.events.DriftDetected` provenance
    event, invokes every registered trigger, and resets that key's
    detectors (built-in cooldown: the same key cannot re-fire until it
    has re-accumulated ``min_samples`` fresh residuals).

    Args:
        ewma_alpha: EWMA smoothing weight.
        ewma_threshold: EWMA fire threshold (relative error).
        cusum_slack: CUSUM per-sample slack ``k``.
        cusum_threshold: CUSUM decision interval ``h``.
        min_samples: Minimum residuals per key before firing.
    """

    def __init__(
        self,
        ewma_alpha: float = 0.3,
        ewma_threshold: float = 0.15,
        cusum_slack: float = 0.05,
        cusum_threshold: float = 0.5,
        min_samples: int = 3,
    ) -> None:
        self._ewma_args = (ewma_alpha, ewma_threshold, min_samples)
        self._cusum_args = (cusum_slack, cusum_threshold, min_samples)
        self._detectors: Dict[Tuple[str, str], _KeyedDetectors] = {}
        self._callbacks: List[DriftCallback] = []
        self.events: List[DriftDetected] = []

    def on_drift(self, callback: DriftCallback) -> None:
        """Register a replan/re-profile trigger."""
        self._callbacks.append(callback)

    def keys(self) -> List[Tuple[str, str]]:
        """Every (scope, key) pair that has consumed residuals."""
        return sorted(self._detectors)

    def detectors_for(self, scope: str, key: str) -> _KeyedDetectors:
        """The (lazily created) detector pair of one key."""
        pair = self._detectors.get((scope, key))
        if pair is None:
            alpha, ewma_threshold, min_samples = self._ewma_args
            slack, cusum_threshold, _ = self._cusum_args
            pair = _KeyedDetectors(
                ewma=EwmaDetector(
                    alpha=alpha,
                    threshold=ewma_threshold,
                    min_samples=min_samples,
                ),
                cusum=CusumDetector(
                    slack=slack,
                    threshold=cusum_threshold,
                    min_samples=min_samples,
                ),
            )
            self._detectors[(scope, key)] = pair
        return pair

    def observe_residual(
        self, residual: SliceResidual, window: int = -1
    ) -> List[DriftDetected]:
        """Feed one slice residual; returns any detections it caused."""
        fired: List[DriftDetected] = []
        keys = [("processor", residual.processor)]
        if residual.model:
            keys.append(("model", residual.model))
        for scope, key in keys:
            event = self._observe_key(
                scope, key, residual.relative_error, window
            )
            if event is not None:
                fired.append(event)
        return fired

    def observe_report(self, report: ResidualReport) -> List[DriftDetected]:
        """Feed every slice residual of one run/window, in slice order."""
        fired: List[DriftDetected] = []
        for residual in report.slices:
            fired.extend(self.observe_residual(residual, window=report.window))
        return fired

    def _observe_key(
        self, scope: str, key: str, x: float, window: int
    ) -> Optional[DriftDetected]:
        pair = self.detectors_for(scope, key)
        detector = ""
        statistic = threshold = 0.0
        if pair.ewma.observe(x):
            detector = "ewma"
            statistic = pair.ewma.statistic
            threshold = pair.ewma.threshold
        if pair.cusum.observe(x) and not detector:
            detector = "cusum"
            statistic = pair.cusum.statistic
            threshold = pair.cusum.threshold
        if not detector:
            return None
        event = DriftDetected(
            scope=scope,
            key=key,
            detector=detector,
            statistic=statistic,
            threshold=threshold,
            samples=max(pair.ewma.samples, pair.cusum.samples),
            window=window,
        )
        pair.ewma.reset()
        pair.cusum.reset()
        self.events.append(event)
        emit(event)
        add("drift_detections")
        for callback in self._callbacks:
            callback(event)
        return event

    def reset(self) -> None:
        """Drop all detector state (fired events are kept)."""
        self._detectors.clear()


def residual_stream(
    reports: Sequence[ResidualReport],
) -> List[SliceResidual]:
    """Flatten reports into one chronological residual stream."""
    out: List[SliceResidual] = []
    for report in reports:
        out.extend(report.slices)
    return out
