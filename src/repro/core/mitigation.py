"""Contention mitigation by request re-ordering (P3, Algorithm 2).

High-contention requests closer than K positions apart in the input
sequence will co-run on the pipeline and interfere.  The mitigation
relocates Low-contention requests in between them, choosing relocations
of minimum total displacement by solving a Linear Assignment Problem
with the Kuhn-Munkres algorithm (Eq. 9-10).

The procedure mirrors Algorithm 2: while conflicting High pairs remain
and assignable Low requests exist, build the cost matrix (``inf`` for
infeasible moves per Eq. 10), solve the LAP, apply the moves, repeat.
Each applied batch strictly reduces the total interleaving deficit, so
the loop terminates; it also stops early when "there is no sufficient L
for selection".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .. import obs
from .assignment import kuhn_munkres
from .window import conflicting_high_pairs, deficit, is_mitigated, violating_windows


@dataclass(frozen=True)
class Move:
    """One applied relocation: request ``item`` moved between an H pair."""

    item: int
    source_position: int
    target_position: int

    @property
    def cost(self) -> int:
        """Displacement distance |j - i| (Eq. 10)."""
        return abs(self.target_position - self.source_position)


@dataclass(frozen=True)
class MitigationResult:
    """Outcome of Algorithm 2 on one request sequence.

    Attributes:
        order: Permutation of the original indices (new execution order).
        moves: Relocations applied, in application order.
        mitigated: True when no window holds >= 2 High requests anymore.
        total_cost: Summed displacement of all moves.
    """

    order: Tuple[int, ...]
    moves: Tuple[Move, ...]
    mitigated: bool
    total_cost: int

    def apply(self, sequence: Sequence) -> List:
        """Reorder an arbitrary parallel sequence by the computed order."""
        if len(sequence) != len(self.order):
            raise ValueError(
                f"sequence length {len(sequence)} != order length {len(self.order)}"
            )
        return [sequence[i] for i in self.order]


def _labels_of(order: Sequence[int], base_labels: Sequence[bool]) -> List[bool]:
    return [base_labels[i] for i in order]


def _creates_new_source_conflict(
    labels: List[bool],
    before_pairs: Sequence[Tuple[int, int]],
    remove_pos: int,
    k: int,
) -> bool:
    """Whether removing the Low request at ``remove_pos`` brings two High
    requests into conflict that were previously separated.

    Depends only on the current label sequence and the removal position
    — not on the relocation slot — so callers evaluate it once per Low
    position, not once per cost-matrix column.

    The comparison is by *pair set*, not conflict count: removing one
    element shifts every position after it down by one, so the
    pre-removal pairs are re-indexed into post-removal coordinates
    first, and any post-removal conflict outside that adjusted set is a
    newly created one.  A count comparison would miss a removal that
    swaps one conflict for a different one at equal count, and a naive
    (unadjusted) set comparison would flag every surviving conflict past
    ``remove_pos`` as new.
    """
    trial = labels[:remove_pos] + labels[remove_pos + 1 :]
    after = set(conflicting_high_pairs(trial, k))
    adjusted_before = {
        (u - (1 if u > remove_pos else 0), v - (1 if v > remove_pos else 0))
        for (u, v) in before_pairs
    }
    return bool(after - adjusted_before)


def mitigate_sequence(
    labels: Sequence[bool], k: int, max_rounds: int | None = None
) -> MitigationResult:
    """Run Algorithm 2 on a High/Low label sequence.

    Args:
        labels: True for High-contention requests, in input order.
        k: Pipeline depth (contention-window size).
        max_rounds: Safety bound on LAP rounds; defaults to ``len(labels)``.

    Returns:
        The :class:`MitigationResult`; ``mitigated`` is False when not
        enough Low requests exist to fully separate the High ones.

    Raises:
        ValueError: for an empty sequence or K < 1.
    """
    if not labels:
        raise ValueError("label sequence must be non-empty")
    if k < 1:
        raise ValueError("pipeline depth K must be >= 1")

    n = len(labels)
    # Context-managed so the span closes even when kuhn_munkres or a
    # window helper raises mid-loop (a manually closed span would leak
    # open and corrupt the recorder's span stack).
    with obs.span("plan.mitigate", requests=n, depth=k) as span:
        if obs.enabled():
            obs.add("windows_with_2H", len(violating_windows(labels, k)))

        order: List[int] = list(range(n))
        moves: List[Move] = []
        rounds = max_rounds if max_rounds is not None else n

        for _ in range(rounds):
            current = _labels_of(order, labels)
            pairs = conflicting_high_pairs(current, k)
            if not pairs:
                break

            # Build relocation slots: one column per missing Low interleave.
            slots: List[Tuple[int, int]] = []  # (u_pos, v_pos) per needed L
            for pair in pairs:
                slots.extend([pair] * deficit(pair, k))
            lows = [pos for pos, is_high in enumerate(current) if not is_high]
            if not slots or not lows:
                break

            # The source-conflict test depends only on the Low position,
            # never on the slot column: evaluate it once per Low here
            # instead of O(lows x slots) times inside the matrix loop.
            opens_source_conflict = {
                low_pos: _creates_new_source_conflict(
                    current, pairs, low_pos, k
                )
                for low_pos in lows
            }

            # Eq. 10 infeasibilities use a large *finite* sentinel so the LAP
            # still returns the best partial relocation when there are not
            # enough eligible Low requests for every slot ("no sufficient L
            # for selection"); sentinel-cost pairs are discarded afterwards.
            forbidden = float(4 * n)
            cost: List[List[float]] = []
            any_feasible = False
            for low_pos in lows:
                row: List[float] = []
                for (u, v) in slots:
                    # Eq. 10: a Low already inside the pair's contention
                    # neighbourhood cannot increase the separation; and a
                    # move that opens a new conflict at the source is
                    # excluded as well.
                    if u - (k - 1) <= low_pos <= v + (k - 1):
                        row.append(forbidden)
                    elif opens_source_conflict[low_pos]:
                        row.append(forbidden)
                    else:
                        row.append(float(abs(u + 1 - low_pos)))
                        any_feasible = True
                cost.append(row)
            if not any_feasible:
                break  # no sufficient L for selection

            assignment, _total = kuhn_munkres(cost)
            obs.add("lap_rounds")
            assignment = [
                (i, j) for i, j in assignment if cost[i][j] < forbidden
            ]
            obs.add("lap_assignments", len(assignment))
            if not assignment:
                break

            # Apply moves by item identity so earlier moves don't invalidate
            # later positions.  Each move inserts the Low right after u.
            progressed = False
            for low_idx, slot_idx in assignment:
                low_item = order[lows[low_idx]]
                u_pos, v_pos = slots[slot_idx]
                u_item = order[u_pos]
                src = order.index(low_item)
                # Re-check the move still helps under the mutated order.
                trial = order[:src] + order[src + 1 :]
                dst = trial.index(u_item) + 1
                trial.insert(dst, low_item)
                before = len(
                    conflicting_high_pairs(_labels_of(order, labels), k)
                )
                after = len(
                    conflicting_high_pairs(_labels_of(trial, labels), k)
                )
                before_deficit = sum(
                    deficit(p, k)
                    for p in conflicting_high_pairs(_labels_of(order, labels), k)
                )
                after_deficit = sum(
                    deficit(p, k)
                    for p in conflicting_high_pairs(_labels_of(trial, labels), k)
                )
                if after < before or after_deficit < before_deficit:
                    order = trial
                    moves.append(
                        Move(
                            item=low_item,
                            source_position=src,
                            target_position=dst,
                        )
                    )
                    progressed = True
            if not progressed:
                break

        final_labels = _labels_of(order, labels)
        result = MitigationResult(
            order=tuple(order),
            moves=tuple(moves),
            mitigated=is_mitigated(final_labels, k),
            total_cost=sum(m.cost for m in moves),
        )
        span.set(
            moves=len(result.moves),
            mitigated=result.mitigated,
            total_cost=result.total_cost,
        )
    return result
