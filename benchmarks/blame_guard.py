"""CI guard: the blame layer's accounting identities must hold exactly.

The causal-attribution layer (``repro.obs.blame`` / ``repro.obs.whatif``)
is only trustworthy if its numbers *provably* add up, so this guard pins
the three identities on every registered SoC:

* **Per-request decomposition** — each request's end-to-end latency
  must equal busy-wait + residency-wait + scheduler-wait + preemption +
  executed solo compute + contention inflation with residue
  ``<= RESIDUE_TOLERANCE_MS``.  Checked on a closed-loop run of the
  planned mix *and* on an open-loop seeded-Poisson run with an
  admission deadline (drops and queueing must not break the identity).
* **Critical-path tiling** — the exact enablement-walk path's gaps +
  durations must tile ``[0, makespan]`` with the same residue bound.
* **Zero-intervention bit-exactness** — re-simulating under the empty
  (``baseline``) intervention must reproduce the original
  ``ExecutionResult`` float-exactly (``results_identical``, strict
  ``==`` on every record, timestamp and causality row).  Any drift here
  means the counterfactual engine diverged from the real one and every
  what-if delta is suspect.

A heuristic-vs-exact comparison of the deprecated replay
``critical_chain`` walk against the exact path is written as a JSON
artifact so heuristic mismatches stay observable (the heuristic is not
gated — coincidental timestamp matches legitimately diverge).

Run directly (exit code 0/1, used by the ``blame-guard`` CI job)::

    PYTHONPATH=src python benchmarks/blame_guard.py [critical-path.json]
"""

import json
import sys

from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs.blame import blame_requests, extract_critical_path
from repro.obs.whatif import WhatIf, run_counterfactual, results_identical
from repro.runtime.arrivals import PoissonArrivals, resolve_arrivals
from repro.runtime.executor import (
    plan_to_chains,
    replicate_chains,
    simulate_chains,
)
from repro.runtime.replay import critical_chain

SOCS = ("kirin990", "snapdragon778g", "snapdragon870")
MODEL_MIX = ("squeezenet", "mobilenetv2", "resnet50")
#: Open-loop variant: rounds of the mix under seeded Poisson arrivals.
REPEAT = 4
ARRIVAL_SEED = 11
#: Mean inter-arrival as a fraction of one closed-loop mix makespan —
#: fast enough that requests genuinely queue (waits are non-trivial).
ARRIVAL_FRACTION = 0.15
#: Admission deadline in closed-loop-makespan units; tight enough that
#: the overload run actually drops requests on at least one SoC.
DEADLINE_FACTOR = 1.5
RESIDUE_TOLERANCE_MS = 1e-9
DEFAULT_ARTIFACT = "critical-path.json"


def _planned_chains(soc_name, repeat):
    soc = get_soc(soc_name)
    models = [get_model(name) for name in MODEL_MIX]
    report = Hetero2PipePlanner(soc).plan(models)
    return soc, replicate_chains(plan_to_chains(report.plan), repeat)


def _check_identities(label, result):
    """Residue checks for one run; returns a list of failure strings."""
    failures = []
    requests = blame_requests(result)
    worst = max((abs(r.residue_ms) for r in requests), default=0.0)
    if worst > RESIDUE_TOLERANCE_MS:
        failures.append(
            f"{label}: request residue {worst:.3e} ms "
            f"> {RESIDUE_TOLERANCE_MS:.0e}"
        )
    path = extract_critical_path(result)
    if abs(path.residue_ms) > RESIDUE_TOLERANCE_MS:
        failures.append(
            f"{label}: critical-path residue {path.residue_ms:.3e} ms "
            f"> {RESIDUE_TOLERANCE_MS:.0e}"
        )
    if result.records and not path.segments:
        failures.append(f"{label}: empty critical path for a non-empty run")
    print(
        f"  {label}: {len(requests)} requests, worst residue {worst:.1e} ms, "
        f"path {len(path.segments)} segments "
        f"(residue {path.residue_ms:.1e} ms)"
    )
    return failures


def _path_comparison(soc_name, result):
    """Heuristic ``critical_chain`` vs the exact path, as artifact rows."""
    exact = extract_critical_path(result)
    heuristic = critical_chain(result, prefer_exact=False)
    exact_keys = [
        (seg.request, seg.index)
        for seg in exact.segments
        if seg.start_ms is not None
    ]
    heuristic_keys = [(rec.request, rec.stage) for rec in heuristic]
    return {
        "soc": soc_name,
        "makespan_ms": result.makespan_ms,
        "exact_segments": [seg.to_dict() for seg in exact.segments],
        "exact_residue_ms": exact.residue_ms,
        "heuristic_chain": [
            {
                "request": rec.request,
                "stage": rec.stage,
                "processor": rec.processor,
                "start_ms": rec.start_ms,
                "finish_ms": rec.finish_ms,
            }
            for rec in heuristic
        ],
        "heuristic_matches_exact": heuristic_keys == exact_keys,
    }


def identity_runs():
    """Closed-loop and queued open-loop identity checks per SoC."""
    failures = []
    comparisons = []
    for soc_name in SOCS:
        soc, closed_chains = _planned_chains(soc_name, repeat=1)
        closed = simulate_chains(soc, closed_chains, record=False)
        failures.extend(_check_identities(f"{soc_name} closed", closed))
        comparisons.append(_path_comparison(soc_name, closed))

        interval_ms = closed.makespan_ms * ARRIVAL_FRACTION
        deadline_ms = closed.makespan_ms * DEADLINE_FACTOR
        _, open_chains = _planned_chains(soc_name, repeat=REPEAT)
        open_result = simulate_chains(
            soc,
            open_chains,
            arrivals=PoissonArrivals(
                interval_ms=interval_ms, seed=ARRIVAL_SEED
            ),
            deadline_ms=deadline_ms,
            record=False,
        )
        label = (
            f"{soc_name} open ({len(open_result.dropped_requests)} dropped)"
        )
        failures.extend(_check_identities(label, open_result))
    return failures, comparisons


def baseline_bit_exactness():
    """The empty intervention must reproduce the run float-exactly."""
    failures = []
    for soc_name in SOCS:
        soc, chains = _planned_chains(soc_name, repeat=REPEAT)
        arrivals = resolve_arrivals(
            len(chains),
            PoissonArrivals(interval_ms=12.0, seed=ARRIVAL_SEED),
        )
        original = simulate_chains(
            soc, chains, arrivals=arrivals, record=False
        )
        # `chains` is now mutated (remaining_ms consumed); the
        # counterfactual must still reproduce `original` from clones.
        replayed, _ = run_counterfactual(
            soc, chains, WhatIf(kind="baseline"), arrivals=arrivals
        )
        identical = results_identical(original, replayed)
        print(
            f"  {soc_name:15s}: baseline counterfactual "
            f"{'bit-exact' if identical else 'DIVERGED'} "
            f"(makespan {original.makespan_ms:.3f} ms)"
        )
        if not identical:
            failures.append(f"{soc_name}: baseline counterfactual diverged")
    return failures


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    artifact = argv[0] if argv else DEFAULT_ARTIFACT

    print("blame guard: accounting identities")
    failures, comparisons = identity_runs()
    print("blame guard: zero-intervention bit-exactness")
    failures.extend(baseline_bit_exactness())

    with open(artifact, "w", encoding="utf-8") as fh:
        json.dump(
            {"schema": "hetero2pipe.blame-guard.v1", "socs": comparisons},
            fh,
            indent=2,
            sort_keys=True,
        )
    agree = sum(1 for c in comparisons if c["heuristic_matches_exact"])
    print(
        f"  comparison artifact: {artifact} "
        f"(heuristic matched exact path on {agree}/{len(comparisons)} SoCs)"
    )

    if failures:
        print("blame guard: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("blame guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
