"""DNN model IR and the ten-model evaluation zoo."""

from .ir import (
    Layer,
    ModelGraph,
    NPU_SUPPORTED_OPS,
    OpType,
    validate_partition,
)
from .serialization import (
    load_model,
    model_from_dict,
    model_from_json,
    model_to_dict,
    model_to_json,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    save_model,
)
from .zoo import (
    LARGE_MODELS,
    LIGHTWEIGHT_MODELS,
    MEDIUM_MODELS,
    MODEL_BUILDERS,
    MODEL_NAMES,
    all_models,
    get_model,
)

__all__ = [
    "Layer",
    "ModelGraph",
    "NPU_SUPPORTED_OPS",
    "OpType",
    "validate_partition",
    "load_model",
    "model_from_dict",
    "model_from_json",
    "model_to_dict",
    "model_to_json",
    "plan_from_dict",
    "plan_from_json",
    "plan_to_dict",
    "plan_to_json",
    "save_model",
    "LARGE_MODELS",
    "LIGHTWEIGHT_MODELS",
    "MEDIUM_MODELS",
    "MODEL_BUILDERS",
    "MODEL_NAMES",
    "all_models",
    "get_model",
]
