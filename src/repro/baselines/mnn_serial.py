"""Vanilla MNN baseline: serial execution on the Big CPU cluster.

The paper's weakest comparator: "since the CPU still outperforms the
embedded GPU in most mobile consumer devices, this represents the
vanilla CPU-centric implementation on the Big cores."  Every request
runs whole, one after another, on the CPU Big cluster.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.plan import PipelinePlan, StageAssignment
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.profiler import SocProfiler


def plan_mnn_serial(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: SocProfiler | None = None,
) -> PipelinePlan:
    """Build the serial CPU-Big plan for a request sequence.

    The returned plan uses the full processor tuple (so metrics align
    with the other schemes) but assigns every request entirely to the
    CPU Big stage; the executor then serializes them on that one unit.

    Raises:
        ValueError: for an empty request sequence.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    profiler = profiler or SocProfiler(soc)
    processors = tuple(soc.processors)
    cpu_stage = next(
        k for k, p in enumerate(processors) if p.name == soc.cpu_big.name
    )
    assignments: List[StageAssignment] = []
    for model in models:
        profile = profiler.profile(model)
        slices: List = [None] * len(processors)
        slices[cpu_stage] = (0, model.num_layers - 1)
        assignments.append(StageAssignment(profile=profile, slices=slices))
    return PipelinePlan(soc=soc, processors=processors, assignments=assignments)


def serial_latency_ms(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: SocProfiler | None = None,
) -> float:
    """Closed-form serial latency (no pipeline, no contention)."""
    profiler = profiler or SocProfiler(soc)
    return sum(
        profiler.profile(m).whole_model_ms(soc.cpu_big) for m in models
    )
