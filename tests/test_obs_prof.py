"""Tests for the phase-attributed self-profiler (``repro.obs.prof``).

Synthetic span trees use the injectable span clock so every duration —
and therefore every exclusive/inclusive attribution — is exact.
"""

import json

import pytest

from repro import obs
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs import prof
from repro.obs.spans import set_clock


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


@pytest.fixture
def fake_clock():
    clock = FakeClock()
    previous = set_clock(clock)
    yield clock
    set_clock(previous)


@pytest.fixture
def recorder():
    with obs.use_recorder(obs.InMemoryRecorder()) as rec:
        yield rec


def _record_plan_like_tree(clock):
    """A deterministic miniature of the planner's span tree.

    plan (total 100 ms)
      plan.partition      10 ms
      plan.mitigate        5 ms
      plan.vertical       70 ms           -> stealing
        plan.steal        20 ms           -> stealing (nested, same phase)
        plan.objective    40 ms
      (plan glue: 15 ms exclusive)
    """
    with obs.span("plan") as root:
        with obs.span("plan.partition"):
            clock.tick(0.010)
        with obs.span("plan.mitigate"):
            clock.tick(0.005)
        with obs.span("plan.vertical"):
            with obs.span("plan.steal"):
                clock.tick(0.020)
            with obs.span("plan.objective"):
                clock.tick(0.040)
            clock.tick(0.010)
        clock.tick(0.015)
    return root


class TestProfileSpans:
    def test_exclusive_times_partition_the_total(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        profile = prof.profile_spans(recorder.spans)
        assert profile.total_ms == pytest.approx(100.0)
        summed = sum(p.exclusive_ms for p in profile.phases.values())
        assert summed == pytest.approx(profile.total_ms)

    def test_phase_attribution(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        profile = prof.profile_spans(recorder.spans)
        phases = profile.phases
        assert phases["partition"].exclusive_ms == pytest.approx(10.0)
        assert phases["mitigation"].exclusive_ms == pytest.approx(5.0)
        # stealing: vertical self (10) + steal (20); inclusive counted
        # once at the top-most stealing span (the whole vertical: 70).
        assert phases["stealing"].exclusive_ms == pytest.approx(30.0)
        assert phases["stealing"].inclusive_ms == pytest.approx(70.0)
        assert phases["objective"].exclusive_ms == pytest.approx(40.0)
        # plan root glue is unattributed.
        assert phases["other"].exclusive_ms == pytest.approx(15.0)
        assert profile.attributed_frac == pytest.approx(0.85)

    def test_span_stats(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        profile = prof.profile_spans(recorder.spans)
        steal = profile.spans["plan.steal"]
        assert steal.calls == 1
        assert steal.phase == "stealing"
        assert steal.inclusive_ms == pytest.approx(20.0)
        assert steal.min_ms == steal.max_ms == pytest.approx(20.0)

    def test_empty_roots(self):
        profile = prof.profile_spans([])
        assert profile.total_ms == 0.0
        assert profile.attributed_frac == 0.0
        assert profile.phases == {}

    def test_custom_phase_mapping(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        profile = prof.profile_spans(
            recorder.spans, phase_of=lambda name: "everything"
        )
        assert set(profile.phases) == {"everything"}
        # One phase, counted at the root only: inclusive == total.
        assert profile.phases["everything"].inclusive_ms == pytest.approx(
            100.0
        )

    def test_to_dict_shape(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        doc = prof.profile_spans(recorder.spans).to_dict()
        assert set(doc) == {"total_ms", "attributed_frac", "phases", "spans"}
        for stat in doc["phases"].values():
            assert set(stat) == {
                "calls", "inclusive_ms", "exclusive_ms", "alloc_net_bytes"
            }
        for stat in doc["spans"].values():
            assert set(stat) == {
                "phase", "calls", "inclusive_ms", "exclusive_ms",
                "min_ms", "max_ms", "alloc_net_bytes",
            }
        json.dumps(doc)  # JSON-ready

    def test_render_phase_table(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        table = prof.render_phase_table(prof.profile_spans(recorder.spans))
        lines = table.splitlines()
        assert "phase" in lines[0]
        assert "objective" in lines[1]  # descending exclusive time
        assert "85.0% attributed" in lines[-1]


class TestExports:
    def test_collapsed_stacks(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        text = prof.collapsed_stacks(recorder.spans)
        assert text.endswith("\n")
        weights = {}
        for line in text.splitlines():
            stack, _, weight = line.rpartition(" ")
            weights[stack] = int(weight)
        assert weights["plan;plan.vertical;plan.steal"] == 20_000
        assert weights["plan;plan.vertical;plan.objective"] == 40_000
        # Widths add up exactly to the recorded total (in us).
        assert sum(weights.values()) == 100_000

    def test_collapsed_stacks_empty(self):
        assert prof.collapsed_stacks([]) == ""

    def test_speedscope_document(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        doc = prof.speedscope_document(recorder.spans)
        assert doc["$schema"] == prof.SPEEDSCOPE_SCHEMA
        frames = doc["shared"]["frames"]
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        assert profile["unit"] == "microseconds"
        assert profile["endValue"] == pytest.approx(100_000.0)
        events = profile["events"]
        # Balanced, properly nested open/close events over valid frames.
        stack = []
        for event in events:
            assert 0 <= event["frame"] < len(frames)
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert event["type"] == "C"
                assert stack.pop() == event["frame"]
        assert stack == []
        # Timestamps never go backwards.
        ats = [e["at"] for e in events]
        assert ats == sorted(ats)
        json.dumps(doc)

    def test_speedscope_empty(self):
        doc = prof.speedscope_document([])
        assert doc["profiles"] == []

    def test_phase_track_events(self, fake_clock, recorder):
        _record_plan_like_tree(fake_clock)
        profile = prof.profile_spans(recorder.spans)
        events = prof.phase_track_events(profile, pid=1, tid=7, ts0_us=100.0)
        assert all(e["ph"] == "X" for e in events)
        assert all(e["pid"] == 1 and e["tid"] == 7 for e in events)
        assert events[0]["ts"] == pytest.approx(100.0)
        # Back-to-back slices, descending exclusive time.
        durs = [e["dur"] for e in events]
        assert durs == sorted(durs, reverse=True)
        for prev, cur in zip(events, events[1:]):
            assert cur["ts"] == pytest.approx(prev["ts"] + prev["dur"])
        assert sum(durs) == pytest.approx(100_000.0)

    def test_phase_track_empty_profile(self):
        assert prof.phase_track_events(prof.PhaseProfile(0.0), pid=1) == []


class TestProfilingRecorder:
    def test_cprofile_scoped_to_span(self):
        with prof.profiling_session(cprofile_span="plan") as rec:
            with obs.span("outside"):
                pass
            with obs.span("plan"):
                sum(range(1000))
        rows = rec.cprofile_rows(top=5)
        assert rows, "scoped capture produced no rows"
        assert all(
            {"function", "calls", "self_s", "cumulative_s"} <= set(r)
            for r in rows
        )
        # Rows sorted by cumulative time, descending.
        cums = [r["cumulative_s"] for r in rows]
        assert cums == sorted(cums, reverse=True)

    def test_cprofile_rows_empty_without_capture(self):
        rec = prof.ProfilingRecorder()
        assert rec.cprofile_rows() == []

    def test_allocation_attribution(self):
        with prof.profiling_session(trace_allocations=True) as rec:
            with obs.span("plan"):
                with obs.span("plan.partition"):
                    keep = [bytearray(64_000) for _ in range(8)]
        (root,) = rec.spans
        part = root.children[0]
        assert part.attrs["alloc_net_bytes"] > 8 * 64_000 // 2
        profile = prof.profile_spans(rec.spans)
        assert profile.phases["partition"].alloc_net_bytes > 0
        del keep

    def test_session_restores_previous_recorder(self):
        before = obs.get_recorder()
        with prof.profiling_session():
            assert obs.get_recorder() is not before
        assert obs.get_recorder() is before

    def test_no_alloc_attrs_when_disabled(self, recorder):
        with obs.span("plan"):
            pass
        (root,) = recorder.spans
        assert "alloc_net_bytes" not in root.attrs


class TestRealPlannerAttribution:
    def test_cold_plan_attribution_meets_bar(self):
        """Acceptance: >= 90% of a cold plan's inclusive wall time lands
        in named phases (partition/classify/objective/stealing/...)."""
        soc = get_soc("kirin990")
        models = [get_model(n) for n in ("yolov4", "bert", "squeezenet")]
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            Hetero2PipePlanner(soc).plan(models)
        profile = prof.profile_spans(rec.spans)
        assert profile.total_ms > 0
        assert profile.attributed_frac >= 0.90
        # The vertical phase's probes dominate a cold plan.
        assert profile.phases["objective"].calls > 10
