"""Plan validation diagnostics.

``PipelinePlan.validate()`` raises on the first structural problem; this
module is the production-grade counterpart: it checks *every* constraint
the paper's formulation imposes and returns a full list of readable
violations, so a runtime can reject (or a developer can debug) a plan
with one call.

Checked constraints:

* slice structure — contiguous, complete, in stage order (Definition 1);
* operator support — no slice on a processor lacking one of its
  operators (the NPU fallback rule);
* memory capacity — the peak co-resident working set stays within the
  physical memory (Constraint 6), evaluated over the execution
  diagonals with the runtime's arena overhead;
* order validity — the execution order is a permutation;
* processor identity — every stage's processor belongs to the plan's
  SoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..runtime.executor import ARENA_OVERHEAD_FACTOR
from .plan import PipelinePlan


@dataclass(frozen=True)
class Violation:
    """One constraint violation."""

    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.code}] {self.message}"


def validate_plan(plan: PipelinePlan) -> List[Violation]:
    """Check every plan constraint; return all violations found."""
    violations: List[Violation] = []
    violations.extend(_check_processors(plan))
    violations.extend(_check_order(plan))
    violations.extend(_check_slices(plan))
    violations.extend(_check_operator_support(plan))
    violations.extend(_check_memory(plan))
    return violations


def is_valid(plan: PipelinePlan) -> bool:
    """True when :func:`validate_plan` finds nothing."""
    return not validate_plan(plan)


def _check_processors(plan: PipelinePlan) -> List[Violation]:
    soc_names = {p.name for p in plan.soc.processors}
    out = []
    for k, proc in enumerate(plan.processors):
        if proc.name not in soc_names:
            out.append(
                Violation(
                    code="unknown-processor",
                    message=(
                        f"stage {k} uses {proc.name!r}, which is not a "
                        f"processor of SoC {plan.soc.name!r}"
                    ),
                )
            )
    return out


def _check_order(plan: PipelinePlan) -> List[Violation]:
    if sorted(plan.order) != list(range(plan.num_requests)):
        return [
            Violation(
                code="bad-order",
                message=(
                    f"execution order {plan.order} is not a permutation of "
                    f"0..{plan.num_requests - 1}"
                ),
            )
        ]
    return []


def _check_slices(plan: PipelinePlan) -> List[Violation]:
    out = []
    for i, assignment in enumerate(plan.assignments):
        n = assignment.profile.model.num_layers
        expected = 0
        for k, slc in enumerate(assignment.slices):
            if slc is None:
                continue
            start, end = slc
            if start != expected:
                out.append(
                    Violation(
                        code="gap-or-overlap",
                        message=(
                            f"request {i} ({assignment.model_name}): stage "
                            f"{k} starts at layer {start}, expected {expected}"
                        ),
                    )
                )
                expected = max(expected, start)
            if end < start or end >= n:
                out.append(
                    Violation(
                        code="bad-slice",
                        message=(
                            f"request {i} ({assignment.model_name}): stage "
                            f"{k} has invalid slice {slc} for {n} layers"
                        ),
                    )
                )
                continue
            expected = end + 1
        if expected != n:
            out.append(
                Violation(
                    code="incomplete-cover",
                    message=(
                        f"request {i} ({assignment.model_name}): slices "
                        f"cover {expected} of {n} layers"
                    ),
                )
            )
    return out


def _check_operator_support(plan: PipelinePlan) -> List[Violation]:
    soc_names = {p.name for p in plan.soc.processors}
    out = []
    for i, assignment in enumerate(plan.assignments):
        for k, slc in enumerate(assignment.slices):
            if slc is None:
                continue
            proc = plan.processors[k]
            if proc.name not in soc_names:
                continue  # reported by _check_processors
            start, end = slc
            if end >= assignment.profile.model.num_layers:
                continue  # reported by _check_slices
            if not assignment.profile.feasible(proc, start, end):
                bad = [
                    layer.name
                    for layer in assignment.profile.model.slice_layers(start, end)
                    if not proc.supports(layer)
                ]
                out.append(
                    Violation(
                        code="unsupported-operator",
                        message=(
                            f"request {i} ({assignment.model_name}): stage "
                            f"{k} on {proc.name!r} contains unsupported "
                            f"layers {bad}"
                        ),
                    )
                )
    return out


def _check_memory(plan: PipelinePlan) -> List[Violation]:
    """Peak diagonal working set vs capacity (Constraint 6).

    The synchronized diagonals bound the set of slices that can be
    co-resident; with hold-until-completion arenas the true peak can be
    higher, but a plan violating even the diagonal bound is certainly
    infeasible.
    """
    capacity = plan.soc.memory_capacity_bytes
    out = []
    num_diagonals = plan.num_requests + plan.depth - 1
    for j in range(num_diagonals):
        resident = 0.0
        members = []
        for i in range(plan.num_requests):
            k = j - i
            if not 0 <= k < plan.depth:
                continue
            slc = plan.assignments[i].slices[k]
            if slc is None:
                continue
            n_layers = plan.assignments[i].profile.model.num_layers
            if not 0 <= slc[0] <= slc[1] < n_layers:
                continue  # structurally broken; reported by _check_slices
            ws = ARENA_OVERHEAD_FACTOR * plan.assignments[i].profile.working_set_bytes(
                slc[0], slc[1]
            )
            resident += ws
            members.append((i, k))
        if resident > capacity:
            out.append(
                Violation(
                    code="memory-capacity",
                    message=(
                        f"diagonal {j} co-residents {members} need "
                        f"{resident / 1e6:.0f} MB, capacity is "
                        f"{capacity / 1e6:.0f} MB (Constraint 6)"
                    ),
                )
            )
    return out
