"""Fig. 10 benchmark: intra-cluster CPU contention."""

from repro.experiments import fig10_intracluster


def test_bench_fig10_intracluster(run_once):
    rows = run_once(fig10_intracluster.run)
    print("\n" + fig10_intracluster.render(rows))

    by_label = {r.label: r for r in rows}

    # Splitting the Big cluster causes severe slowdown (paper: ~70 %).
    assert by_label["BB-BB"].victim_slowdown_pct > 40.0
    # Far more than a cross-cluster pairing would; this is what
    # justifies whole-cluster scheduling granularity.
    assert by_label["BB-BB"].victim_slowdown_pct > 2 * by_label[
        "SS-SS"
    ].partner_slowdown_pct
    # In the asymmetric 3+1 split, the single-core side is hit harder
    # than in the even split.
    assert (
        by_label["BBB-B"].partner_slowdown_pct
        > by_label["BB-BB"].partner_slowdown_pct
    )
