"""Execution-trace export: Chrome trace JSON and ASCII Gantt charts.

Turns an :class:`~repro.runtime.executor.ExecutionResult` into artifacts
a human can inspect: the Chrome tracing format (open ``chrome://tracing``
or Perfetto and drop the file in) and a terminal Gantt rendering used by
the examples.  Both views make pipeline bubbles visible as gaps in a
processor's row.

When an :class:`~repro.obs.InMemoryRecorder` that watched the planning
run is passed in, :func:`to_chrome_trace` merges everything it captured
into the same document:

* planner span trees as ``X`` slices on a second trace process
  (``pid 1``, wall time — kept apart from the simulated-time execution
  process so Perfetto never pretends the clocks are comparable);
* the metrics registry as ``C`` counter tracks;
* decision provenance as ``s``/``f`` flow arrows — a stolen boundary
  layer draws an arrow between the donor and recipient stage slices
  (falling back to planner-span → request-slice when a later phase
  erased the stage), a mitigation relocation draws one from the
  ``plan.mitigate`` span to the relocated request's first executed
  slice;
* the self-profile as a phase track — a second planner thread
  (``phases (self-profile)``) holding one back-to-back ``X`` slice per
  phase with the phase's *exclusive* wall time (see
  :func:`repro.obs.prof.phase_track_events`), so where the planner's
  time went is readable without leaving Perfetto.

With ``blame=True`` (and a result carrying causality rows) the trace
additionally renders the *blame view*: the exact critical path's slices
are highlighted (``cname: terrible`` + a ``critical_path`` arg) and
each slice's wait interval is drawn on a per-processor ``<proc> waits``
thread, colored by wait state — processor-busy waits as
``thread_state_runnable``, memory-residency waits as
``thread_state_iowait``, the scheduler residual as ``grey`` and
preemption time as ``yellow`` (the legend documented in
docs/OBSERVABILITY.md).

Only the phases ``X``/``M``/``C``/``s``/``f`` are ever emitted; the
export tests schema-validate this.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from .. import obs
from ..obs import export as obs_export
from ..obs import prof as obs_prof

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutionResult

_EPS_MS = 1e-9


def _queue_depth(result: "ExecutionResult", time_ms: float) -> int:
    """Requests waiting at ``time_ms``: arrived, unfinished, not running."""
    depth = 0
    for r in range(result.num_requests):
        if result.request_arrival_ms[r] > time_ms + _EPS_MS:
            continue
        if result.request_finish_ms[r] <= time_ms + _EPS_MS:
            continue
        running = any(
            rec.request == r
            and rec.start_ms - _EPS_MS <= time_ms < rec.finish_ms - _EPS_MS
            for rec in result.records
        )
        if not running:
            depth += 1
    return depth


def _trace_counter_events(result: "ExecutionResult") -> List[Dict]:
    """Counter tracks sampled at every TracePoint (queue depth & memory)."""
    events: List[Dict] = []
    for point in result.trace:
        ts = point.time_ms * 1000.0
        events.append(
            {
                "name": "queue_depth",
                "cat": "runtime",
                "ph": "C",
                "pid": obs_export.EXECUTION_PID,
                "tid": 0,
                "ts": ts,
                "args": {"requests": _queue_depth(result, point.time_ms)},
            }
        )
        events.append(
            {
                "name": "bandwidth_demand_gbps",
                "cat": "runtime",
                "ph": "C",
                "pid": obs_export.EXECUTION_PID,
                "tid": 0,
                "ts": ts,
                "args": {"gbps": round(point.bandwidth_demand_gbps, 4)},
            }
        )
        events.append(
            {
                "name": "memory_used_mb",
                "cat": "runtime",
                "ph": "C",
                "pid": obs_export.EXECUTION_PID,
                "tid": 0,
                "ts": ts,
                "args": {"mb": round(point.used_bytes / 1e6, 3)},
            }
        )
    return events


def _slice_anchor(
    records_by: Dict[Tuple[int, int], "object"],
    tids: Dict[str, int],
    request: int,
    stage: int,
) -> Optional[Dict[str, float]]:
    """Flow endpoint (pid/tid/ts) at the midpoint of one executed slice."""
    rec = records_by.get((request, stage))
    if rec is None:
        return None
    return {
        "pid": obs_export.EXECUTION_PID,
        "tid": tids[rec.processor],  # type: ignore[attr-defined]
        "ts": (rec.start_ms + rec.finish_ms) / 2.0 * 1000.0,  # type: ignore[attr-defined]
    }


def _provenance_flows(
    result: "ExecutionResult",
    recorder: "obs.InMemoryRecorder",
    tids: Dict[str, int],
    planner_events: List[Dict],
) -> List[Dict]:
    """Flow arrows for committed steal/relocate decisions.

    ``LayerStolen`` arrows connect the donor stage's slice to the
    recipient stage's slice of the same request.  When an endpoint
    stage no longer exists in the executed plan (the steal emptied it,
    or a later placement/tail phase replaced the whole assignment) the
    arrow falls back to planner-to-execution: from the winning
    ``plan.vertical`` span to the request's first executed slice.
    ``RequestRelocated`` arrows run from the ``plan.mitigate`` planner
    span to the relocated request's first executed slice, crossing the
    two trace processes.
    """
    records_by: Dict[Tuple[int, int], object] = {}
    for rec in result.records:
        records_by[(rec.request, rec.stage)] = rec

    order: Optional[Tuple[int, ...]] = None
    for event in recorder.events:
        if event.kind == "order_committed":
            order = event.order  # type: ignore[attr-defined]

    def _planner_anchor(span_name: str) -> Optional[Dict[str, float]]:
        for pe in planner_events:
            if pe.get("name") == span_name:
                ts = float(pe["ts"]) + float(pe["dur"]) / 2.0  # type: ignore[arg-type]
                return {
                    "pid": obs_export.PLANNER_PID,
                    "tid": 0,
                    "ts": ts,
                }
        return None

    def _first_slice_anchor(exec_pos: int) -> Optional[Dict[str, float]]:
        first = min(
            (r for r in result.records if r.request == exec_pos),
            key=lambda r: r.start_ms,
            default=None,
        )
        if first is None:
            return None
        return {
            "pid": obs_export.EXECUTION_PID,
            "tid": tids[first.processor],
            "ts": (first.start_ms + first.finish_ms) / 2.0 * 1000.0,
        }

    mitigate_anchor = _planner_anchor("plan.mitigate")
    vertical_anchor = _planner_anchor("plan.vertical")

    flows: List[Dict] = []
    flow_id = 1
    for event in recorder.events:
        if event.kind == "layer_stolen":
            start = _slice_anchor(
                records_by, tids, event.request, event.from_stage  # type: ignore[attr-defined]
            )
            finish = _slice_anchor(
                records_by, tids, event.request, event.to_stage  # type: ignore[attr-defined]
            )
            if start is not None and finish is not None:
                # Same-process arrow: keep it pointing forward in time.
                if finish["ts"] < start["ts"]:
                    start, finish = finish, start
            else:
                # Stage endpoint gone from the final plan — bind the
                # decision to the planner span and the request's slice
                # (cross-process, so the clocks are not comparable).
                start = vertical_anchor
                finish = _first_slice_anchor(event.request)  # type: ignore[attr-defined]
            if start is None or finish is None:
                continue
            flows.extend(
                obs_export.flow_pair(
                    "layer_stolen",
                    flow_id,
                    start,
                    finish,
                    args={
                        "layer": event.layer,  # type: ignore[attr-defined]
                        "phase": event.phase,  # type: ignore[attr-defined]
                        "gain_ms": round(event.gain_ms, 4),  # type: ignore[attr-defined]
                    },
                )
            )
            flow_id += 1
        elif event.kind == "request_relocated":
            if mitigate_anchor is None or order is None:
                continue
            item = event.request  # type: ignore[attr-defined]
            if item not in order:
                continue
            exec_pos = order.index(item)
            finish = _first_slice_anchor(exec_pos)
            if finish is None:
                continue
            flows.extend(
                obs_export.flow_pair(
                    "request_relocated",
                    flow_id,
                    dict(mitigate_anchor),
                    finish,
                    args={
                        "request": item,
                        "from_position": event.source_position,  # type: ignore[attr-defined]
                        "to_position": event.target_position,  # type: ignore[attr-defined]
                    },
                )
            )
            flow_id += 1
    return flows


#: Chrome-trace reserved color (``cname``) per wait state / highlight.
WAIT_STATE_COLORS = {
    "processor_busy": "thread_state_runnable",
    "residency": "thread_state_iowait",
    "scheduler": "grey",
    "preempted": "yellow",
}
CRITICAL_PATH_COLOR = "terrible"

#: Wait components thinner than this render as noise; skip them.
_MIN_WAIT_SLICE_MS = 1e-6


def _blame_wait_events(
    result: "ExecutionResult",
    tids: Dict[str, int],
    name_of,
) -> List[Dict]:
    """Wait-state-colored ``X`` slices on per-processor wait threads.

    Each causality row's wait interval ``[ready, start]`` is rendered
    as back-to-back sub-slices in bucket order (busy → residency →
    scheduler, then any preemption time inside ``[start, finish]``).
    The bucket *totals* are exact; their ordering inside the interval
    is a rendering convention.
    """
    events: List[Dict] = []
    wait_tid = {proc: len(tids) + tid for proc, tid in tids.items()}
    for row in result.causality:
        if row.processor not in wait_tid:
            continue
        cursor = row.ready_ms
        parts = [
            ("processor_busy", row.processor_busy_wait_ms),
            ("residency", row.residency_wait_ms),
            ("scheduler", row.scheduler_wait_ms),
        ]
        if row.preempted_ms > _MIN_WAIT_SLICE_MS and row.start_ms is not None:
            parts.append(("preempted", row.preempted_ms))
        for state, dur_ms in parts:
            if dur_ms <= _MIN_WAIT_SLICE_MS:
                continue
            events.append(
                {
                    "name": (
                        f"{name_of(row.request)} / stage {row.stage} "
                        f"({state} wait)"
                    ),
                    "cat": "blame",
                    "ph": "X",
                    "pid": obs_export.EXECUTION_PID,
                    "tid": wait_tid[row.processor],
                    "ts": cursor * 1000.0,
                    "dur": dur_ms * 1000.0,
                    "cname": WAIT_STATE_COLORS[state],
                    "args": {
                        "request": row.request,
                        "wait_state": state,
                        "cause": row.cause,
                    },
                }
            )
            cursor += dur_ms
    return events


def to_chrome_trace(
    result: "ExecutionResult",
    request_names: Optional[Sequence[str]] = None,
    recorder: Optional["obs.InMemoryRecorder"] = None,
    residuals: Optional[Sequence["obs.ResidualReport"]] = None,
    timeline_windows: Optional[Sequence["obs.WindowStats"]] = None,
    slo_reports: Optional[Sequence["obs.SloWindowReport"]] = None,
    blame: bool = False,
) -> str:
    """Serialize a run as a Chrome trace (JSON string).

    Args:
        result: The simulated execution.
        request_names: Optional display names per request (model names);
            defaults to ``request <i>``.
        recorder: An :class:`~repro.obs.InMemoryRecorder` that watched
            the planning run; when given, planner spans, metric counter
            tracks and provenance flow arrows are merged in (see module
            docstring).
        residuals: Prediction-accuracy reports for this run (see
            :func:`repro.obs.accuracy.join_execution`); when given, a
            ``prediction_residual_ms`` counter track is drawn on the
            execution timeline, one sample per slice at its finish
            time — drift renders as a rising staircase under the Gantt.
        timeline_windows: Closed :class:`~repro.obs.WindowStats` rows
            from a :class:`~repro.obs.TimelineAggregator` fold; when
            given, per-processor utilization, time-averaged queue depth
            and throughput counter tracks sample at each window
            boundary on the execution timeline.
        slo_reports: Closed :class:`~repro.obs.SloWindowReport` rows
            from an :class:`~repro.obs.SloEvaluator`; when given, one
            fast/slow burn-rate counter track per SLO class is drawn.
        blame: Render the blame view (requires a result carrying
            causality rows): critical-path slices are highlighted and
            per-processor ``<proc> waits`` threads draw each slice's
            wait interval colored by wait state (see module docstring
            for the legend).

    Returns:
        A JSON document in the Chrome tracing "traceEvents" format with
        one track (tid) per processor; durations are microseconds.

    Raises:
        ValueError: if ``request_names`` has the wrong length.
    """
    if request_names is not None and len(request_names) != result.num_requests:
        raise ValueError(
            f"expected {result.num_requests} names, got {len(request_names)}"
        )

    def name_of(request: int) -> str:
        if request_names is not None:
            return request_names[request]
        return f"request {request}"

    processors = sorted({r.processor for r in result.records})
    tids = {name: i for i, name in enumerate(processors)}
    events: List[Dict] = []
    events.extend(
        obs_export.process_metadata(
            obs_export.EXECUTION_PID, "execution (simulated time)"
        )
    )
    events.extend(
        obs_export.thread_metadata(obs_export.EXECUTION_PID, tid, proc)
        for proc, tid in tids.items()
    )
    path_keys: set = set()
    if blame and getattr(result, "causality", None):
        # Late import: obs.blame is a data-only leaf, but keeping it out
        # of module scope mirrors replay.py and keeps import time flat.
        from ..obs.blame import extract_critical_path

        path_keys = {
            (seg.request, seg.start_ms, seg.finish_ms)
            for seg in extract_critical_path(result).segments
            if seg.start_ms is not None
        }
    for rec in sorted(result.records, key=lambda r: r.start_ms):
        event = {
            "name": f"{name_of(rec.request)} / stage {rec.stage}",
            "cat": "slice",
            "ph": "X",
            "pid": obs_export.EXECUTION_PID,
            "tid": tids[rec.processor],
            "ts": rec.start_ms * 1000.0,
            "dur": rec.duration_ms * 1000.0,
            "args": {
                "request": rec.request,
                "solo_ms": rec.solo_ms,
                "slowdown": round(rec.slowdown, 4),
            },
        }
        if (rec.request, rec.start_ms, rec.finish_ms) in path_keys:
            event["cname"] = CRITICAL_PATH_COLOR
            event["args"]["critical_path"] = True  # type: ignore[index]
        events.append(event)
    if blame and getattr(result, "causality", None):
        wait_events = _blame_wait_events(result, tids, name_of)
        waiting_tids = {e["tid"] for e in wait_events}
        events.extend(
            obs_export.thread_metadata(
                obs_export.EXECUTION_PID,
                len(tids) + tid,
                f"{proc} waits",
            )
            for proc, tid in tids.items()
            if len(tids) + tid in waiting_tids
        )
        events.extend(wait_events)
    events.extend(_trace_counter_events(result))
    if residuals:
        events.extend(
            obs_export.residual_counter_events(
                residuals, pid=obs_export.EXECUTION_PID
            )
        )
    if timeline_windows:
        events.extend(
            obs_export.timeline_counter_events(
                timeline_windows, pid=obs_export.EXECUTION_PID
            )
        )
    if slo_reports:
        events.extend(
            obs_export.burn_rate_counter_events(
                slo_reports, pid=obs_export.EXECUTION_PID
            )
        )

    if recorder is not None and recorder.enabled:
        planner_events = obs_export.span_trace_events(
            recorder.spans, pid=obs_export.PLANNER_PID
        )
        if planner_events:
            events.extend(
                obs_export.process_metadata(
                    obs_export.PLANNER_PID,
                    "planner (wall time)",
                    sort_index=1,
                )
            )
            events.append(
                obs_export.thread_metadata(
                    obs_export.PLANNER_PID, 0, "planner"
                )
            )
            events.extend(planner_events)
            phase_events = obs_prof.phase_track_events(
                obs_prof.profile_spans(recorder.spans),
                pid=obs_export.PLANNER_PID,
                tid=1,
            )
            if phase_events:
                events.append(
                    obs_export.thread_metadata(
                        obs_export.PLANNER_PID, 1, "phases (self-profile)"
                    )
                )
                events.extend(phase_events)
        last_ts = max(
            (float(e["ts"]) + float(e.get("dur", 0.0)) for e in planner_events),
            default=0.0,
        )
        events.extend(
            obs_export.metric_counter_events(
                recorder.metrics, pid=obs_export.PLANNER_PID, ts_us=last_ts
            )
        )
        events.extend(
            _provenance_flows(result, recorder, tids, planner_events)
        )

    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def ascii_gantt(
    result: "ExecutionResult",
    request_names: Optional[Sequence[str]] = None,
    width: int = 72,
) -> str:
    """Render the run as a terminal Gantt chart.

    One row per processor; each request's slices are drawn with its
    digit/letter; idle time shows as dots (the visible bubbles).

    Raises:
        ValueError: for non-positive width or misfit names.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if request_names is not None and len(request_names) != result.num_requests:
        raise ValueError(
            f"expected {result.num_requests} names, got {len(request_names)}"
        )
    span = result.makespan_ms
    if span <= 0:
        return "(empty run)"

    glyphs = "0123456789abcdefghijklmnopqrstuvwxyz"
    processors = sorted({r.processor for r in result.records})
    label_width = max(len(p) for p in processors)
    lines = []
    for proc in processors:
        row = ["."] * width
        for rec in result.records:
            if rec.processor != proc:
                continue
            lo = int(rec.start_ms / span * width)
            hi = max(lo + 1, int(rec.finish_ms / span * width))
            glyph = glyphs[rec.request % len(glyphs)]
            for pos in range(lo, min(hi, width)):
                row[pos] = glyph
        lines.append(f"{proc:<{label_width}s} |{''.join(row)}|")
    legend = ", ".join(
        f"{glyphs[i % len(glyphs)]}={request_names[i] if request_names else i}"
        for i in range(result.num_requests)
    )
    # The ruler spans the chart body; at small widths the dashes shrink
    # to (at least) one instead of going negative.
    left, right = "0 ms", f"{span:.0f} ms"
    dashes = max(1, width - len(left) - len(right) - 2)
    lines.append(f"{'':<{label_width}s}  {left} {'-' * dashes} {right}")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def write_chrome_trace(
    result: "ExecutionResult",
    path: str,
    request_names: Optional[Sequence[str]] = None,
    recorder: Optional["obs.InMemoryRecorder"] = None,
    residuals: Optional[Sequence["obs.ResidualReport"]] = None,
    timeline_windows: Optional[Sequence["obs.WindowStats"]] = None,
    slo_reports: Optional[Sequence["obs.SloWindowReport"]] = None,
    blame: bool = False,
) -> None:
    """Write the (optionally merged, see :func:`to_chrome_trace`)
    Chrome trace JSON to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            to_chrome_trace(
                result,
                request_names,
                recorder=recorder,
                residuals=residuals,
                timeline_windows=timeline_windows,
                slo_reports=slo_reports,
                blame=blame,
            )
        )
