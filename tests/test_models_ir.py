"""Unit tests for the layer-level model IR."""

import math

import pytest

from repro.models.ir import (
    Layer,
    ModelGraph,
    NPU_SUPPORTED_OPS,
    OpType,
    linearize,
    validate_partition,
)


def make_layer(name="l0", op=OpType.CONV, flops=100.0, weights=10.0,
               acts=20.0, out=5.0):
    return Layer(
        name=name,
        op=op,
        flops=flops,
        weight_bytes=weights,
        activation_bytes=acts,
        output_bytes=out,
    )


def make_model(num_layers=4, name="m", op=OpType.CONV):
    layers = tuple(
        make_layer(name=f"l{i}", op=op, flops=10.0 * (i + 1)) for i in range(num_layers)
    )
    return ModelGraph(name=name, layers=layers)


class TestLayer:
    def test_memory_bytes_sums_weights_and_activations(self):
        layer = make_layer(weights=10.0, acts=30.0)
        assert layer.memory_bytes == 40.0

    def test_arithmetic_intensity(self):
        layer = make_layer(flops=80.0, weights=10.0, acts=30.0)
        assert layer.arithmetic_intensity == 2.0

    def test_arithmetic_intensity_zero_bytes(self):
        layer = make_layer(flops=10.0, weights=0.0, acts=0.0)
        assert math.isinf(layer.arithmetic_intensity)

    def test_arithmetic_intensity_zero_flops_zero_bytes(self):
        layer = make_layer(flops=0.0, weights=0.0, acts=0.0)
        assert layer.arithmetic_intensity == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            make_layer(flops=-1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            make_layer(weights=-1.0)

    def test_negative_output_rejected(self):
        with pytest.raises(ValueError):
            make_layer(out=-1.0)

    @pytest.mark.parametrize("op", [OpType.CONV, OpType.MATMUL, OpType.POOL])
    def test_npu_supported_ops(self, op):
        assert make_layer(op=op).npu_supported()

    @pytest.mark.parametrize(
        "op", [OpType.MISH, OpType.EMBEDDING, OpType.UPSAMPLE, OpType.MASKED_ATTENTION]
    )
    def test_npu_unsupported_ops(self, op):
        assert not make_layer(op=op).npu_supported()

    def test_supported_set_excludes_fallback_ops(self):
        assert OpType.MISH not in NPU_SUPPORTED_OPS
        assert OpType.MASKED_ATTENTION not in NPU_SUPPORTED_OPS
        assert OpType.ATTENTION in NPU_SUPPORTED_OPS


class TestModelGraph:
    def test_length_and_iteration(self):
        model = make_model(5)
        assert len(model) == 5
        assert model.num_layers == 5
        assert [l.name for l in model] == [f"l{i}" for i in range(5)]
        assert model[2].name == "l2"

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            ModelGraph(name="bad", layers=())

    def test_duplicate_layer_names_rejected(self):
        layers = (make_layer("a"), make_layer("a"))
        with pytest.raises(ValueError):
            ModelGraph(name="bad", layers=layers)

    def test_totals(self):
        model = make_model(3)
        assert model.total_flops == 10.0 + 20.0 + 30.0
        assert model.total_weight_bytes == 30.0
        assert model.total_memory_bytes == 90.0

    def test_slice_flops_matches_direct_sum(self):
        model = make_model(5)
        assert model.slice_flops(1, 3) == 20.0 + 30.0 + 40.0

    def test_slice_bounds_checked(self):
        model = make_model(3)
        with pytest.raises(IndexError):
            model.slice_flops(2, 1)
        with pytest.raises(IndexError):
            model.slice_flops(0, 3)
        with pytest.raises(IndexError):
            model.slice_flops(-1, 1)

    def test_boundary_bytes_interior(self):
        model = make_model(4)
        assert model.boundary_bytes(1) == 5.0

    def test_boundary_bytes_at_tail_is_zero(self):
        model = make_model(4)
        assert model.boundary_bytes(3) == 0.0

    def test_boundary_bytes_out_of_range(self):
        model = make_model(2)
        with pytest.raises(IndexError):
            model.boundary_bytes(5)

    def test_npu_supported_all_supported(self):
        assert make_model(op=OpType.CONV).npu_supported()

    def test_npu_supported_with_fallback_layer(self):
        layers = (make_layer("a"), make_layer("b", op=OpType.MISH))
        model = ModelGraph(name="m", layers=layers)
        assert not model.npu_supported()
        assert model.unsupported_layers() == (1,)

    def test_linearize_concatenates(self):
        a, b = make_model(2, name="a"), make_model(3, name="b")
        assert len(linearize([a, b])) == 5


class TestValidatePartition:
    def test_valid_cuts(self):
        validate_partition(make_model(6), [2, 4])

    def test_out_of_range_cut(self):
        with pytest.raises(ValueError):
            validate_partition(make_model(4), [4])

    def test_zero_cut_rejected(self):
        with pytest.raises(ValueError):
            validate_partition(make_model(4), [0])

    def test_unsorted_cuts_rejected(self):
        with pytest.raises(ValueError):
            validate_partition(make_model(6), [4, 2])

    def test_duplicate_cuts_rejected(self):
        with pytest.raises(ValueError):
            validate_partition(make_model(6), [2, 2])
