"""Extension experiment: robustness of the headline ordering.

Our contention model's constants (coupling matrix, victim sensitivity)
are calibrated to the paper's measured slowdown bands; a fair question
is whether the *qualitative* result — Hetero2Pipe beats the serial and
CPU-pipeline baselines and stays competitive with Band — depends on
that exact calibration.  This sweep scales the contention coupling
globally from "no contention at all" to 2x the calibrated strength and
re-runs the comparison at every point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.band import execute_band
from ..baselines.mnn_serial import plan_mnn_serial
from ..core.planner import Hetero2PipePlanner
from ..hardware.soc import SocSpec, get_soc
from ..profiling.profiler import SocProfiler
from ..runtime.executor import execute_plan
from ..workloads.generator import sample_combinations
from .common import format_table, geomean


@dataclass(frozen=True)
class SensitivityPoint:
    """One coupling scale's aggregate speedups."""

    coupling_scale: float
    speedup_vs_mnn: float
    speedup_vs_band: float


def scaled_soc(soc: SocSpec, coupling_scale: float) -> SocSpec:
    """A copy of the SoC with all coupling factors scaled."""
    if coupling_scale < 0:
        raise ValueError("coupling scale must be >= 0")
    return dataclasses.replace(
        soc,
        coupling={
            pair: value * coupling_scale
            for pair, value in soc.coupling.items()
        },
    )


def run(
    base_soc: Optional[SocSpec] = None,
    coupling_scales: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    num_combinations: int = 8,
    seed: int = 4,
) -> List[SensitivityPoint]:
    """Sweep the contention strength and re-measure the ordering."""
    base_soc = base_soc or get_soc("kirin990")
    specs = sample_combinations(count=num_combinations, seed=seed)
    points: List[SensitivityPoint] = []
    for scale in coupling_scales:
        soc = scaled_soc(base_soc, scale)
        profiler = SocProfiler(soc)
        planner = Hetero2PipePlanner(soc)
        vs_mnn, vs_band = [], []
        for spec in specs:
            models = spec.models()
            mnn = execute_plan(
                plan_mnn_serial(soc, models, profiler)
            ).makespan_ms
            band = execute_band(soc, models, profiler).makespan_ms
            h2p = execute_plan(planner.plan(models).plan).makespan_ms
            vs_mnn.append(mnn / h2p)
            vs_band.append(band / h2p)
        points.append(
            SensitivityPoint(
                coupling_scale=scale,
                speedup_vs_mnn=geomean(vs_mnn),
                speedup_vs_band=geomean(vs_band),
            )
        )
    return points


def render(points: Sequence[SensitivityPoint]) -> str:
    headers = ["coupling_scale", "H2P_vs_MNN", "H2P_vs_Band"]
    body = [
        [p.coupling_scale, round(p.speedup_vs_mnn, 2), round(p.speedup_vs_band, 2)]
        for p in points
    ]
    return format_table(headers, body)


def main(num_combinations: int = 6) -> str:
    return render(run(num_combinations=num_combinations))


if __name__ == "__main__":
    print(main())
