"""H2P102 — no ``==`` / ``!=`` against float literals in scheduling math.

Slice costs, makespans, bubbles and contention intensities are all
floats produced by chains of roofline arithmetic; exact equality against
a float literal is either dead (never true after accumulation) or a
latent tie-break bug that flips plans between machines.  Use
:func:`repro.util.approx_eq` (``math.isclose`` with project defaults)
instead.  Comparisons against the :data:`repro.profiling.INFEASIBLE`
sentinel are exempt — ``inf == inf`` is exact and is the documented
feasibility idiom (H2P105 polices the sentinel's *arithmetic* misuse).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, LintRule, register_rule

_SENTINEL_NAMES = {"INFEASIBLE"}


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # ``-1.0`` parses as UnaryOp(USub, Constant(1.0)).
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        return _is_float_literal(node.operand)
    return False


def _mentions_sentinel(*nodes: ast.expr) -> bool:
    for node in nodes:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in _SENTINEL_NAMES:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr in _SENTINEL_NAMES:
                return True
    return False


@register_rule
class FloatEqualityRule(LintRule):
    code = "H2P102"
    name = "no-float-literal-equality"
    rationale = (
        "scheduling math accumulates roofline floats; exact equality "
        "against a literal is machine-dependent — use repro.util.approx_eq"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if not (_is_float_literal(left) or _is_float_literal(right)):
                    continue
                if _mentions_sentinel(left, right):
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    ctx,
                    node,
                    f"float literal compared with '{symbol}'; use "
                    "repro.util.approx_eq (or an explicit tolerance)",
                )
