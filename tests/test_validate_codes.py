"""One minimally-broken plan per ``core.validate`` violation code, plus a
hypothesis property: planner-produced plans always validate clean."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import Hetero2PipePlanner, PlannerConfig
from repro.core.plan import PipelinePlan, StageAssignment
from repro.core.validate import validate_plan
from repro.hardware.soc import SOC_NAMES, get_soc
from repro.models.zoo import MODEL_NAMES, get_model
from repro.profiling.profiler import SocProfiler


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


def _raw_assignment(profiler, name, slices):
    # Bypass __post_init__ so intentionally-broken slices survive.
    assignment = StageAssignment.__new__(StageAssignment)
    assignment.profile = profiler.profile(get_model(name))
    assignment.slices = list(slices)
    return assignment


def _raw_plan(kirin, profiler, slices_per_model, order=()):
    return PipelinePlan(
        soc=kirin,
        processors=tuple(kirin.processors),
        assignments=[
            _raw_assignment(profiler, name, slices)
            for name, slices in slices_per_model
        ],
        order=tuple(order),
    )


def _codes(plan):
    return {v.code for v in validate_plan(plan)}


class TestEveryViolationCode:
    def test_unknown_processor(self, kirin, profiler):
        # Rename one pipeline stage to a processor the SoC doesn't have.
        alien = dataclasses.replace(kirin.processors[0], name="dsp")
        n = get_model("alexnet").num_layers
        plan = PipelinePlan(
            soc=kirin,
            processors=(alien,) + tuple(kirin.processors[1:]),
            assignments=[
                _raw_assignment(
                    profiler, "alexnet", [(0, n - 1), None, None, None]
                )
            ],
        )
        assert "unknown-processor" in _codes(plan)

    def test_bad_order(self, kirin, profiler):
        n = get_model("alexnet").num_layers
        plan = _raw_plan(
            kirin,
            profiler,
            [("alexnet", [(0, n - 1), None, None, None])],
            order=(1,),  # not a permutation of {0}
        )
        assert "bad-order" in _codes(plan)

    def test_gap_or_overlap(self, kirin, profiler):
        n = get_model("vgg16").num_layers
        plan = _raw_plan(
            kirin, profiler, [("vgg16", [(0, 2), (4, n - 1), None, None])]
        )
        assert "gap-or-overlap" in _codes(plan)

    def test_bad_slice(self, kirin, profiler):
        n = get_model("vgg16").num_layers
        plan = _raw_plan(
            kirin, profiler, [("vgg16", [(0, n), None, None, None])]
        )
        assert "bad-slice" in _codes(plan)

    def test_incomplete_cover(self, kirin, profiler):
        plan = _raw_plan(
            kirin, profiler, [("vgg16", [(0, 3), None, None, None])]
        )
        assert "incomplete-cover" in _codes(plan)

    def test_unsupported_operator(self, kirin, profiler):
        # YOLOv4 contains NPU-unsupported ops; force it onto the NPU.
        npu_stage = next(
            k for k, p in enumerate(kirin.processors) if p.name == "npu"
        )
        n = get_model("yolov4").num_layers
        slices = [None] * len(kirin.processors)
        slices[npu_stage] = (0, n - 1)
        plan = _raw_plan(kirin, profiler, [("yolov4", slices)])
        assert "unsupported-operator" in _codes(plan)

    def test_memory_capacity(self, kirin, profiler):
        tiny = dataclasses.replace(kirin, memory_capacity_bytes=1e6)
        n = get_model("vgg16").num_layers
        plan = PipelinePlan(
            soc=tiny,
            processors=tuple(kirin.processors),
            assignments=[
                _raw_assignment(
                    profiler, "vgg16", [(0, n - 1), None, None, None]
                )
            ],
        )
        assert "memory-capacity" in _codes(plan)


_PLANNERS = {}


def _planner(soc_name, config_key):
    key = (soc_name, config_key)
    if key not in _PLANNERS:
        config = (
            PlannerConfig()
            if config_key == "default"
            else PlannerConfig.no_contention_or_tail()
        )
        soc = get_soc(soc_name)
        # Reuse one estimator per SoC across configs: fitting dominates.
        donor = next(
            (p for (s, _), p in _PLANNERS.items() if s == soc_name), None
        )
        estimator = donor.estimator if donor is not None else None
        _PLANNERS[key] = Hetero2PipePlanner(soc, config, estimator=estimator)
    return _PLANNERS[key]


class TestPlannerPlansAlwaysValidate:
    @given(
        soc_name=st.sampled_from(SOC_NAMES),
        model_names=st.lists(
            st.sampled_from(MODEL_NAMES), min_size=1, max_size=4
        ),
        config_key=st.sampled_from(["default", "no_ct"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_plan_validates_clean(self, soc_name, model_names, config_key):
        planner = _planner(soc_name, config_key)
        report = planner.plan([get_model(n) for n in model_names])
        assert validate_plan(report.plan) == []
