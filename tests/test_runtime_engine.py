"""Tests for the discrete-event engine, arrival processes and the
legacy-executor equivalence guarantee."""

import pytest

from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.runtime._legacy_executor import legacy_simulate_chains
from repro.runtime.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrival_process,
    resolve_arrivals,
)
from repro.runtime.engine import (
    ARRIVAL,
    CANCELLATION,
    DEPARTURE,
    PREEMPTION,
    TASK_READY,
    ChainTask,
    DiscreteEventEngine,
    ExecutionResult,
    TaskRecord,
)
from repro.runtime.executor import plan_to_chains, simulate_chains


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def small_plan(kirin):
    models = [get_model(n) for n in ("squeezenet", "mobilenetv2", "resnet50")]
    return Hetero2PipePlanner(kirin).plan(models).plan


def _task(soc, request, solo_ms, proc_idx=0, working_set=0.0):
    return ChainTask(
        request=request,
        proc=soc.processors[proc_idx],
        solo_ms=solo_ms,
        workload=None,
        working_set=working_set,
    )


def _assert_results_equal(engine, legacy, tol=1e-9):
    assert [
        (r.request, r.stage, r.processor) for r in engine.records
    ] == [(r.request, r.stage, r.processor) for r in legacy.records]
    for rec_e, rec_l in zip(engine.records, legacy.records):
        assert abs(rec_e.start_ms - rec_l.start_ms) <= tol
        assert abs(rec_e.finish_ms - rec_l.finish_ms) <= tol
    assert engine.request_finish_ms == pytest.approx(
        legacy.request_finish_ms, abs=tol
    )
    assert abs(engine.makespan_ms - legacy.makespan_ms) <= tol
    assert engine.memory_pressure_events == legacy.memory_pressure_events
    assert len(engine.trace) == len(legacy.trace)


class TestGoldenEquivalence:
    """The engine must reproduce the frozen legacy loop exactly.

    The full zoo x SoC grid runs in ``benchmarks/equivalence_guard.py``
    (CI); these are the fast in-tree representatives.
    """

    def test_closed_loop(self, kirin, small_plan):
        engine = simulate_chains(
            kirin, plan_to_chains(small_plan), record=False
        )
        legacy = legacy_simulate_chains(kirin, plan_to_chains(small_plan))
        _assert_results_equal(engine, legacy)

    def test_staggered_arrivals(self, kirin, small_plan):
        arrivals = [0.0, 17.5, 42.0]
        engine = simulate_chains(
            kirin, plan_to_chains(small_plan), arrivals=arrivals, record=False
        )
        legacy = legacy_simulate_chains(
            kirin, plan_to_chains(small_plan), arrivals=arrivals
        )
        _assert_results_equal(engine, legacy)

    def test_traced_run(self, kirin, small_plan):
        engine = simulate_chains(
            kirin, plan_to_chains(small_plan), trace=True, record=False
        )
        legacy = legacy_simulate_chains(
            kirin, plan_to_chains(small_plan), trace=True
        )
        _assert_results_equal(engine, legacy)
        assert engine.trace  # both sampled the same number of edges

    def test_fault_injection(self, kirin, small_plan):
        offline = {small_plan.processors[0].name: 15.0}
        engine = simulate_chains(
            kirin,
            plan_to_chains(small_plan),
            processor_offline_ms=offline,
            record=False,
        )
        legacy = legacy_simulate_chains(
            kirin, plan_to_chains(small_plan), processor_offline_ms=offline
        )
        _assert_results_equal(engine, legacy)

    def test_validation_errors_match_legacy(self, kirin):
        with pytest.raises(ValueError, match="arrival times"):
            simulate_chains(
                kirin, [[_task(kirin, 0, 1.0)]], arrivals=[0.0, 1.0]
            )
        huge = kirin.memory_capacity_bytes * 2.0
        with pytest.raises(MemoryError, match="alone"):
            simulate_chains(
                kirin, [[_task(kirin, 0, 1.0, working_set=huge)]]
            )


class TestEpsilonFix:
    """The deliberate divergence: no starts before the arrival time."""

    def test_arrival_within_eps_of_edge(self, kirin):
        # Request 1 arrives 0.5e-9 after request 0's completion edge at
        # t=10.  The legacy scan treats it as already arrived at t=10
        # and starts it *before* its own arrival (negative queueing
        # delay); the engine advances now to the arrival timestamp.
        arrival = 10.0 + 0.5e-9
        chains = [[_task(kirin, 0, 10.0)], [_task(kirin, 1, 10.0)]]
        legacy = legacy_simulate_chains(
            kirin,
            [[_task(kirin, 0, 10.0)], [_task(kirin, 1, 10.0)]],
            arrivals=[0.0, arrival],
        )
        legacy_start = min(
            r.start_ms for r in legacy.records if r.request == 1
        )
        assert legacy_start < arrival  # the legacy bug, pinned

        engine = simulate_chains(
            kirin, chains, arrivals=[0.0, arrival], record=False
        )
        assert engine.first_start_ms(1) >= arrival
        assert engine.queueing_delay_ms(1) >= 0.0

    def test_queueing_delays_nonnegative_by_construction(self, kirin):
        chains = [[_task(kirin, i, 5.0)] for i in range(6)]
        result = simulate_chains(
            kirin,
            chains,
            arrivals=PoissonArrivals(3.0, seed=11),
            record=False,
        )
        assert all(d >= 0.0 for d in result.queueing_delays_ms())


class TestArrivalProcesses:
    def test_deterministic_periodic(self):
        assert DeterministicArrivals(10.0).times_ms(4) == [
            0.0,
            10.0,
            20.0,
            30.0,
        ]
        assert DeterministicArrivals(10.0, start_ms=5.0).times_ms(2) == [
            5.0,
            15.0,
        ]

    def test_poisson_seeded_and_monotone(self):
        a = PoissonArrivals(10.0, seed=3).times_ms(50)
        b = PoissonArrivals(10.0, seed=3).times_ms(50)
        c = PoissonArrivals(10.0, seed=4).times_ms(50)
        assert a == b  # same seed replays identically
        assert a != c
        assert a == sorted(a)
        assert all(t > 0 for t in a)
        mean_gap = a[-1] / len(a)
        assert 5.0 < mean_gap < 20.0  # crude sanity on the rate

    def test_trace_replay_loops(self):
        proc = TraceArrivals([0.0, 3.0, 7.0], cycle_gap_ms=5.0)
        assert proc.times_ms(5) == [0.0, 3.0, 7.0, 12.0, 15.0]

    def test_trace_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            TraceArrivals([])
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceArrivals([3.0, 1.0])

    def test_resolve_arrivals(self):
        assert resolve_arrivals(3, None) == [0.0, 0.0, 0.0]
        assert resolve_arrivals(2, [1.0, 2.0]) == [1.0, 2.0]
        assert resolve_arrivals(2, DeterministicArrivals(4.0)) == [0.0, 4.0]
        with pytest.raises(ValueError, match="expected 2"):
            resolve_arrivals(2, [1.0])

    def test_factory(self):
        assert make_arrival_process("closed") is None
        assert isinstance(
            make_arrival_process("poisson", seed=1), PoissonArrivals
        )
        assert isinstance(
            make_arrival_process("periodic"), DeterministicArrivals
        )
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrival_process("bursty")
        with pytest.raises(ValueError, match="trace"):
            make_arrival_process("trace")

    def test_base_process_is_closed_loop(self):
        assert ArrivalProcess().times_ms(3) == [0.0, 0.0, 0.0]


class TestDeadlines:
    def test_deadline_drop_when_start_is_late(self, kirin):
        # Single processor: request 1 queues behind a 50 ms slice and
        # cannot start within its 10 ms deadline.
        chains = [[_task(kirin, 0, 50.0)], [_task(kirin, 1, 50.0)]]
        result = simulate_chains(
            kirin,
            chains,
            arrivals=[0.0, 1.0],
            deadline_ms=[None, 10.0],
            record=False,
        )
        assert result.dropped_requests == (1,)
        assert result.deadline_drops == 1
        assert result.num_completed == 1
        assert result.completed_requests() == [0]
        assert result.request_finish_ms[1] == pytest.approx(11.0)
        assert result.queueing_delay_ms(1) is None
        # Dropped requests carry no completion latency.
        assert result.latency_percentile_ms(100.0) == pytest.approx(50.0)

    def test_deadline_met_does_not_drop(self, kirin):
        chains = [[_task(kirin, 0, 5.0)], [_task(kirin, 1, 5.0)]]
        result = simulate_chains(
            kirin,
            chains,
            arrivals=[0.0, 1.0],
            deadline_ms=30.0,
            record=False,
        )
        assert result.dropped_requests == ()
        assert result.num_completed == 2

    def test_deadline_guards_start_not_finish(self, kirin):
        # The drop condition is "first slice unstarted by the deadline";
        # a request that started in time may finish after it.
        chains = [[_task(kirin, 0, 40.0)]]
        result = simulate_chains(
            kirin, chains, deadline_ms=10.0, record=False
        )
        assert result.dropped_requests == ()
        assert result.request_finish_ms[0] == pytest.approx(40.0)

    def test_deadline_validation(self, kirin):
        chains = [[_task(kirin, 0, 1.0)]]
        with pytest.raises(ValueError, match="deadline"):
            simulate_chains(kirin, chains, deadline_ms=-1.0)
        with pytest.raises(ValueError, match="expected 1 deadline"):
            simulate_chains(kirin, chains, deadline_ms=[1.0, 2.0])

    def test_all_dropped_has_no_latency(self, kirin):
        chains = [[_task(kirin, 0, 5.0)]]
        result = simulate_chains(
            kirin, chains, arrivals=[5.0], deadline_ms=0.0, record=False
        )
        # Deadline 0 at arrival 5: the cancellation fires at t=5 before
        # any slice starts (events pop before scheduling each step).
        assert result.dropped_requests == (0,)
        with pytest.raises(ValueError, match="no completed"):
            result.latency_percentile_ms(50.0)
        assert result.throughput_per_s == 0.0


class TestCancellationAndPreemption:
    def test_user_cancellation_frees_processor(self, kirin):
        chains = [[_task(kirin, 0, 50.0)], [_task(kirin, 1, 10.0)]]
        engine = DiscreteEventEngine(kirin, chains, record=False)
        engine.schedule_cancellation(0, 20.0)
        result = engine.run()
        assert result.cancelled_requests == (0,)
        assert result.dropped_requests == ()  # user cancel, not a drop
        assert result.request_finish_ms[0] == pytest.approx(20.0)
        # Request 1 takes over the freed processor at the cancel edge.
        assert result.request_finish_ms[1] == pytest.approx(30.0)
        assert [r.request for r in result.records] == [1]

    def test_cancellation_releases_memory(self, kirin):
        cap = kirin.memory_capacity_bytes
        chains = [
            [_task(kirin, 0, 50.0, proc_idx=0, working_set=0.7 * cap)],
            [_task(kirin, 1, 10.0, proc_idx=1, working_set=0.6 * cap)],
        ]
        engine = DiscreteEventEngine(kirin, chains, record=False)
        engine.schedule_cancellation(0, 5.0)
        result = engine.run()
        # Request 1 was memory-blocked until the cancellation released
        # request 0's arena — and no forced overcommit was needed.
        assert result.memory_pressure_events == 0
        assert result.first_start_ms(1) == pytest.approx(5.0)

    def test_cancellation_after_finish_is_noop(self, kirin):
        chains = [[_task(kirin, 0, 5.0)]]
        engine = DiscreteEventEngine(kirin, chains, record=False)
        engine.schedule_cancellation(0, 100.0)
        result = engine.run()
        assert result.cancelled_requests == ()
        assert result.request_finish_ms[0] == pytest.approx(5.0)

    def test_cancellation_request_range_checked(self, kirin):
        engine = DiscreteEventEngine(
            kirin, [[_task(kirin, 0, 1.0)]], record=False
        )
        with pytest.raises(ValueError, match="out of range"):
            engine.schedule_cancellation(7, 1.0)

    def test_preemption_preserves_progress(self, kirin):
        chains = [[_task(kirin, 0, 50.0)]]
        engine = DiscreteEventEngine(
            kirin, chains, record=False, keep_events=True
        )
        engine.schedule_preemption(0, 10.0)
        result = engine.run()
        # The slice resumes with its remaining work intact (no arena
        # double-charge, no restart from zero): total finish unchanged.
        assert result.request_finish_ms[0] == pytest.approx(50.0)
        assert PREEMPTION in {e.kind for e in result.events}
        [record] = result.records
        assert record.start_ms == pytest.approx(0.0)  # original start kept

    def test_preemption_without_running_task_is_noop(self, kirin):
        chains = [[_task(kirin, 0, 5.0)]]
        engine = DiscreteEventEngine(
            kirin, chains, arrivals=[20.0], record=False, keep_events=True
        )
        engine.schedule_preemption(0, 1.0)
        result = engine.run()
        assert PREEMPTION not in {e.kind for e in result.events}
        assert result.request_finish_ms[0] == pytest.approx(25.0)


class TestIncrementalStepping:
    def test_run_until_snapshots_partial_state(self, kirin):
        # Request 1's arrival at t=5 clips the first step exactly at
        # the run_until boundary, so the snapshot shows no completions.
        chains = [[_task(kirin, 0, 10.0)], [_task(kirin, 1, 10.0)]]
        engine = DiscreteEventEngine(
            kirin, chains, arrivals=[0.0, 5.0], record=False
        )
        engine.run_until_ms(5.0)
        assert not engine.done
        assert engine.now_ms == pytest.approx(5.0)
        partial = engine.result()
        assert partial.records == []
        while engine.step():
            pass
        assert engine.done
        assert engine.result().request_finish_ms == pytest.approx(
            [10.0, 20.0]
        )

    def test_engine_is_single_use(self, kirin):
        engine = DiscreteEventEngine(
            kirin, [[_task(kirin, 0, 1.0)]], record=False
        )
        engine.run()
        with pytest.raises(RuntimeError, match="single-use"):
            engine.run()

    def test_event_log_taxonomy(self, kirin):
        chains = [[_task(kirin, 0, 5.0)], [_task(kirin, 1, 5.0)]]
        engine = DiscreteEventEngine(
            kirin,
            chains,
            arrivals=[0.0, 2.0],
            deadline_ms=[None, 1.0],
            record=False,
            keep_events=True,
        )
        result = engine.run()
        kinds = [e.kind for e in result.events]
        assert kinds.count(ARRIVAL) == 2
        assert TASK_READY in kinds
        assert DEPARTURE in kinds
        assert CANCELLATION in kinds  # the deadline drop
        assert all(
            e.time_ms <= later.time_ms
            for e, later in zip(result.events, result.events[1:])
        )

    def test_events_not_kept_by_default(self, kirin):
        result = simulate_chains(
            kirin, [[_task(kirin, 0, 1.0)]], record=False
        )
        assert result.events == []


class TestMemoryResidency:
    """Constraint 6 under staggered arrivals: wait, don't over-admit."""

    def _chains(self, soc):
        cap = soc.memory_capacity_bytes
        return [
            [_task(soc, 0, 10.0, proc_idx=0, working_set=0.7 * cap)],
            [_task(soc, 1, 5.0, proc_idx=1, working_set=0.6 * cap)],
        ]

    @pytest.mark.parametrize(
        "simulate",
        [simulate_chains, legacy_simulate_chains],
        ids=["engine", "legacy"],
    )
    def test_blocked_task_waits_for_drain(self, kirin, simulate):
        # Request 1's processor is free at its arrival (t=2) but
        # 0.7C + 0.6C exceeds capacity: it must wait for request 0's
        # arena to drain at t=10, not deadlock and not over-admit.
        result = simulate(kirin, self._chains(kirin), arrivals=[0.0, 2.0])
        assert result.memory_pressure_events == 0
        start_1 = min(r.start_ms for r in result.records if r.request == 1)
        assert start_1 == pytest.approx(10.0)
        assert result.request_finish_ms[1] == pytest.approx(15.0)

    def test_engine_reports_wait_as_queueing_delay(self, kirin):
        result = simulate_chains(
            kirin, self._chains(kirin), arrivals=[0.0, 2.0], record=False
        )
        assert result.queueing_delay_ms(1) == pytest.approx(8.0)

    @pytest.mark.parametrize(
        "simulate",
        [simulate_chains, legacy_simulate_chains],
        ids=["engine", "legacy"],
    )
    def test_residency_wedge_forces_one_start(self, kirin, simulate):
        # A single request whose second slice cannot fit next to its own
        # held arena: every processor is idle and blocked, so the
        # engine overcommits exactly once and counts the pressure event.
        cap = kirin.memory_capacity_bytes
        chains = [
            [
                _task(kirin, 0, 10.0, proc_idx=0, working_set=0.7 * cap),
                _task(kirin, 0, 10.0, proc_idx=1, working_set=0.4 * cap),
            ]
        ]
        result = simulate(kirin, chains)
        assert result.memory_pressure_events == 1
        assert result.request_finish_ms[0] == pytest.approx(20.0)

    def test_trace_shows_residency_bounded(self, kirin):
        result = simulate_chains(
            kirin,
            self._chains(kirin),
            arrivals=[0.0, 2.0],
            trace=True,
            record=False,
        )
        cap = kirin.memory_capacity_bytes
        assert result.trace
        assert all(p.used_bytes <= cap for p in result.trace)


class TestExecutionResultExtensions:
    def test_first_start_derived_from_records_for_old_archives(self):
        # Results rebuilt from pre-engine archives have no
        # request_first_start_ms field; first starts derive from records.
        result = ExecutionResult(
            records=[
                TaskRecord(0, 0, "gpu", 3.0, 7.0, 4.0),
                TaskRecord(0, 1, "npu", 7.0, 9.0, 2.0),
            ],
            makespan_ms=9.0,
            request_arrival_ms=[1.0],
            request_finish_ms=[9.0],
            trace=[],
            processor_busy_ms={},
        )
        assert result.first_start_ms(0) == pytest.approx(3.0)
        assert result.queueing_delay_ms(0) == pytest.approx(2.0)
        assert result.mean_queueing_delay_ms == pytest.approx(2.0)
        assert result.num_completed == 1

    def test_never_started_request_has_none_delay(self):
        result = ExecutionResult(
            records=[],
            makespan_ms=0.0,
            request_arrival_ms=[0.0],
            request_finish_ms=[0.0],
            trace=[],
            processor_busy_ms={},
        )
        assert result.first_start_ms(0) is None
        assert result.queueing_delay_ms(0) is None
        # Tri-state: None (nothing ever started) is distinguishable
        # from a genuine zero-wait run.
        assert result.mean_queueing_delay_ms is None
