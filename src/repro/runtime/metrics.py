"""Uniform scheme-comparison framework.

The experiments repeatedly run {MNN, Pipe-it, Band, No-C/T, H2P} over a
workload set and aggregate latency/throughput/speedups; this module
captures that pattern once: a :class:`Scheme` is a named callable from a
request list to an :class:`~repro.runtime.executor.ExecutionResult`, and
:func:`compare_schemes` runs a registry of them over workloads and
returns a :class:`ComparisonMatrix` with all the aggregate views the
figures need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..util import geomean
from .executor import ExecutionResult

#: A scheme maps a request list to an executed result.
SchemeFn = Callable[[Sequence[ModelGraph]], ExecutionResult]


@dataclass(frozen=True)
class Scheme:
    """One named scheduling scheme."""

    name: str
    run: SchemeFn


@dataclass
class ComparisonMatrix:
    """Latency/throughput of every scheme on every workload."""

    scheme_names: Tuple[str, ...]
    latency_ms: Dict[str, List[float]]
    throughput: Dict[str, List[float]]

    @property
    def num_workloads(self) -> int:
        if not self.scheme_names:
            return 0
        return len(self.latency_ms[self.scheme_names[0]])

    def mean_latency_ms(self, scheme: str) -> float:
        values = self.latency_ms[scheme]
        return sum(values) / len(values)

    def mean_throughput(self, scheme: str) -> float:
        values = self.throughput[scheme]
        return sum(values) / len(values)

    def speedups(self, baseline: str, subject: str) -> List[float]:
        """Per-workload latency ratios ``baseline / subject``."""
        return [
            b / s
            for b, s in zip(self.latency_ms[baseline], self.latency_ms[subject])
        ]

    def speedup_summary(
        self, baseline: str, subject: str
    ) -> Tuple[float, float, float]:
        """(geomean, max, min) speedup of ``subject`` over ``baseline``."""
        ratios = self.speedups(baseline, subject)
        return geomean(ratios), max(ratios), min(ratios)

    def win_rate(self, subject: str, opponent: str) -> float:
        """Fraction of workloads where ``subject`` is strictly faster."""
        wins = sum(
            1
            for s, o in zip(self.latency_ms[subject], self.latency_ms[opponent])
            if s < o
        )
        return wins / max(1, self.num_workloads)

    def leaderboard(self) -> List[Tuple[str, float]]:
        """Schemes sorted by mean latency, fastest first."""
        return sorted(
            ((name, self.mean_latency_ms(name)) for name in self.scheme_names),
            key=lambda kv: kv[1],
        )


def compare_schemes(
    schemes: Sequence[Scheme],
    workloads: Sequence[Sequence[ModelGraph]],
) -> ComparisonMatrix:
    """Run every scheme over every workload.

    Raises:
        ValueError: on empty schemes/workloads or duplicate names.
    """
    if not schemes:
        raise ValueError("need at least one scheme")
    if not workloads:
        raise ValueError("need at least one workload")
    names = [s.name for s in schemes]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scheme names: {names}")

    latency: Dict[str, List[float]] = {name: [] for name in names}
    throughput: Dict[str, List[float]] = {name: [] for name in names}
    for workload in workloads:
        for scheme in schemes:
            result = scheme.run(workload)
            latency[scheme.name].append(result.makespan_ms)
            throughput[scheme.name].append(result.throughput_per_s)
    return ComparisonMatrix(
        scheme_names=tuple(names),
        latency_ms=latency,
        throughput=throughput,
    )


def standard_schemes(soc: SocSpec) -> List[Scheme]:
    """The paper's Fig. 7 scheme line-up, ready to compare.

    Returns MNN-serial, Pipe-it, Band, Hetero2Pipe (No C/T) and full
    Hetero2Pipe, each bound to the given SoC with a shared profiler.
    """
    from ..baselines.band import execute_band
    from ..baselines.mnn_serial import plan_mnn_serial
    from ..baselines.pipe_it import plan_pipe_it
    from ..core.planner import Hetero2PipePlanner, PlannerConfig
    from ..profiling.profiler import SocProfiler
    from .executor import execute_plan

    profiler = SocProfiler(soc)
    planner = Hetero2PipePlanner(soc)
    planner_no_ct = Hetero2PipePlanner(soc, PlannerConfig.no_contention_or_tail())

    return [
        Scheme("mnn", lambda m: execute_plan(plan_mnn_serial(soc, m, profiler))),
        Scheme(
            "pipe_it", lambda m: execute_plan(plan_pipe_it(soc, m, profiler))
        ),
        Scheme("band", lambda m: execute_band(soc, m, profiler)),
        Scheme(
            "h2p_no_ct", lambda m: execute_plan(planner_no_ct.plan(m).plan)
        ),
        Scheme("h2p", lambda m: execute_plan(planner.plan(m).plan)),
    ]
