"""SoC specifications: the three evaluation platforms of the paper.

A :class:`SocSpec` bundles the processors of one chip with the shared
memory-subsystem parameters (bus bandwidth, capacity, DVFS frequency
table) and the pairwise contention-coupling matrix motivated in Sec. III.

Processors are ordered by processing power, descending, exactly as the
paper arranges pipeline stages (NPU >> CPU Big >= GPU >> CPU Small).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .processor import (
    ProcessorKind,
    ProcessorSpec,
    make_cpu_big,
    make_cpu_small,
    make_gpu,
    make_npu,
)

#: Pairwise coupling factors for co-execution slowdown.  Entry (a, b) is
#: how strongly traffic from a unit of kind *b* slows a victim of kind *a*.
#: CPU<->GPU interfere strongly on the shared bus; the NPU's dedicated
#: memory path nearly isolates it (Sec. III: 18-21 % CPU-GPU vs 2-5 % for
#: NPU pairs).  CPU_BIG<->CPU_SMALL share the L3/bus but not L2.
DEFAULT_COUPLING: Dict[Tuple[ProcessorKind, ProcessorKind], float] = {
    (ProcessorKind.CPU_BIG, ProcessorKind.GPU): 1.00,
    (ProcessorKind.GPU, ProcessorKind.CPU_BIG): 1.00,
    # Separate CPU clusters share only the DRAM path (distinct L2s), so
    # their mutual coupling is well below the CPU-GPU level.
    (ProcessorKind.CPU_BIG, ProcessorKind.CPU_SMALL): 0.45,
    (ProcessorKind.CPU_SMALL, ProcessorKind.CPU_BIG): 0.45,
    (ProcessorKind.GPU, ProcessorKind.CPU_SMALL): 0.70,
    (ProcessorKind.CPU_SMALL, ProcessorKind.GPU): 0.70,
    (ProcessorKind.CPU_BIG, ProcessorKind.NPU): 0.15,
    (ProcessorKind.NPU, ProcessorKind.CPU_BIG): 0.12,
    (ProcessorKind.GPU, ProcessorKind.NPU): 0.10,
    (ProcessorKind.NPU, ProcessorKind.GPU): 0.10,
    (ProcessorKind.CPU_SMALL, ProcessorKind.NPU): 0.15,
    (ProcessorKind.NPU, ProcessorKind.CPU_SMALL): 0.12,
    (ProcessorKind.CPU_BIG, ProcessorKind.CPU_BIG): 3.50,
    (ProcessorKind.CPU_SMALL, ProcessorKind.CPU_SMALL): 3.50,
    (ProcessorKind.GPU, ProcessorKind.GPU): 3.50,
    (ProcessorKind.NPU, ProcessorKind.NPU): 0.50,
}


@dataclass(frozen=True)
class SocSpec:
    """One system-on-chip: processors plus shared memory subsystem.

    Attributes:
        name: Platform identifier (``"kirin990"``, ...).
        processors: Compute units in descending processing-power order.
        bus_bandwidth_gbps: Total shared-bus bandwidth at max memory
            frequency.
        memory_capacity_bytes: Physical memory available to inference
            (Constraint 6; the paper observes ~2.5 GB free on Kirin 990).
        memory_freq_mhz: DVFS frequency table of the memory controller,
            ascending (used by the Fig. 9 trace model).
        coupling: Pairwise contention coupling; defaults to
            :data:`DEFAULT_COUPLING`.
    """

    name: str
    processors: Tuple[ProcessorSpec, ...]
    bus_bandwidth_gbps: float
    memory_capacity_bytes: float
    memory_freq_mhz: Tuple[int, ...]
    coupling: Dict[Tuple[ProcessorKind, ProcessorKind], float] = field(
        default_factory=lambda: dict(DEFAULT_COUPLING)
    )

    def __post_init__(self) -> None:
        if not self.processors:
            raise ValueError(f"SoC {self.name!r} needs at least one processor")
        names = [p.name for p in self.processors]
        if len(set(names)) != len(names):
            raise ValueError(f"SoC {self.name!r}: duplicate processor names")
        if self.bus_bandwidth_gbps <= 0:
            raise ValueError(f"SoC {self.name!r}: bus bandwidth must be positive")
        if list(self.memory_freq_mhz) != sorted(self.memory_freq_mhz):
            raise ValueError(f"SoC {self.name!r}: freq table must be ascending")

    @property
    def num_processors(self) -> int:
        return len(self.processors)

    def processor(self, name: str) -> ProcessorSpec:
        """Look up a processor by name.

        Raises:
            KeyError: if no processor has that name.
        """
        for proc in self.processors:
            if proc.name == name:
                return proc
        raise KeyError(
            f"SoC {self.name!r} has no processor {name!r}; "
            f"available: {[p.name for p in self.processors]}"
        )

    def processors_of_kind(self, kind: ProcessorKind) -> Tuple[ProcessorSpec, ...]:
        return tuple(p for p in self.processors if p.kind == kind)

    @property
    def has_npu(self) -> bool:
        return any(p.kind == ProcessorKind.NPU for p in self.processors)

    @property
    def cpu_big(self) -> ProcessorSpec:
        return self.processors_of_kind(ProcessorKind.CPU_BIG)[0]

    @property
    def cpu_small(self) -> ProcessorSpec:
        return self.processors_of_kind(ProcessorKind.CPU_SMALL)[0]

    @property
    def gpu(self) -> ProcessorSpec:
        return self.processors_of_kind(ProcessorKind.GPU)[0]

    @property
    def npu(self) -> ProcessorSpec:
        npus = self.processors_of_kind(ProcessorKind.NPU)
        if not npus:
            raise KeyError(f"SoC {self.name!r} has no NPU")
        return npus[0]

    def coupling_factor(self, victim: ProcessorKind, source: ProcessorKind) -> float:
        """Contention coupling from a co-runner on ``source`` onto ``victim``."""
        return self.coupling.get((victim, source), 0.0)


def _ordered(*procs: ProcessorSpec) -> Tuple[ProcessorSpec, ...]:
    """Order processors by a representative conv throughput, descending."""
    from ..models.ir import OpType

    return tuple(
        sorted(procs, key=lambda p: p.effective_gflops(OpType.CONV), reverse=True)
    )


def make_kirin990() -> SocSpec:
    """HiSilicon Kirin 990: 2+2 A76 / 4 A55, Mali-G76 MP16, DaVinci NPU."""
    return SocSpec(
        name="kirin990",
        processors=_ordered(
            make_npu(peak_gflops=1300.0),
            make_cpu_big(peak_gflops=310.0, l2_cache_bytes=1.0e6),
            make_gpu(peak_gflops=620.0),
            make_cpu_small(peak_gflops=52.0),
        ),
        bus_bandwidth_gbps=34.0,
        memory_capacity_bytes=2.5e9,
        memory_freq_mhz=(451, 683, 1014, 1353, 1866),
    )


def make_snapdragon778g() -> SocSpec:
    """Qualcomm Snapdragon 778G: 1+3 A78 / 4 A55, Adreno 642L, no NPU.

    The paper's MNN deployment drives the Kirin NPU through HiAI; on the
    Snapdragon parts no comparable NPU path exists, which is why the
    reported peak speedups (8.8x) appear only on Kirin 990.
    """
    return SocSpec(
        name="snapdragon778g",
        processors=_ordered(
            make_cpu_big(peak_gflops=290.0, l2_cache_bytes=0.5e6),
            make_gpu(peak_gflops=1050.0),
            make_cpu_small(peak_gflops=54.0),
        ),
        bus_bandwidth_gbps=25.6,
        memory_capacity_bytes=2.2e9,
        memory_freq_mhz=(547, 768, 1017, 1555, 2092),
    )


def make_snapdragon870() -> SocSpec:
    """Qualcomm Snapdragon 870: 1+3 A77 / 4 A55, Adreno 650, no NPU."""
    return SocSpec(
        name="snapdragon870",
        processors=_ordered(
            make_cpu_big(peak_gflops=340.0, l2_cache_bytes=0.5e6),
            make_gpu(peak_gflops=1250.0),
            make_cpu_small(peak_gflops=50.0),
        ),
        bus_bandwidth_gbps=34.1,
        memory_capacity_bytes=2.8e9,
        memory_freq_mhz=(681, 1017, 1555, 2092, 2736),
    )


#: Registry of the three evaluation platforms.
SOC_BUILDERS = {
    "kirin990": make_kirin990,
    "snapdragon778g": make_snapdragon778g,
    "snapdragon870": make_snapdragon870,
}

SOC_NAMES: Tuple[str, ...] = tuple(SOC_BUILDERS)


def get_soc(name: str) -> SocSpec:
    """Build an SoC spec by name.

    Raises:
        KeyError: for unknown platform names.
    """
    key = name.lower()
    if key not in SOC_BUILDERS:
        raise KeyError(f"unknown SoC {name!r}; available: {sorted(SOC_BUILDERS)}")
    return SOC_BUILDERS[key]()


def all_socs() -> Tuple[SocSpec, ...]:
    return tuple(get_soc(name) for name in SOC_NAMES)
