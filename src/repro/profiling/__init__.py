"""Solo-execution profiling and co-execution slowdown modelling."""

from .calibration import CalibrationReport, CalibrationTarget, calibrate
from .latency import (
    MAX_AMPLIFICATION,
    copy_latency_ms,
    layer_latency_ms,
    layer_traffic_bytes,
    traffic_amplification,
)
from .pmu import PerfCounters, ground_truth_intensity, measure_counters
from .report import LayerReport, ModelReport, profile_report, render_report
from .profiler import INFEASIBLE, ModelProfile, SocProfiler
from .slowdown import (
    MAX_SLOWDOWN,
    REFERENCE_BANDWIDTH_GBPS,
    SliceWorkload,
    co_execution_ms,
    intra_cluster_slowdown,
    pairwise_slowdown_table,
    slowdown_fraction,
)

__all__ = [
    "CalibrationReport",
    "CalibrationTarget",
    "calibrate",
    "MAX_AMPLIFICATION",
    "copy_latency_ms",
    "layer_latency_ms",
    "layer_traffic_bytes",
    "traffic_amplification",
    "PerfCounters",
    "LayerReport",
    "ModelReport",
    "profile_report",
    "render_report",
    "ground_truth_intensity",
    "measure_counters",
    "INFEASIBLE",
    "ModelProfile",
    "SocProfiler",
    "MAX_SLOWDOWN",
    "REFERENCE_BANDWIDTH_GBPS",
    "SliceWorkload",
    "co_execution_ms",
    "intra_cluster_slowdown",
    "pairwise_slowdown_table",
    "slowdown_fraction",
]
