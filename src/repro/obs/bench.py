"""The unified benchmark harness behind ``hetero2pipe bench``.

One place owns *how this repo measures itself*: the timer utilities the
CI guards share (:func:`time_call_s`, :func:`best_of_s`,
:func:`collect_samples_ms`), the named end-to-end scenarios swept across
the registered SoCs, the stable ``hetero2pipe.bench.v1`` JSON document
(per-scenario p50/min/mean, phase breakdown from
:mod:`repro.obs.prof`, cache-effectiveness counters, an environment
block), and the baseline comparison that turns a committed
``BENCH_planner.json`` into a regression gate with per-row tolerance
bands — the same ratchet UX as ``hetero2pipe lint --baseline``.

Scenarios (see :data:`SCENARIOS`):

* ``cold_plan`` — a five-model plan with every planner cache freshly
  invalidated: the full Algorithm 1-3 pass plus its ~400 objective
  re-simulations.  This is the number the ROADMAP's 10x cold-plan
  speedup item is judged against.
* ``warm_replan`` — the identical mix re-planned on warm caches (the
  plan-cache fingerprint hit path PR 3 built).
* ``streaming_window`` — a windowed :class:`StreamingPlanner` pass over
  a 10-request arrival schedule on a warmed planner: the windowing and
  dispatch machinery itself.
* ``drift_replan`` — a streamed run under an injected +30% GPU slowdown
  with accuracy tracking on: detector updates, cache invalidation and
  the replan trigger (planner construction is per-round *setup*, not
  timed).
* ``executor_sim`` — one event-driven execution of a planned pipeline:
  the simulation substrate every objective probe pays for.

Gating rule: a scenario regresses when its current ``min_ms`` exceeds
``baseline_min_ms * (1 + tolerance_frac) + abs_slack_ms``.  The bands
are deliberately wide (defaults below): this gate exists to catch
algorithmic regressions — an accidentally quadratic loop, a cache that
stopped hitting — across heterogeneous CI machines, not 20% timer
noise; the overhead/cache guards enforce the tight same-machine ratios.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from . import prof
from .recorder import InMemoryRecorder, use_recorder
from ..core.online import StreamingPlanner
from ..core.planner import Hetero2PipePlanner
from ..hardware.soc import SOC_NAMES, get_soc
from ..models.zoo import get_model
from ..runtime.executor import execute_plan, execute_plan_perturbed
from ..util import percentile
from ..workloads.generator import arrival_times_ms

#: Stable schema marker of every bench document this repo emits.
BENCH_SCHEMA = "hetero2pipe.bench.v1"

#: The committed baseline the CI bench job gates against.
DEFAULT_BASELINE_PATH = "BENCH_planner.json"

#: Default tolerance band: fail only beyond 2.5x the baseline + slack.
DEFAULT_TOLERANCE_FRAC = 1.5
DEFAULT_ABS_SLACK_MS = 250.0

#: The Fig. 7-style mix every scenario plans.
MODEL_MIX = ("yolov4", "bert", "squeezenet", "resnet50", "vit")

#: Cache-effectiveness counters copied into bench rows when present.
COUNTER_NAMES = (
    "objective_cache_hits",
    "objective_cache_misses",
    "objective_evaluations",
    "plan_cache_hits",
    "plan_cache_misses",
    "partition_cache_hits",
    "partition_cache_misses",
    "profile_cache_hits",
    "profile_cache_misses",
)


# ------------------------------------------------------- timer utilities


def time_call_s(fn: Callable[[], object]) -> float:
    """Wall time of one call, in seconds (the guards' shared timer)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def best_of_s(rounds: int, fn: Callable[[], object]) -> float:
    """Best-of-N wall time of ``fn`` in seconds (N >= 1)."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    return min(time_call_s(fn) for _ in range(rounds))


def collect_samples_ms(
    fn: Callable[[], object],
    rounds: int,
    warmup: int = 0,
    setup: Optional[Callable[[], object]] = None,
) -> List[float]:
    """Per-round wall times (ms) with optional warmup and untimed setup."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    for _ in range(warmup):
        if setup is not None:
            setup()
        fn()
    samples: List[float] = []
    for _ in range(rounds):
        if setup is not None:
            setup()
        samples.append(time_call_s(fn) * 1e3)
    return samples


def percentile_ms(samples_ms: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a sample list (q in [0, 100]).

    Delegates to the shared :func:`repro.util.percentile` under the
    ``nearest_rank`` method: the result is always an observed sample
    (no interpolation), which is the definition the published
    ``hetero2pipe.bench.v1`` ``p50_ms`` column has always used.  The
    simulation-latency blocks (``stats``/``accuracy``) use the same
    shared function with the ``linear`` method instead — the two
    definitions intentionally differ and are pinned by tests.
    """
    if not samples_ms:
        raise ValueError("need at least one sample")
    return percentile(samples_ms, q, method="nearest_rank")


# ----------------------------------------------------------- bench rows


def environment_block() -> Dict[str, object]:
    """Host facts a reader needs to judge absolute numbers."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def bench_row(
    scenario: str,
    soc: str,
    samples_ms: Sequence[float],
    phases: Optional[Dict[str, float]] = None,
    counters: Optional[Dict[str, float]] = None,
    attributed_frac: Optional[float] = None,
    tolerance_frac: float = DEFAULT_TOLERANCE_FRAC,
    abs_slack_ms: float = DEFAULT_ABS_SLACK_MS,
) -> Dict[str, object]:
    """One ``hetero2pipe.bench.v1`` result row."""
    if not samples_ms:
        raise ValueError(f"scenario {scenario!r}: need at least one sample")
    row: Dict[str, object] = {
        "scenario": scenario,
        "soc": soc,
        "rounds": len(samples_ms),
        "min_ms": min(samples_ms),
        "mean_ms": sum(samples_ms) / len(samples_ms),
        "p50_ms": percentile_ms(samples_ms, 50.0),
        "max_ms": max(samples_ms),
        "tolerance_frac": tolerance_frac,
        "abs_slack_ms": abs_slack_ms,
    }
    if phases is not None:
        row["phases_exclusive_ms"] = {
            k: round(v, 4) for k, v in sorted(phases.items())
        }
    if attributed_frac is not None:
        row["attributed_frac"] = round(attributed_frac, 4)
    if counters is not None:
        row["counters"] = {k: counters[k] for k in sorted(counters)}
    return row


def bench_doc(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Wrap result rows in the versioned bench document."""
    return {
        "schema": BENCH_SCHEMA,
        "environment": environment_block(),
        "results": sorted(
            rows, key=lambda r: (str(r["scenario"]), str(r["soc"]))
        ),
    }


def render_bench_json(doc: Dict[str, object]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_bench_json(path: str, doc: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_bench_json(doc))


def read_bench_json(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, got {schema!r}"
        )
    return doc


# ------------------------------------------------------------- scenarios


@dataclass
class ScenarioResult:
    """One scenario's measurements on one SoC."""

    scenario: str
    soc: str
    samples_ms: List[float]
    phases_exclusive_ms: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    attributed_frac: Optional[float] = None
    simulation: Optional[Dict[str, object]] = None

    def to_row(self) -> Dict[str, object]:
        row = bench_row(
            self.scenario,
            self.soc,
            self.samples_ms,
            phases=self.phases_exclusive_ms or None,
            counters=self.counters or None,
            attributed_frac=self.attributed_frac,
        )
        if self.simulation is not None:
            row["simulation"] = self.simulation
        return row


def simulation_latency_block(result: object) -> Dict[str, object]:
    """Simulated-latency summary of an execution, all-dropped-safe.

    ``ExecutionResult.latency_percentile_ms`` raises on a run with no
    completed requests (the percentile is undefined); every bench/guard
    consumer goes through this helper instead, which emits ``None``
    latency fields for such runs — the JSON-facing tri-state the
    ``stats`` CLI already uses.
    """
    completed = result.num_completed  # type: ignore[attr-defined]
    block: Dict[str, object] = {
        "completed_requests": completed,
        "deadline_drops": len(
            getattr(result, "dropped_requests", ()) or ()
        ),
        "makespan_ms": result.makespan_ms,  # type: ignore[attr-defined]
    }
    if completed > 0:
        block["mean_latency_ms"] = result.mean_latency_ms()  # type: ignore[attr-defined]
        block["p50_latency_ms"] = result.p50_latency_ms  # type: ignore[attr-defined]
        block["p95_latency_ms"] = result.p95_latency_ms  # type: ignore[attr-defined]
    else:  # no completion latency exists; emit the tri-state nulls
        block["mean_latency_ms"] = None
        block["p50_latency_ms"] = None
        block["p95_latency_ms"] = None
    return block


def _models() -> List[object]:
    return [get_model(name) for name in MODEL_MIX]


def _phase_snapshot(
    rec: InMemoryRecorder,
) -> tuple[Dict[str, float], Optional[float]]:
    profile = prof.profile_spans(rec.spans)
    phases = {
        name: stat.exclusive_ms for name, stat in profile.phases.items()
    }
    return phases, profile.attributed_frac


def _counter_snapshot(rec: InMemoryRecorder) -> Dict[str, float]:
    snap = rec.metrics.snapshot()["counters"]
    assert isinstance(snap, dict)
    return {k: v for k, v in snap.items() if k in COUNTER_NAMES}


def _run_cold_plan(soc_name: str, rounds: int) -> ScenarioResult:
    soc = get_soc(soc_name)
    models = _models()
    planner = Hetero2PipePlanner(soc)
    samples = collect_samples_ms(
        lambda: planner.plan(models),
        rounds,
        setup=planner.invalidate_caches,
    )
    planner.invalidate_caches()
    with use_recorder(InMemoryRecorder()) as rec:
        planner.plan(models)
    phases, frac = _phase_snapshot(rec)
    return ScenarioResult(
        "cold_plan", soc_name, samples, phases, _counter_snapshot(rec), frac
    )


def _run_warm_replan(soc_name: str, rounds: int) -> ScenarioResult:
    soc = get_soc(soc_name)
    models = _models()
    planner = Hetero2PipePlanner(soc)
    planner.plan(models)  # warm every cache
    samples = collect_samples_ms(lambda: planner.plan(models), rounds)
    with use_recorder(InMemoryRecorder()) as rec:
        planner.plan(models)
    phases, frac = _phase_snapshot(rec)
    return ScenarioResult(
        "warm_replan", soc_name, samples, phases, _counter_snapshot(rec), frac
    )


def _run_streaming_window(soc_name: str, rounds: int) -> ScenarioResult:
    soc = get_soc(soc_name)
    stream = _models() * 2
    arrivals = arrival_times_ms(len(stream), 30.0)
    planner = StreamingPlanner(soc, window_size=4)
    planner.run(stream, arrivals)  # warm the shared plan caches
    samples = collect_samples_ms(
        lambda: planner.run(stream, arrivals), rounds
    )
    with use_recorder(InMemoryRecorder()) as rec:
        planner.run(stream, arrivals)
    phases, frac = _phase_snapshot(rec)
    return ScenarioResult(
        "streaming_window",
        soc_name,
        samples,
        phases,
        _counter_snapshot(rec),
        frac,
    )


def _run_drift_replan(soc_name: str, rounds: int) -> ScenarioResult:
    soc = get_soc(soc_name)
    stream = _models() * 3

    def perturbed(plan: object) -> object:
        return execute_plan_perturbed(plan, factors={"gpu": 1.3})

    holder: Dict[str, StreamingPlanner] = {}

    def setup() -> None:
        holder["planner"] = StreamingPlanner(
            soc, window_size=4, track_accuracy=True, execute=perturbed
        )

    samples = collect_samples_ms(
        lambda: holder["planner"].run(stream), rounds, setup=setup
    )
    setup()
    with use_recorder(InMemoryRecorder()) as rec:
        holder["planner"].run(stream)
    phases, frac = _phase_snapshot(rec)
    return ScenarioResult(
        "drift_replan", soc_name, samples, phases, _counter_snapshot(rec), frac
    )


def _run_executor_sim(soc_name: str, rounds: int) -> ScenarioResult:
    soc = get_soc(soc_name)
    planner = Hetero2PipePlanner(soc)
    report = planner.plan(_models())
    samples = collect_samples_ms(
        lambda: execute_plan(report.plan), rounds
    )
    with use_recorder(InMemoryRecorder()) as rec:
        result = execute_plan(report.plan)
    phases, frac = _phase_snapshot(rec)
    return ScenarioResult(
        "executor_sim",
        soc_name,
        samples,
        phases,
        _counter_snapshot(rec),
        frac,
        simulation=simulation_latency_block(result),
    )


#: Scenario name -> runner(soc_name, rounds).
SCENARIOS: Dict[str, Callable[[str, int], ScenarioResult]] = {
    "cold_plan": _run_cold_plan,
    "warm_replan": _run_warm_replan,
    "streaming_window": _run_streaming_window,
    "drift_replan": _run_drift_replan,
    "executor_sim": _run_executor_sim,
}

SCENARIO_NAMES = tuple(SCENARIOS)


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    socs: Optional[Sequence[str]] = None,
    rounds: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the selected scenarios across the selected SoCs.

    Args:
        scenarios: Scenario names (default: all of :data:`SCENARIO_NAMES`).
        socs: SoC names (default: every registered SoC).
        rounds: Timed rounds per (scenario, soc) cell.
        progress: Optional per-cell callback (the CLI's status line).

    Returns:
        A ``hetero2pipe.bench.v1`` document.

    Raises:
        KeyError: on an unknown scenario or SoC name.
    """
    chosen = list(scenarios) if scenarios else list(SCENARIO_NAMES)
    for name in chosen:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; options: {sorted(SCENARIOS)}"
            )
    targets = list(socs) if socs else list(SOC_NAMES)
    rows: List[Dict[str, object]] = []
    for scenario in chosen:
        for soc_name in targets:
            if progress is not None:
                progress(f"{scenario} on {soc_name}")
            rows.append(SCENARIOS[scenario](soc_name, rounds).to_row())
    return bench_doc(rows)


# ------------------------------------------------------ baseline gating


@dataclass(frozen=True)
class Comparison:
    """One (scenario, soc) cell compared against the baseline."""

    scenario: str
    soc: str
    current_min_ms: float
    baseline_min_ms: Optional[float]
    limit_ms: Optional[float]
    regressed: bool

    @property
    def ratio_x(self) -> float:
        if not self.baseline_min_ms:
            return 1.0
        return self.current_min_ms / self.baseline_min_ms


def compare_to_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance_frac: Optional[float] = None,
) -> List[Comparison]:
    """Gate current results against a baseline document.

    Each current row is matched to the baseline row with the same
    ``(scenario, soc)`` key; the tolerance band comes from the baseline
    row (``tolerance_frac`` / ``abs_slack_ms``) unless overridden.
    Rows with no baseline counterpart are reported un-gated (they are
    *new* — commit them with ``--update-baseline``); baseline rows not
    re-run are ignored, so ``--scenarios`` subsets stay usable.
    """
    by_key: Dict[tuple, Dict[str, object]] = {}
    for row in baseline.get("results", []):  # type: ignore[union-attr]
        by_key[(row["scenario"], row["soc"])] = row
    comparisons: List[Comparison] = []
    for row in current.get("results", []):  # type: ignore[union-attr]
        key = (row["scenario"], row["soc"])
        current_min = float(row["min_ms"])  # type: ignore[arg-type]
        base = by_key.get(key)
        if base is None:
            comparisons.append(
                Comparison(
                    scenario=str(row["scenario"]),
                    soc=str(row["soc"]),
                    current_min_ms=current_min,
                    baseline_min_ms=None,
                    limit_ms=None,
                    regressed=False,
                )
            )
            continue
        base_min = float(base["min_ms"])  # type: ignore[arg-type]
        tol = (
            tolerance_frac
            if tolerance_frac is not None
            else float(base.get("tolerance_frac", DEFAULT_TOLERANCE_FRAC))  # type: ignore[arg-type]
        )
        slack = float(base.get("abs_slack_ms", DEFAULT_ABS_SLACK_MS))  # type: ignore[arg-type]
        limit = base_min * (1.0 + tol) + slack
        comparisons.append(
            Comparison(
                scenario=str(row["scenario"]),
                soc=str(row["soc"]),
                current_min_ms=current_min,
                baseline_min_ms=base_min,
                limit_ms=limit,
                regressed=current_min > limit,
            )
        )
    return comparisons


def regressions(comparisons: Sequence[Comparison]) -> List[Comparison]:
    return [c for c in comparisons if c.regressed]


def render_comparison(comparisons: Sequence[Comparison]) -> str:
    """Terminal table of the baseline gate, worst offenders flagged."""
    lines = [
        f"{'scenario':<18s} {'soc':<15s} {'current':>10s} {'baseline':>10s} "
        f"{'limit':>10s}  verdict"
    ]
    for c in comparisons:
        if c.baseline_min_ms is None:
            verdict = "new (no baseline)"
            base = limit = "-"
        else:
            verdict = (
                f"REGRESSED ({c.ratio_x:.2f}x)" if c.regressed
                else f"ok ({c.ratio_x:.2f}x)"
            )
            base = f"{c.baseline_min_ms:.2f}"
            limit = f"{c.limit_ms:.2f}" if c.limit_ms is not None else "-"
        lines.append(
            f"{c.scenario:<18s} {c.soc:<15s} {c.current_min_ms:>10.2f} "
            f"{base:>10s} {limit:>10s}  {verdict}"
        )
    return "\n".join(lines)


def render_bench_table(doc: Dict[str, object]) -> str:
    """Terminal table of one bench document."""
    lines = [
        f"{'scenario':<18s} {'soc':<15s} {'rounds':>6s} {'min ms':>10s} "
        f"{'p50 ms':>10s} {'mean ms':>10s}"
    ]
    for row in doc.get("results", []):  # type: ignore[union-attr]
        lines.append(
            f"{row['scenario']:<18s} {row['soc']:<15s} "
            f"{row['rounds']:>6d} {row['min_ms']:>10.2f} "
            f"{row['p50_ms']:>10.2f} {row['mean_ms']:>10.2f}"
        )
    env = doc.get("environment", {})
    if isinstance(env, dict) and env:
        lines.append(
            f"environment: python {env.get('python')} on "
            f"{env.get('platform')} ({env.get('cpu_count')} cpus)"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.bench`` — thin wrapper over the CLI verb."""
    from ..cli import main as cli_main

    return cli_main(["bench", *(argv if argv is not None else sys.argv[1:])])
