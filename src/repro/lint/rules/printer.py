"""H2P107 — no ``print()`` in library code.

With the observability subsystem (``repro.obs``) in place, library code
has structured channels for everything it might want to say: counters
and gauges for quantities, spans for timing, provenance events for
decisions.  A stray ``print()`` inside the planner or runtime bypasses
all of them — it cannot be redirected, filtered, or exported, and it
corrupts machine-read output (the JSON modes of the CLI and the lint
reporters write to stdout).

Presentation layers are exempt: modules whose last component is ``cli``
(the user-facing commands), ``*.reporters`` modules (their whole job is
rendering to a stream), and calls under an ``if __name__ == "__main__":``
guard (the experiments' ``print(main())`` entry points).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import Finding, LintContext, LintRule, register_rule


def _exempt_module(ctx: LintContext) -> bool:
    parts = ctx.package_parts
    if not parts or parts[0] != "repro":
        return True  # only repro library code is in scope
    if parts[-1] == "cli":
        return True
    if parts[-1] == "reporters":
        return True
    return False


def _is_main_guard(node: ast.If) -> bool:
    """Match ``if __name__ == "__main__":`` (either comparison order)."""
    test = node.test
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left, *test.comparators]
    names = {o.id for o in operands if isinstance(o, ast.Name)}
    consts = {o.value for o in operands if isinstance(o, ast.Constant)}
    return "__name__" in names and "__main__" in consts


def _guarded_lines(tree: ast.Module) -> Set[int]:
    """Line numbers inside any ``if __name__ == "__main__"`` block."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_main_guard(node):
            for child in ast.walk(node):
                lineno = getattr(child, "lineno", None)
                if lineno is not None:
                    lines.add(lineno)
    return lines


@register_rule
class PrintInLibraryRule(LintRule):
    code = "H2P107"
    name = "no-print-in-library"
    rationale = (
        "library code reports through the obs recorder (metrics, spans, "
        "events); print() bypasses it and corrupts machine-read stdout"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        if _exempt_module(ctx):
            return
        guarded = _guarded_lines(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if not (isinstance(fn, ast.Name) and fn.id == "print"):
                continue
            if getattr(node, "lineno", 0) in guarded:
                continue
            yield self.finding(
                ctx,
                node,
                "print() in library code; use the obs recorder (metrics/"
                "spans/events) or return the text to a presentation layer",
            )
