"""Hetero2Pipe core: the paper's pipeline-planning contribution."""

from .assignment import InfeasibleAssignmentError, kuhn_munkres
from .bounds import MakespanBounds, makespan_lower_bounds, optimality_report
from .validate import Violation, is_valid, validate_plan
from .contention import ContentionEstimator, ContentionScore
from .mitigation import MitigationResult, Move, mitigate_sequence
from .online import StreamingPlanner, StreamingResult, WindowOutcome
from .thermal_feedback import (
    ThermalFeedbackResult,
    ThermalIteration,
    plan_with_thermal_feedback,
)
from .partition import (
    PartitionResult,
    make_slice_cost,
    min_makespan_partition,
    min_makespan_partition_fast,
    partition_model,
)
from .plan import PipelinePlan, StageAssignment
from .planner import Hetero2PipePlanner, PlannerConfig, PlanReport
from .stealing import (
    align_to_targets,
    move_boundary_layer,
    optimize_tail,
    refine_globally,
    single_processor_assignment,
    vertical_alignment,
    work_steal,
)
from .window import (
    conflicting_high_pairs,
    deficit,
    is_mitigated,
    iter_windows,
    violating_windows,
    window_bounds,
    window_high_count,
)

__all__ = [
    "InfeasibleAssignmentError",
    "kuhn_munkres",
    "MakespanBounds",
    "makespan_lower_bounds",
    "optimality_report",
    "Violation",
    "is_valid",
    "validate_plan",
    "ContentionEstimator",
    "ContentionScore",
    "StreamingPlanner",
    "ThermalFeedbackResult",
    "ThermalIteration",
    "plan_with_thermal_feedback",
    "StreamingResult",
    "WindowOutcome",
    "MitigationResult",
    "Move",
    "mitigate_sequence",
    "PartitionResult",
    "make_slice_cost",
    "min_makespan_partition",
    "min_makespan_partition_fast",
    "partition_model",
    "PipelinePlan",
    "StageAssignment",
    "Hetero2PipePlanner",
    "PlannerConfig",
    "PlanReport",
    "align_to_targets",
    "move_boundary_layer",
    "optimize_tail",
    "refine_globally",
    "single_processor_assignment",
    "vertical_alignment",
    "work_steal",
    "conflicting_high_pairs",
    "deficit",
    "is_mitigated",
    "iter_windows",
    "violating_windows",
    "window_bounds",
    "window_high_count",
]
