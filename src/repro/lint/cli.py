"""Lint driver shared by ``hetero2pipe lint`` and ``python -m repro.lint``.

Exit codes: 0 clean (or every finding baselined), 1 findings (new
findings under a baseline, or a stale baseline needing regeneration),
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import Finding, all_rules, get_rule, lint_paths
from .reporters import exit_code, render_json, render_sarif, render_text


def default_src_root() -> Path:
    """The ``src/`` directory this installation was imported from."""
    # .../src/repro/lint/cli.py -> .../src
    return Path(__file__).resolve().parents[2]


def normalize_finding_paths(
    findings: Sequence[Finding], base: Optional[Path] = None
) -> List[Finding]:
    """Relativize absolute finding paths against ``base`` (default cwd).

    Keeps reports, baselines and SARIF artifacts portable between
    machines: the default lint paths are absolute (they come from the
    installed package location), but CI and baseline diffs need
    ``src/repro/...``. Paths outside ``base`` and virtual paths
    (``plan://...``) pass through untouched.
    """
    root = (base or Path.cwd()).resolve()
    normalized: List[Finding] = []
    for finding in findings:
        path = Path(finding.path)
        if path.is_absolute():
            try:
                rel = path.resolve().relative_to(root)
            except ValueError:
                normalized.append(finding)
                continue
            normalized.append(
                Finding(
                    code=finding.code,
                    message=finding.message,
                    path=rel.as_posix(),
                    line=finding.line,
                    col=finding.col,
                    end_line=finding.end_line,
                )
            )
        else:
            normalized.append(finding)
    return normalized


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags (shared with the hetero2pipe subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default=None,
        help="output format (default: text; json is the stable "
        "hetero2pipe.lint.v1 schema, sarif is SARIF 2.1.0 for GitHub "
        "code scanning)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--plans",
        action="store_true",
        help="also sweep plan invariants over zoo x SoC x config "
        "(slower; runs the planner)",
    )
    parser.add_argument(
        "--src-root",
        metavar="DIR",
        help="source root for module-name resolution (default: the "
        "installed src/ directory)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="ratchet mode: tolerate findings recorded in FILE, fail on "
        "new ones and on stale entries (see docs/STATIC_ANALYSIS.md)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate --baseline FILE from the current findings and "
        "exit 0",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"        {rule.rationale}")
        return 0

    output_format = args.format or ("json" if args.json else "text")
    if args.format and args.json and args.format != "json":
        print("--json conflicts with --format " + args.format, file=sys.stderr)
        return 2
    if args.update_baseline and not args.baseline:
        print("--update-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    rules = None
    if args.rules:
        try:
            rules = [get_rule(c.strip()) for c in args.rules.split(",") if c.strip()]
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2

    src_root = Path(args.src_root) if args.src_root else default_src_root()
    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"no such path(s): {missing}", file=sys.stderr)
            return 2
    else:
        paths = [src_root / "repro"]

    findings = lint_paths(paths, src_root=src_root, rules=rules)

    checked = 0
    if args.plans:
        from .plan_invariants import sweep_plan_invariants

        plan_findings, checked = sweep_plan_invariants()
        findings = findings + plan_findings

    findings = normalize_finding_paths(findings)
    findings.sort(key=Finding.sort_key)

    if args.update_baseline:
        entries = write_baseline(Path(args.baseline), findings)
        print(
            f"baseline: wrote {entries} entrie(s) covering "
            f"{len(findings)} finding(s) to {args.baseline}"
        )
        return 0

    baseline_summary = None
    status: Optional[int] = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"no such baseline file: {args.baseline}", file=sys.stderr)
            return 2
        try:
            tolerated = load_baseline(baseline_path)
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        result = apply_baseline(findings, tolerated)
        baseline_summary = result.summary()
        findings = result.new
        status = 0 if result.ok else 1

    if output_format == "json":
        print(render_json(findings, baseline=baseline_summary))
    elif output_format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings))
        if args.plans:
            print(f"plan invariants: {checked} plan(s) validated")
        if baseline_summary is not None:
            print(
                f"baseline: {baseline_summary['matched']} tolerated, "
                f"{baseline_summary['new']} new, "
                f"{len(baseline_summary['stale'])} stale"  # type: ignore[arg-type]
            )
            for entry in baseline_summary["stale"]:  # type: ignore[union-attr]
                print(
                    f"  stale: {entry['path']}: {entry['code']} "
                    f"{entry['message']} (x{entry['count']})"
                )
            if baseline_summary["stale"]:
                print(
                    "  the baseline shrank without being regenerated; "
                    "run with --update-baseline to re-record it"
                )
    if status is not None:
        return status
    return exit_code(findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Hetero2Pipe static analysis: AST rules, dataflow "
        "unit/concurrency rules, import layering, plan invariants.",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


__all__: List[str] = [
    "add_lint_arguments",
    "normalize_finding_paths",
    "run_lint_command",
    "default_src_root",
    "main",
]
