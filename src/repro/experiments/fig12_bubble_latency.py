"""Fig. 12: empirical linearity between bubble size and overall latency.

The paper enumerates candidate pipeline plans for two fixed workloads —
(a) a five-network pipeline on three processors (ViT, AlexNet, YOLOv4,
BERT, MobileNetV2 on CPU Big / GPU / CPU Small) and (b) a three-network
pipeline (InceptionV4, ResNet50, SqueezeNet on NPU / CPU Big / GPU) —
and plots each plan's total bubble size against its overall latency.
The relation is close to linear (Property 1), which is what licenses
minimizing bubbles as a proxy for minimizing latency.

We regenerate the scatter by sampling plans that do the *same work*
with different stage alignment (boundary-cut perturbations of the DP
partitions), measuring each plan's Eq. 3 bubble total and its
synchronized pipeline makespan — the execution model Definition 3 is
stated in — and fitting a straight line.  The asynchronous executor's
makespan is also recorded per point: relaxing stage lockstep (our
simulator's behaviour, unlike the paper's stage-synchronous MNN
runtime) lets later requests overtake bubbles, which weakens the raw
async relation; the synchronous one reproduces Property 1's linearity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import LinearFit, linear_fit
from ..core.partition import partition_model
from ..core.plan import PipelinePlan, StageAssignment
from ..core.stealing import move_boundary_layer, single_processor_assignment
from ..hardware.soc import SocSpec, get_soc
from ..models.zoo import get_model
from ..profiling.profiler import SocProfiler
from ..runtime.executor import execute_plan
from ..runtime.schedule import plan_bubbles_ms, plan_makespan_ms
from .common import format_table

#: Fig. 12(a): five networks on CPU Big / GPU / CPU Small.
CONFIG_A = ("vit", "alexnet", "yolov4", "bert", "mobilenetv2")
CONFIG_A_PROCS = ("cpu_big", "gpu", "cpu_small")
#: Fig. 12(b): three networks on NPU / CPU Big / GPU.
CONFIG_B = ("inceptionv4", "resnet50", "squeezenet")
CONFIG_B_PROCS = ("npu", "cpu_big", "gpu")


@dataclass(frozen=True)
class BubblePoint:
    """One sampled plan."""

    bubble_ms: float
    latency_ms: float
    async_latency_ms: float = 0.0


@dataclass(frozen=True)
class BubbleLatencyResult:
    """Scatter plus linear fit for one configuration."""

    label: str
    points: Tuple[BubblePoint, ...]
    fit: LinearFit


def _sample_plans(
    soc: SocSpec,
    model_names: Sequence[str],
    proc_names: Sequence[str],
    num_plans: int,
    seed: int,
) -> List[PipelinePlan]:
    """Deterministically sample distinct feasible plans."""
    profiler = SocProfiler(soc)
    processors = tuple(soc.processor(n) for n in proc_names)
    rng = np.random.default_rng(seed)
    base = [
        StageAssignment(
            profile=profiler.profile(get_model(n)),
            slices=list(
                partition_model(profiler.profile(get_model(n)), processors).slices
            ),
        )
        for n in model_names
    ]
    plans: List[PipelinePlan] = []
    for _ in range(num_plans):
        plan = PipelinePlan(
            soc=soc,
            processors=processors,
            assignments=[a.copy() for a in base],
        )
        # Perturb with boundary shifts only.  Property 1 relates bubbles
        # to latency across plans doing the *same work* with different
        # stage alignment; whole-request re-placements change the total
        # effective work (fast vs slow silicon) and sit outside the
        # relation — as do the degenerate everything-on-the-slowest-core
        # plans they produce (near-zero overlap, giant latency).
        for i in range(plan.num_requests):
            for _ in range(int(rng.integers(0, 9))):
                s = int(rng.integers(0, plan.depth - 1))
                frm, to = (s, s + 1) if rng.random() < 0.5 else (s + 1, s)
                move_boundary_layer(plan.assignments[i], frm, to, processors)
        plans.append(plan)
    return plans


def run(
    soc: Optional[SocSpec] = None,
    num_plans: int = 60,
    seed: int = 11,
) -> List[BubbleLatencyResult]:
    """Regenerate both Fig. 12 scatters."""
    soc = soc or get_soc("kirin990")
    results: List[BubbleLatencyResult] = []
    for label, names, procs in (
        ("five_network", CONFIG_A, CONFIG_A_PROCS),
        ("three_network", CONFIG_B, CONFIG_B_PROCS),
    ):
        points: List[BubblePoint] = []
        for plan in _sample_plans(soc, names, procs, num_plans, seed):
            result = execute_plan(plan, enforce_memory=False)
            points.append(
                BubblePoint(
                    bubble_ms=plan_bubbles_ms(plan),
                    latency_ms=plan_makespan_ms(plan),
                    async_latency_ms=result.makespan_ms,
                )
            )
        fit = linear_fit(
            [p.bubble_ms for p in points], [p.latency_ms for p in points]
        )
        results.append(
            BubbleLatencyResult(label=label, points=tuple(points), fit=fit)
        )
    return results


def render(results: Sequence[BubbleLatencyResult]) -> str:
    headers = ["configuration", "points", "slope", "intercept_ms", "r_squared"]
    body = [
        [
            r.label,
            len(r.points),
            round(r.fit.slope, 3),
            r.fit.intercept,
            round(r.fit.r_squared, 3),
        ]
        for r in results
    ]
    return format_table(headers, body)


def render_scatter(results: Sequence[BubbleLatencyResult]) -> str:
    """The Fig. 12 scatter panels in terminal form."""
    from ..analysis.charts import scatter_plot

    panels = []
    for result in results:
        panels.append(
            f"[{result.label}] latency vs bubble "
            f"(slope {result.fit.slope:.2f}, R^2 {result.fit.r_squared:.2f})\n"
            + scatter_plot(
                [(p.bubble_ms, p.latency_ms) for p in result.points],
                width=50,
                height=12,
                x_label="bubble ms",
                y_label="latency ms",
            )
        )
    return "\n\n".join(panels)


def main() -> str:
    results = run()
    return render(results) + "\n\n" + render_scatter(results)


if __name__ == "__main__":
    print(main())
