"""Workload generation: random combinations, arrivals, batching."""

from .batching import (
    BatchLatency,
    batched_model,
    coalesce_stream,
    batch_latency_model,
    batch_size_to_match,
    latency_growth_rates,
)
from .generator import WorkloadSpec, arrival_times_ms, sample_combinations
from .scenarios import SCENARIOS, Scenario, all_scenarios, get_scenario

__all__ = [
    "BatchLatency",
    "batched_model",
    "coalesce_stream",
    "batch_latency_model",
    "batch_size_to_match",
    "latency_growth_rates",
    "WorkloadSpec",
    "SCENARIOS",
    "Scenario",
    "all_scenarios",
    "get_scenario",
    "arrival_times_ms",
    "sample_combinations",
]
