"""Property and acceptance tests for the mergeable quantile sketch.

The sketch's contract has three legs, each pinned here:

* **Accuracy** — every quantile estimate is within ``relative_accuracy``
  of the exact nearest-rank sample quantile
  (``repro.util.percentile(..., method="nearest_rank")``), on random
  streams (hypothesis) and on a >= 10k-sample acceptance stream.
* **Mergeability** — merging adds bucket counts, so it is associative,
  commutative, and per-shard sketches merged in any order equal the
  single-stream sketch.  Bucket/count state is integer-exact; only the
  float ``sum`` may drift by reassociation, so it is compared with
  ``approx_eq`` while quantiles are compared with ``==``.
* **Transport** — ``to_dict`` output survives a JSON round-trip and
  ``from_dict`` rebuilds an equivalent sketch.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import (
    DEFAULT_RELATIVE_ACCURACY,
    MIN_TRACKABLE_VALUE,
    QuantileSketch,
    merge_all,
)
from repro.util import approx_eq, percentile

samples = st.lists(
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)
maybe_empty_samples = st.lists(
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    max_size=100,
)


def sketch_of(values, alpha=DEFAULT_RELATIVE_ACCURACY):
    sketch = QuantileSketch(alpha)
    sketch.extend(values)
    return sketch


def assert_same_distribution(a, b):
    """Equality modulo float-sum reassociation (see module docstring)."""
    da, db = a.to_dict(), b.to_dict()
    sum_a, sum_b = da.pop("sum"), db.pop("sum")
    assert da == db
    assert approx_eq(sum_a, sum_b)
    for q in (0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0):
        assert a.percentile(q) == b.percentile(q)


class TestAccuracy:
    @given(samples, st.floats(0.0, 100.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_quantile_within_relative_error_of_exact(self, values, q):
        sketch = sketch_of(values)
        exact = percentile(values, q, method="nearest_rank")
        est = sketch.percentile(q)
        # Sub-threshold samples collapse into the zero bucket, hence
        # the tiny absolute slack on top of the relative bound.
        assert abs(est - exact) <= (
            sketch.relative_accuracy * exact + MIN_TRACKABLE_VALUE
        )

    @given(samples)
    @settings(max_examples=100, deadline=None)
    def test_extremes_and_exact_side_stats(self, values):
        sketch = sketch_of(values)
        assert sketch.percentile(0.0) == min(values)
        assert sketch.percentile(100.0) == max(values)
        assert sketch.count == len(values) == len(sketch)
        assert sketch.low == min(values)
        assert sketch.high == max(values)
        assert approx_eq(sketch.total, sum(values))
        assert approx_eq(sketch.mean, sum(values) / len(values))

    def test_acceptance_10k_stream_p50_p95_p99(self):
        # ISSUE acceptance: >= 10k samples, three latency scales mixed
        # (a bimodal fast/slow path plus a heavy exponential tail).
        rng = random.Random(42)
        values = (
            [rng.uniform(0.5, 3.0) for _ in range(6000)]
            + [rng.uniform(20.0, 60.0) for _ in range(4000)]
            + [rng.expovariate(1 / 200.0) for _ in range(2000)]
        )
        sketch = sketch_of(values)
        assert sketch.count == 12000
        for q in (50.0, 95.0, 99.0):
            exact = percentile(values, q, method="nearest_rank")
            est = sketch.percentile(q)
            assert abs(est - exact) <= sketch.relative_accuracy * exact

    def test_tighter_accuracy_narrows_the_bound(self):
        rng = random.Random(7)
        values = [rng.expovariate(1 / 30.0) + 0.1 for _ in range(5000)]
        fine = sketch_of(values, alpha=0.001)
        exact = percentile(values, 99.0, method="nearest_rank")
        assert abs(fine.percentile(99.0) - exact) <= 0.001 * exact


class TestValidation:
    def test_rejects_bad_accuracy(self):
        for alpha in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                QuantileSketch(alpha)

    def test_rejects_bad_values(self):
        sketch = QuantileSketch()
        for value in (-1.0, math.nan, math.inf):
            with pytest.raises(ValueError):
                sketch.insert(value)

    def test_empty_sketch_percentile_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch().percentile(50.0)

    def test_out_of_range_q_raises(self):
        sketch = sketch_of([1.0])
        with pytest.raises(ValueError):
            sketch.percentile(101.0)
        with pytest.raises(ValueError):
            sketch.percentile(-1.0)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.05))

    def test_merge_all_of_nothing_raises(self):
        with pytest.raises(ValueError):
            merge_all([])


class TestMerge:
    @given(maybe_empty_samples, maybe_empty_samples)
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, a, b):
        da = sketch_of(a).merge(sketch_of(b)).to_dict()
        db = sketch_of(b).merge(sketch_of(a)).to_dict()
        assert da.pop("sum") == pytest.approx(db.pop("sum"), abs=1e-6)
        assert da == db

    @given(maybe_empty_samples, maybe_empty_samples, maybe_empty_samples)
    @settings(max_examples=100, deadline=None)
    def test_associative(self, a, b, c):
        left = sketch_of(a).merge(sketch_of(b)).merge(sketch_of(c))
        right = sketch_of(a).merge(sketch_of(b).merge(sketch_of(c)))
        dl, dr = left.to_dict(), right.to_dict()
        assert dl.pop("sum") == pytest.approx(dr.pop("sum"), abs=1e-6)
        assert dl == dr

    @given(samples, st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_shard_merge_equals_single_stream(self, values, shards):
        whole = sketch_of(values)
        parts = [sketch_of(values[i::shards]) for i in range(shards)]
        merged = merge_all(parts)
        assert_same_distribution(merged, whole)

    def test_shard_merge_acceptance_10k(self):
        # The ISSUE acceptance criterion, at scale and in both merge
        # orders: per-shard sketches merged together equal the sketch
        # of the full concatenated stream.
        rng = random.Random(99)
        values = [rng.expovariate(1 / 45.0) for _ in range(10000)]
        whole = sketch_of(values)
        parts = [sketch_of(values[i::5]) for i in range(5)]
        assert_same_distribution(merge_all(parts), whole)
        assert_same_distribution(merge_all(reversed(parts)), whole)

    def test_merge_does_not_mutate_operand(self):
        other = sketch_of([1.0, 2.0])
        before = other.to_dict()
        sketch_of([3.0]).merge(other)
        assert other.to_dict() == before

    def test_copy_is_independent(self):
        sketch = sketch_of([1.0, 2.0])
        clone = sketch.copy()
        clone.insert(100.0)
        assert sketch.count == 2
        assert clone.count == 3


class TestSerialization:
    @given(maybe_empty_samples)
    @settings(max_examples=100, deadline=None)
    def test_json_round_trip(self, values):
        sketch = sketch_of(values)
        doc = json.loads(json.dumps(sketch.to_dict(), sort_keys=True))
        rebuilt = QuantileSketch.from_dict(doc)
        assert rebuilt.to_dict() == sketch.to_dict()
        if values:
            for q in (0.0, 50.0, 95.0, 100.0):
                assert rebuilt.percentile(q) == sketch.percentile(q)

    def test_empty_dict_shape(self):
        doc = QuantileSketch().to_dict()
        assert doc["count"] == 0
        assert doc["min"] is None and doc["max"] is None
        assert doc["buckets"] == {}

    def test_from_dict_rejects_negative_bucket(self):
        doc = sketch_of([1.0]).to_dict()
        doc["buckets"] = {"3": -1}
        with pytest.raises(ValueError):
            QuantileSketch.from_dict(doc)

    def test_bucket_keys_are_strings(self):
        doc = sketch_of([0.5, 5.0, 50.0]).to_dict()
        assert all(isinstance(k, str) for k in doc["buckets"])
        assert all(
            isinstance(n, int) and n > 0 for n in doc["buckets"].values()
        )
