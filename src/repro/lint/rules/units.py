"""H2P104 — latency/energy-returning functions carry a unit suffix.

Every quantity in the codebase is unit-suffixed (``makespan_ms``,
``total_mj``, ``throughput_per_s``, ``access_latency_ns``): the paper
mixes milliseconds (latency), millijoules (energy) and bytes (memory),
and the one historical bug class DESIGN.md warns about is silent unit
mixing across the profiling -> core -> runtime boundary.  The rule
flags any function or method annotated ``-> float`` whose name contains
a quantity word but no recognized unit suffix.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, LintRule, register_rule

#: Name fragments that mark a function as returning a physical quantity.
QUANTITY_WORDS = (
    "latency",
    "makespan",
    "energy",
    "bubble",
    "duration",
    "elapsed",
    "delay",
    "dispatch",
)

#: Accepted unit suffixes (time, energy, power, data, rates, ratios).
UNIT_SUFFIXES = (
    "_ms",
    "_us",
    "_ns",
    "_s",
    "_mj",
    "_j",
    "_mw",
    "_w",
    "_hz",
    "_mhz",
    "_ghz",
    "_bytes",
    "_mb",
    "_gb",
    "_per_s",
    "_pct",
    "_frac",
    "_ratio",
    "_x",
)


def _returns_float(fn: ast.AST) -> bool:
    returns = getattr(fn, "returns", None)
    return isinstance(returns, ast.Name) and returns.id == "float"


def _has_unit_suffix(name: str) -> bool:
    return any(name.endswith(suffix) for suffix in UNIT_SUFFIXES)


@register_rule
class UnitSuffixRule(LintRule):
    code = "H2P104"
    name = "unit-suffix-on-quantity-returns"
    rationale = (
        "ms/mJ/bytes cross the profiling->core->runtime boundary "
        "constantly; the suffix convention is the only unit system "
        "Python gives us"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = node.name.lower()
            if not _returns_float(node):
                continue
            if not any(word in name for word in QUANTITY_WORDS):
                continue
            if _has_unit_suffix(name):
                continue
            yield self.finding(
                ctx,
                node,
                f"function {node.name!r} returns a float quantity but its "
                "name has no unit suffix (_ms, _mj, _bytes, _per_s, ...)",
            )
