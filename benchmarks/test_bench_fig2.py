"""Fig. 2 benchmark: queueing-delay motivation and resource demands."""

from repro.experiments import fig2_motivation


def test_bench_fig2a_queueing(run_once):
    comparison = run_once(fig2_motivation.run_queueing)
    print("\n" + fig2_motivation.render_queueing(comparison))

    serial = comparison.serial.queueing_delay_ms
    # The serial CPU backlog grows monotonically in trend...
    assert serial[-1] > serial[len(serial) // 2] > serial[0]
    # ...while heterogeneous execution keeps the mean wait far lower.
    assert (
        comparison.heterogeneous.mean_queueing_delay_ms
        < 0.5 * comparison.serial.mean_queueing_delay_ms
    )


def test_bench_fig2b_resource_demands(run_once):
    rows = run_once(fig2_motivation.run_demands)
    print("\n" + fig2_motivation.render_demands(rows))

    order = [r.model for r in rows]
    # Observation 2: FC-heavy AlexNet leads the ranking.
    assert order[0] == "alexnet"
    # Observation 3: lightweight SqueezeNet outranks the 70x-larger ViT.
    assert order.index("squeezenet") < order.index("vit")
    # Memory-bound demand shows as depressed IPC at the top of the list.
    assert rows[0].ipc < rows[-1].ipc
