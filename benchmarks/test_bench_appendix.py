"""Appendix B thermal benchmark and the absolute optimality-gap study."""

from repro.experiments import appendix_thermal, ext_optimality


def test_bench_appendix_thermal(run_once):
    rows, comparison = run_once(
        lambda: (appendix_thermal.run_sweep(), appendix_thermal.run_feedback())
    )
    print("\n" + appendix_thermal.render_sweep(rows))
    print("\n" + appendix_thermal.render_feedback(comparison))

    by_kind = {
        (r.kind, r.utilization): r for r in rows
    }
    # Appendix B: CPU crosses 60 C at full load and throttles; GPU/NPU
    # stay cool and unthrottled.
    assert by_kind[("cpu_big", 1.0)].temperature_c > 60.0
    assert by_kind[("cpu_big", 1.0)].frequency_scale < 1.0
    assert by_kind[("gpu", 1.0)].frequency_scale == 1.0
    assert by_kind[("npu", 1.0)].frequency_scale == 1.0
    # The utilization-consistent fixpoint never loses to the paper's
    # full-load assumption.
    assert comparison.feedback_ms <= comparison.worst_case_ms * 1.02


def test_bench_optimality_gaps(run_once):
    points = run_once(ext_optimality.run, num_combinations=12)
    print("\n" + ext_optimality.render(points))

    stats = ext_optimality.summarize(points)
    # Achieved makespans always respect the lower bound...
    for point in points:
        assert point.gap >= -1e-9
    # ...and the gap is driven by bound looseness on NPU-clean
    # workloads (everything's best case is the same single NPU, which
    # the K-way work bound cannot see).
    if stats["count_with_fallback"] and stats["count_clean"]:
        assert stats["npu_clean"] > stats["with_fallback"]
