"""Tests for plan-validation diagnostics and the optimality-gap study."""

import dataclasses

import pytest

from repro.core.planner import Hetero2PipePlanner
from repro.core.plan import PipelinePlan, StageAssignment
from repro.core.validate import Violation, is_valid, validate_plan
from repro.experiments.ext_optimality import run as optimality_run, summarize
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


@pytest.fixture()
def good_plan(kirin):
    planner = Hetero2PipePlanner(kirin)
    models = [get_model(n) for n in ("yolov4", "bert", "squeezenet")]
    return planner.plan(models).plan


def _raw_plan(kirin, profiler, slices_per_model):
    assignments = [
        StageAssignment.__new__(StageAssignment) for _ in slices_per_model
    ]
    # Bypass __post_init__ so we can build intentionally-broken plans.
    for assignment, (name, slices) in zip(assignments, slices_per_model):
        assignment.profile = profiler.profile(get_model(name))
        assignment.slices = list(slices)
    return PipelinePlan(
        soc=kirin,
        processors=tuple(kirin.processors),
        assignments=assignments,
    )


class TestValidate:
    def test_planner_output_is_clean(self, good_plan):
        assert validate_plan(good_plan) == []
        assert is_valid(good_plan)

    def test_gap_detected(self, kirin, profiler):
        n = get_model("vgg16").num_layers
        plan = _raw_plan(
            kirin, profiler, [("vgg16", [(0, 2), (5, n - 1), None, None])]
        )
        codes = {v.code for v in validate_plan(plan)}
        assert "gap-or-overlap" in codes

    def test_incomplete_cover_detected(self, kirin, profiler):
        plan = _raw_plan(
            kirin, profiler, [("vgg16", [(0, 2), None, None, None])]
        )
        codes = {v.code for v in validate_plan(plan)}
        assert "incomplete-cover" in codes

    def test_bad_slice_detected(self, kirin, profiler):
        n = get_model("vgg16").num_layers
        plan = _raw_plan(
            kirin, profiler, [("vgg16", [(0, n + 5), None, None, None])]
        )
        codes = {v.code for v in validate_plan(plan)}
        assert "bad-slice" in codes

    def test_unsupported_operator_detected(self, kirin, profiler):
        # BERT forced entirely onto the NPU stage.
        n = get_model("bert").num_layers
        npu_stage = [
            k for k, p in enumerate(kirin.processors) if p.name == "npu"
        ][0]
        slices = [None] * kirin.num_processors
        slices[npu_stage] = (0, n - 1)
        plan = _raw_plan(kirin, profiler, [("bert", slices)])
        violations = validate_plan(plan)
        codes = {v.code for v in violations}
        assert "unsupported-operator" in codes
        message = next(
            v.message for v in violations if v.code == "unsupported-operator"
        )
        assert "embedding" in message

    def test_bad_order_detected(self, kirin, profiler, good_plan):
        broken = good_plan.copy()
        broken.order = (0, 0, 2)
        codes = {v.code for v in validate_plan(broken)}
        assert "bad-order" in codes

    def test_memory_capacity_detected(self, kirin, profiler):
        # Shrink capacity until a heavyweight diagonal cannot fit.
        tiny = dataclasses.replace(kirin, memory_capacity_bytes=50e6)
        planner = Hetero2PipePlanner(kirin)
        models = [get_model("bert"), get_model("vit")]
        plan = planner.plan(models).plan
        shrunk = PipelinePlan(
            soc=tiny,
            processors=plan.processors,
            assignments=plan.assignments,
            order=plan.order,
        )
        codes = {v.code for v in validate_plan(shrunk)}
        assert "memory-capacity" in codes

    def test_violation_str(self):
        violation = Violation(code="x", message="y")
        assert "x" in str(violation) and "y" in str(violation)


class TestOptimalityStudy:
    def test_gaps_nonnegative(self, kirin):
        points = optimality_run(kirin, num_combinations=6, seed=5)
        for point in points:
            assert point.gap >= -1e-9
            assert point.achieved_ms >= point.bound_ms - 1e-6

    def test_summary_partitions_points(self, kirin):
        points = optimality_run(kirin, num_combinations=6, seed=5)
        stats = summarize(points)
        assert stats["count_with_fallback"] + stats["count_clean"] == len(
            points
        )
        assert stats["overall"] >= 0.0
