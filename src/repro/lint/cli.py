"""Lint driver shared by ``hetero2pipe lint`` and ``python -m repro.lint``.

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import all_rules, get_rule, lint_paths
from .reporters import exit_code, render_json, render_text


def default_src_root() -> Path:
    """The ``src/`` directory this installation was imported from."""
    # .../src/repro/lint/cli.py -> .../src
    return Path(__file__).resolve().parents[2]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags (shared with the hetero2pipe subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--plans",
        action="store_true",
        help="also sweep plan invariants over zoo x SoC x config "
        "(slower; runs the planner)",
    )
    parser.add_argument(
        "--src-root",
        metavar="DIR",
        help="source root for module-name resolution (default: the "
        "installed src/ directory)",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"        {rule.rationale}")
        return 0

    rules = None
    if args.rules:
        try:
            rules = [get_rule(c.strip()) for c in args.rules.split(",") if c.strip()]
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2

    src_root = Path(args.src_root) if args.src_root else default_src_root()
    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"no such path(s): {missing}", file=sys.stderr)
            return 2
    else:
        paths = [src_root / "repro"]

    findings = lint_paths(paths, src_root=src_root, rules=rules)

    checked = 0
    if args.plans:
        from .plan_invariants import sweep_plan_invariants

        plan_findings, checked = sweep_plan_invariants()
        findings = findings + plan_findings

    if args.json:
        print(render_json(findings))
    else:
        print(render_text(findings))
        if args.plans:
            print(f"plan invariants: {checked} plan(s) validated")
    return exit_code(findings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Hetero2Pipe static analysis: AST rules, import "
        "layering, plan invariants.",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


__all__: List[str] = [
    "add_lint_arguments",
    "run_lint_command",
    "default_src_root",
    "main",
]
