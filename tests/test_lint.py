"""Tests for the ``repro.lint`` static-analysis subsystem.

Deliberately-seeded violations (written as fixture trees under
``tmp_path`` mimicking the ``repro`` package layout) must produce the
expected rule codes in both text and JSON output; the real tree must
lint clean; suppression pragmas and exit codes must behave as CI
expects.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.lint import (
    Finding,
    RULE_REGISTRY,
    lint_paths,
    render_json,
    render_text,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import lint_source, module_name_for
from repro.lint.plan_invariants import (
    PLAN_CODE_MAP,
    findings_from_violations,
    sweep_plan_invariants,
)
from repro.lint.rules.layering import LAYERS, MODULE_OVERRIDES, rank_of
from repro.core.validate import Violation


def _lint_snippet(source, module="repro.core.sample"):
    """Lint one in-memory module; return the set of finding codes."""
    findings = lint_source(source, path="<fixture>", module=module)
    return {f.code for f in findings}, findings


# ---------------------------------------------------------------- AST rules


class TestWallClockRule:
    def test_time_time_in_runtime_fixture(self, tmp_path):
        # The acceptance-criteria fixture: time.time() in a runtime/ file.
        root = tmp_path / "src"
        bad = root / "repro" / "runtime" / "clocked.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n\ndef now() -> float:\n    return time.time()\n")
        findings = lint_paths([root], src_root=root)
        assert any(f.code == "H2P101" for f in findings)
        (finding,) = [f for f in findings if f.code == "H2P101"]
        assert finding.line == 4

    def test_datetime_now_flagged_in_core(self):
        codes, _ = _lint_snippet(
            "from datetime import datetime\n"
            "def stamp() -> float:\n"
            "    return datetime.now().timestamp()\n",
            module="repro.core.sample",
        )
        assert "H2P101" in codes

    def test_from_time_import_alias_flagged(self):
        codes, _ = _lint_snippet(
            "from time import perf_counter as tick\n"
            "def t() -> float:\n"
            "    return tick()\n",
            module="repro.runtime.sample",
        )
        assert "H2P101" in codes

    def test_wall_clock_fine_outside_simulator(self):
        codes, _ = _lint_snippet(
            "import time\n\ndef now() -> float:\n    return time.time()\n",
            module="repro.profiling.sample",
        )
        assert "H2P101" not in codes


class TestFloatEqualityRule:
    def test_literal_equality_flagged(self):
        codes, _ = _lint_snippet("def f(x: float) -> bool:\n    return x == 0.0\n")
        assert "H2P102" in codes

    def test_not_equals_flagged(self):
        codes, _ = _lint_snippet("def f(x: float) -> bool:\n    return x != 1.5\n")
        assert "H2P102" in codes

    def test_infeasible_comparison_exempt(self):
        codes, _ = _lint_snippet(
            "INFEASIBLE = float('inf')\n"
            "def f(x: float) -> bool:\n"
            "    return x == INFEASIBLE\n"
        )
        assert "H2P102" not in codes

    def test_int_literal_untouched(self):
        codes, _ = _lint_snippet("def f(n: int) -> bool:\n    return n == 0\n")
        assert "H2P102" not in codes


class TestFrozenMutationRule:
    FROZEN = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class Spec:\n"
        "    x: float\n"
    )

    def test_self_assignment_flagged(self):
        codes, _ = _lint_snippet(
            self.FROZEN + "    def bump(self) -> None:\n        self.x = 1.0\n"
        )
        assert "H2P103" in codes

    def test_object_setattr_outside_post_init_flagged(self):
        codes, _ = _lint_snippet(
            self.FROZEN
            + "    def sneak(self) -> None:\n"
            + "        object.__setattr__(self, 'x', 2.0)\n"
        )
        assert "H2P103" in codes

    def test_object_setattr_in_post_init_allowed(self):
        codes, _ = _lint_snippet(
            self.FROZEN
            + "    def __post_init__(self) -> None:\n"
            + "        object.__setattr__(self, 'x', 0.0)\n"
        )
        assert "H2P103" not in codes

    def test_mutable_dataclass_untouched(self):
        codes, _ = _lint_snippet(
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Box:\n"
            "    x: float\n"
            "    def bump(self) -> None:\n"
            "        self.x = 1.0\n"
        )
        assert "H2P103" not in codes


class TestUnitSuffixRule:
    def test_unsuffixed_quantity_flagged(self):
        codes, _ = _lint_snippet("def makespan(n: int) -> float:\n    return 1.0\n")
        assert "H2P104" in codes

    def test_suffixed_quantity_clean(self):
        codes, _ = _lint_snippet(
            "def makespan_ms(n: int) -> float:\n    return 1.0\n"
            "def energy_mj(n: int) -> float:\n    return 1.0\n"
        )
        assert "H2P104" not in codes

    def test_non_float_return_untouched(self):
        codes, _ = _lint_snippet(
            "def energy_breakdown(n: int) -> dict:\n    return {}\n"
        )
        assert "H2P104" not in codes


class TestInfeasibleArithmeticRule:
    def test_addition_flagged(self):
        codes, _ = _lint_snippet(
            "INFEASIBLE = float('inf')\n"
            "def f(x: float) -> float:\n"
            "    return x + INFEASIBLE\n"
        )
        assert "H2P105" in codes

    def test_augassign_flagged(self):
        codes, _ = _lint_snippet(
            "INFEASIBLE = float('inf')\n"
            "def f(x: float) -> float:\n"
            "    x += INFEASIBLE\n"
            "    return x\n"
        )
        assert "H2P105" in codes

    def test_min_pruning_allowed(self):
        codes, _ = _lint_snippet(
            "INFEASIBLE = float('inf')\n"
            "def f(x: float) -> float:\n"
            "    return min(x, INFEASIBLE)\n"
        )
        assert "H2P105" not in codes


class TestPrintRule:
    def test_print_in_library_module_flagged(self):
        codes, findings = _lint_snippet(
            "def plan() -> None:\n    print('makespan', 3)\n"
        )
        assert "H2P107" in codes
        msg = next(f for f in findings if f.code == "H2P107").message
        assert "obs recorder" in msg

    def test_cli_module_exempt(self):
        codes, _ = _lint_snippet(
            "def run() -> None:\n    print('done')\n", module="repro.cli"
        )
        assert "H2P107" not in codes

    def test_reporters_module_exempt(self):
        codes, _ = _lint_snippet(
            "def render() -> None:\n    print('finding')\n",
            module="repro.lint.reporters",
        )
        assert "H2P107" not in codes

    def test_main_guard_exempt(self):
        codes, _ = _lint_snippet(
            "def main() -> int:\n"
            "    return 0\n"
            "if __name__ == '__main__':\n"
            "    print(main())\n",
            module="repro.experiments.sample",
        )
        assert "H2P107" not in codes

    def test_shadowed_or_method_print_unflagged(self):
        codes, _ = _lint_snippet(
            "def f(writer) -> None:\n    writer.print('x')\n"
        )
        assert "H2P107" not in codes

    def test_non_repro_code_out_of_scope(self):
        codes, _ = _lint_snippet(
            "print('hello')\n", module="scripts.helper"
        )
        assert "H2P107" not in codes


class TestSpanContextRule:
    def test_manually_held_span_flagged(self):
        # The exact leak class PR 3 fixed by hand in plan.mitigate.
        codes, findings = _lint_snippet(
            "from .. import obs\n"
            "def plan() -> None:\n"
            "    sp = obs.span('plan.mitigate')\n"
            "    sp.__enter__()\n"
        )
        assert "H2P108" in codes
        msg = next(f for f in findings if f.code == "H2P108").message
        assert "with" in msg

    def test_bare_imported_span_flagged(self):
        codes, _ = _lint_snippet(
            "from repro.obs import span\n"
            "def f() -> None:\n"
            "    sp = span('work')\n"
        )
        assert "H2P108" in codes

    def test_with_statement_sanctioned(self):
        codes, _ = _lint_snippet(
            "from .. import obs\n"
            "def plan() -> None:\n"
            "    with obs.span('plan') as sp:\n"
            "        sp.set(x=1)\n"
        )
        assert "H2P108" not in codes

    def test_conditional_span_inside_with_item_sanctioned(self):
        # The executor's record-gated pattern: the call stays inside the
        # with item's context expression.
        codes, _ = _lint_snippet(
            "from .. import obs\n"
            "def run(record: bool) -> None:\n"
            "    with (obs.span('execute') if record else obs.NULL_SPAN):\n"
            "        pass\n"
        )
        assert "H2P108" not in codes

    def test_unrelated_span_name_unflagged(self):
        # A local variable/function merely named `span` is not the
        # obs helper (no obs import brought it in).
        codes, _ = _lint_snippet(
            "def span(width: float) -> float:\n"
            "    return width * 2\n"
            "def f() -> float:\n"
            "    return span(3.0)\n"
        )
        assert "H2P108" not in codes

    def test_obs_package_itself_exempt(self):
        codes, _ = _lint_snippet(
            "def span(name):\n"
            "    return object()\n"
            "def helper():\n"
            "    return span('internal')\n",
            module="repro.obs.recorder",
        )
        assert "H2P108" not in codes

    def test_fixture_tree_flags_span_leak(self, tmp_path):
        root = tmp_path / "src"
        bad = root / "repro" / "core" / "leaky.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "from .. import obs\n"
            "def plan() -> None:\n"
            "    sp = obs.span('plan')\n"
        )
        findings = lint_paths([root], src_root=root)
        assert any(f.code == "H2P108" for f in findings)
        (finding,) = [f for f in findings if f.code == "H2P108"]
        assert finding.line == 3


# ------------------------------------------------------------- layering rule


class TestLayeringRule:
    def test_synthetic_upward_import(self, tmp_path):
        # The acceptance-criteria fixture: runtime importing experiments.
        root = tmp_path / "src"
        bad = root / "repro" / "runtime" / "upward.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("from ..experiments.common import geomean\n")
        findings = lint_paths([root], src_root=root)
        assert [f.code for f in findings] == ["H2P201"]
        assert "repro.experiments.common" in findings[0].message

    def test_downward_import_clean(self, tmp_path):
        root = tmp_path / "src"
        good = root / "repro" / "core" / "downward.py"
        good.parent.mkdir(parents=True)
        good.write_text("from ..hardware.soc import SocSpec\n")
        assert lint_paths([root], src_root=root) == []

    def test_function_level_import_exempt(self, tmp_path):
        root = tmp_path / "src"
        mod = root / "repro" / "runtime" / "lazy.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "def schemes():\n"
            "    from ..experiments.common import geomean\n"
            "    return geomean\n"
        )
        assert lint_paths([root], src_root=root) == []

    def test_rank_map_is_consistent(self):
        # Overrides refine modules of packages that exist in the map.
        for module in MODULE_OVERRIDES:
            assert module.split(".")[1] in LAYERS
        assert rank_of("repro.obs.recorder") < rank_of("repro.core.plan")
        assert rank_of("repro.runtime.schedule") < rank_of("repro.core.plan")
        assert rank_of("repro.runtime.queueing") > rank_of("repro.baselines.band")
        assert rank_of("numpy") is None

    def test_real_tree_has_no_upward_imports(self):
        src_root = Path(repro.__file__).resolve().parents[1]
        findings = lint_paths([src_root / "repro"], src_root=src_root)
        assert [f for f in findings if f.code == "H2P201"] == []


# -------------------------------------------------- engine-level behaviours


class TestSuppressionAndReporting:
    def test_line_pragma_suppresses(self):
        codes, _ = _lint_snippet(
            "import time\n"
            "def f() -> float:\n"
            "    return time.time()  # lint: disable=H2P101\n",
            module="repro.runtime.sample",
        )
        assert "H2P101" not in codes

    def test_disable_all_pragma(self):
        codes, _ = _lint_snippet(
            "def f(x: float) -> bool:\n"
            "    return x == 0.0  # lint: disable=all\n"
        )
        assert codes == set()

    def test_wrong_code_does_not_suppress(self):
        codes, _ = _lint_snippet(
            "def f(x: float) -> bool:\n"
            "    return x == 0.0  # lint: disable=H2P999\n"
        )
        assert "H2P102" in codes

    def test_syntax_error_reported_not_raised(self):
        codes, findings = _lint_snippet("def broken(:\n")
        assert codes == {"H2P000"}

    def test_text_report_format(self):
        findings = [
            Finding(code="H2P101", message="m", path="a.py", line=3, col=1)
        ]
        text = render_text(findings)
        assert "a.py:3:1: H2P101 m" in text
        assert "1 finding(s)" in text
        assert render_text([]) == "lint: clean (0 findings)"

    def test_json_report_roundtrip(self):
        findings = [
            Finding(code="H2P102", message="m", path="b.py", line=7),
            Finding(code="H2P102", message="m2", path="b.py", line=9),
        ]
        doc = json.loads(render_json(findings))
        assert doc["total"] == 2
        assert doc["counts"] == {"H2P102": 2}
        assert doc["findings"][0]["line"] == 7

    def test_module_name_resolution(self, tmp_path):
        root = tmp_path / "src"
        init = root / "repro" / "runtime" / "__init__.py"
        init.parent.mkdir(parents=True)
        init.write_text("")
        assert module_name_for(init, root) == "repro.runtime"
        outside = tmp_path / "elsewhere.py"
        outside.write_text("")
        assert module_name_for(outside, root) == ""

    def test_registry_has_all_documented_rules(self):
        assert {
            "H2P101",
            "H2P102",
            "H2P103",
            "H2P104",
            "H2P105",
            "H2P107",
            "H2P108",
            "H2P201",
        } <= set(RULE_REGISTRY)


# ------------------------------------------------------------------ the CLI


class TestLintCli:
    def _fixture_tree(self, tmp_path):
        root = tmp_path / "src"
        bad = root / "repro" / "runtime" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n"
            "from ..experiments.common import geomean\n"
            "def makespan(n: int) -> float:\n"
            "    return time.time()\n"
        )
        return root

    def test_exit_one_and_text_output(self, tmp_path, capsys):
        root = self._fixture_tree(tmp_path)
        status = lint_main([str(root), "--src-root", str(root)])
        out = capsys.readouterr().out
        assert status == 1
        assert "H2P101" in out and "H2P201" in out and "H2P104" in out

    def test_json_output_parses(self, tmp_path, capsys):
        root = self._fixture_tree(tmp_path)
        status = lint_main([str(root), "--src-root", str(root), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert status == 1
        assert doc["total"] >= 3
        assert {"H2P101", "H2P201", "H2P104"} <= set(doc["counts"])

    def test_rule_filter(self, tmp_path, capsys):
        root = self._fixture_tree(tmp_path)
        status = lint_main(
            [str(root), "--src-root", str(root), "--rules", "H2P201", "--json"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert status == 1
        assert set(doc["counts"]) == {"H2P201"}

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        status = lint_main([str(tmp_path), "--rules", "NOPE"])
        assert status == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        status = lint_main([str(tmp_path / "absent")])
        assert status == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "H2P201" in out and "import-layering" in out

    def test_repo_lints_clean(self, capsys):
        # The acceptance criterion: the shipped tree has zero findings.
        assert lint_main([]) == 0
        assert "clean" in capsys.readouterr().out

    def test_hetero2pipe_lint_subcommand(self, capsys):
        from repro.cli import main as h2p_main

        assert h2p_main(["lint", "--list-rules"]) == 0
        assert "H2P101" in capsys.readouterr().out


# -------------------------------------------------------- plan invariants


class TestPlanInvariants:
    def test_violation_mapping(self):
        findings = findings_from_violations(
            [Violation(code="memory-capacity", message="diag 3 over budget")],
            origin="plan://kirin990/default/bert",
        )
        assert len(findings) == 1
        assert findings[0].code == "H2P307"
        assert findings[0].path == "plan://kirin990/default/bert"
        assert "memory-capacity" in findings[0].message

    def test_every_validate_code_is_mapped(self):
        assert set(PLAN_CODE_MAP) == {
            "unknown-processor",
            "bad-order",
            "gap-or-overlap",
            "bad-slice",
            "incomplete-cover",
            "unsupported-operator",
            "memory-capacity",
        }
        assert len(set(PLAN_CODE_MAP.values())) == len(PLAN_CODE_MAP)

    def test_narrow_sweep_is_clean(self):
        findings, checked = sweep_plan_invariants(
            soc_names=["kirin990"],
            model_names=["alexnet", "squeezenet"],
            config_names=["no_ct"],
        )
        assert findings == []
        assert checked == 3  # two singles + the combined workload
