"""Span trees: hierarchical wall-time instrumentation.

A :class:`Span` is one timed region with structured attributes; spans
nest into a tree via a per-thread stack the recorder maintains, so the
planner's four stages appear as children of one ``plan`` root and every
``partition`` span hangs under it.  Spans measure *wall* time — they
describe how long the planner itself ran, never simulated time, which
is exactly why the H2P101 wall-clock ban covers ``core``/``runtime``
but not this package: the clock read lives here, behind the recorder,
and instrumented code only ever observes it through the span API.

The clock is injectable (:func:`set_clock`) so tests can assert exact
durations deterministically.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

#: The span clock: seconds as a float.  Swappable for deterministic tests.
_clock: Callable[[], float] = time.perf_counter


def set_clock(clock: Callable[[], float]) -> Callable[[], float]:
    """Replace the span clock; returns the previous one (for restore)."""
    global _clock
    previous = _clock
    _clock = clock
    return previous


def now_s() -> float:
    """Current span-clock reading in seconds."""
    return _clock()


class Span:
    """One timed region with attributes and child spans.

    Use as a context manager (via :func:`repro.obs.span`); attributes
    given at creation can be extended mid-flight with :meth:`set`.
    """

    __slots__ = ("name", "attrs", "start_s", "end_s", "children", "_on_close")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, object]] = None,
        on_close: Optional[Callable[["Span"], None]] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs or {})
        self.start_s: float = now_s()
        self.end_s: Optional[float] = None
        self.children: List["Span"] = []
        self._on_close = on_close

    def set(self, **attrs: object) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def close(self) -> None:
        if self.end_s is None:
            self.end_s = now_s()
            if self._on_close is not None:
                self._on_close(self)

    @property
    def duration_ms(self) -> float:
        """Wall duration in milliseconds (up to now for an open span)."""
        end = self.end_s if self.end_s is not None else now_s()
        return (end - self.start_s) * 1e3

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def walk(self) -> List["Span"]:
        """This span and every descendant, depth-first pre-order."""
        out: List[Span] = [self]
        for child in self.children:
            out.extend(child.walk())
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_ms": self.duration_ms,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration_ms:.3f} ms, {self.attrs})"


class NullSpan:
    """The shared no-op span: every operation does nothing.

    A single module-level instance is handed out whenever the recorder
    is disabled, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def set(self, **attrs: object) -> "NullSpan":
        return self

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: The singleton no-op span (stateless, safe to reuse and re-enter).
NULL_SPAN = NullSpan()
