"""Plan-invariant linter: batch-sweep ``core.validate`` over the zoo.

``core/validate.py`` checks one plan at a time, at runtime.  This
module lifts it to lint time: for every zoo model x SoC x planner
configuration it plans the request (plus one all-models pipeline per
combination, which exercises the co-residency diagonals of
Constraint 6) and converts each
:class:`~repro.core.validate.Violation` into a lint
:class:`~repro.lint.engine.Finding`, so a planner regression that
starts emitting gap/overlap slices or memory-infeasible diagonals
fails CI exactly like a banned import would.

Finding paths use the virtual scheme ``plan://soc/config/workload`` —
there is no source line to point at, only a combination to reproduce.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.planner import Hetero2PipePlanner, PlannerConfig
from ..core.validate import Violation, validate_plan
from .engine import Finding

#: validate.py violation code -> lint rule code (H2P3xx block).
PLAN_CODE_MAP: Dict[str, str] = {
    "unknown-processor": "H2P301",
    "bad-order": "H2P302",
    "gap-or-overlap": "H2P303",
    "bad-slice": "H2P304",
    "incomplete-cover": "H2P305",
    "unsupported-operator": "H2P306",
    "memory-capacity": "H2P307",
}

#: The planner configurations the sweep exercises.
PLANNER_CONFIGS: Dict[str, PlannerConfig] = {
    "default": PlannerConfig(),
    "no_ct": PlannerConfig.no_contention_or_tail(),
    "fast_dp": PlannerConfig(fast_dp=True),
}


def findings_from_violations(
    violations: Iterable[Violation], origin: str
) -> List[Finding]:
    """Convert validator violations into lint findings at ``origin``."""
    out: List[Finding] = []
    for v in violations:
        out.append(
            Finding(
                code=PLAN_CODE_MAP.get(v.code, "H2P300"),
                message=f"{v.code}: {v.message}",
                path=origin,
                line=1,
            )
        )
    return out


def sweep_plan_invariants(
    soc_names: Sequence[str] = (),
    model_names: Sequence[str] = (),
    config_names: Sequence[str] = (),
) -> Tuple[List[Finding], int]:
    """Plan and validate every model x SoC x config combination.

    Args:
        soc_names: SoCs to sweep (default: all registered).
        model_names: Zoo models to sweep (default: all ten).
        config_names: Keys of :data:`PLANNER_CONFIGS` (default: all).

    Returns:
        ``(findings, num_plans_checked)``.
    """
    from ..hardware.soc import SOC_NAMES, get_soc
    from ..models.zoo import MODEL_NAMES, get_model

    socs = list(soc_names) or list(SOC_NAMES)
    models = list(model_names) or list(MODEL_NAMES)
    configs = list(config_names) or list(PLANNER_CONFIGS)

    findings: List[Finding] = []
    checked = 0
    for soc_name in socs:
        soc = get_soc(soc_name)
        estimator = None
        for config_name in configs:
            config = PLANNER_CONFIGS[config_name]
            planner = Hetero2PipePlanner(soc, config, estimator=estimator)
            estimator = planner.estimator  # fit once per SoC, reuse
            workloads = [(name, [get_model(name)]) for name in models]
            if len(models) > 1:
                # One combined pipeline exercises the Constraint 6
                # co-residency diagonals across model mixes.
                workloads.append(
                    ("all-models", [get_model(name) for name in models])
                )
            for workload_name, workload in workloads:
                origin = f"plan://{soc_name}/{config_name}/{workload_name}"
                try:
                    plan = planner.plan(workload).plan
                except Exception as error:  # planner crash is a finding too
                    findings.append(
                        Finding(
                            code="H2P300",
                            message=f"planner raised {type(error).__name__}: {error}",
                            path=origin,
                            line=1,
                        )
                    )
                    continue
                checked += 1
                findings.extend(
                    findings_from_violations(validate_plan(plan), origin)
                )
    return findings, checked
