"""Tests for the extension features: energy, streaming, batching,
extended zoo, trace export."""

import json

import pytest

from repro.core.online import StreamingPlanner
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.energy import (
    DEFAULT_POWER,
    EnergyBreakdown,
    PowerSpec,
    estimate_energy,
)
from repro.hardware.processor import ProcessorKind
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.models.zoo_extended import (
    EXTENDED_MODEL_BUILDERS,
    build_agegendernet,
    build_facenet,
    build_gpt2,
    register_extended_models,
)
from repro.baselines.mnn_serial import plan_mnn_serial
from repro.profiling.profiler import SocProfiler
from repro.runtime.executor import execute_plan
from repro.runtime.tracing import ascii_gantt, to_chrome_trace, write_chrome_trace
from repro.workloads.batching import batched_model, coalesce_stream
from repro.workloads.generator import arrival_times_ms


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def h2p_result(kirin):
    planner = Hetero2PipePlanner(kirin)
    models = [get_model(n) for n in ("yolov4", "bert", "squeezenet", "vit")]
    return execute_plan(planner.plan(models).plan)


class TestEnergy:
    def test_power_spec_validation(self):
        with pytest.raises(ValueError):
            PowerSpec(idle_w=-1.0, active_w=1.0)

    def test_breakdown_components_sum(self, kirin, h2p_result):
        energy = estimate_energy(h2p_result, kirin)
        assert energy.total_mj == pytest.approx(
            energy.compute_mj + energy.dram_mj
        )
        assert energy.total_mj > 0
        assert energy.dram_mj > 0

    def test_active_energy_tracks_busy_time(self, kirin, h2p_result):
        energy = estimate_energy(h2p_result, kirin)
        for proc in kirin.processors:
            busy = h2p_result.processor_busy_ms[proc.name]
            expected = DEFAULT_POWER[proc.kind].active_w * busy
            assert energy.active_mj[proc.name] == pytest.approx(expected)

    def test_h2p_saves_energy_vs_serial(self, kirin, h2p_result):
        models = [get_model(n) for n in ("yolov4", "bert", "squeezenet", "vit")]
        serial = execute_plan(plan_mnn_serial(kirin, models))
        e_h2p = estimate_energy(h2p_result, kirin)
        e_serial = estimate_energy(serial, kirin)
        assert e_h2p.total_mj < e_serial.total_mj

    def test_per_inference_validation(self, kirin, h2p_result):
        energy = estimate_energy(h2p_result, kirin)
        with pytest.raises(ValueError):
            energy.per_inference_mj(0)

    def test_custom_power_table(self, kirin, h2p_result):
        free_cpu = dict(DEFAULT_POWER)
        free_cpu[ProcessorKind.CPU_BIG] = PowerSpec(0.0, 0.0)
        cheaper = estimate_energy(h2p_result, kirin, power=free_cpu)
        normal = estimate_energy(h2p_result, kirin)
        assert cheaper.total_mj < normal.total_mj


class TestBatchedModel:
    def test_batch_one_is_identity(self):
        model = get_model("mobilenetv2")
        assert batched_model(model, 1) is model

    def test_batch_scales_flops_not_weights(self):
        model = get_model("mobilenetv2")
        b4 = batched_model(model, 4)
        assert b4.total_flops == pytest.approx(4 * model.total_flops)
        assert b4.total_weight_bytes == pytest.approx(model.total_weight_bytes)
        assert b4.name == "mobilenetv2_x4"
        assert b4.num_layers == model.num_layers

    def test_batch_invalid(self):
        with pytest.raises(ValueError):
            batched_model(get_model("mobilenetv2"), 0)

    def test_coalesce_merges_runs(self):
        models = [get_model(n) for n in
                  ("mobilenetv2", "mobilenetv2", "mobilenetv2", "bert",
                   "mobilenetv2", "mobilenetv2")]
        batched, sizes = coalesce_stream(models)
        assert sizes == [3, 1, 2]
        assert batched[0].name == "mobilenetv2_x3"
        assert batched[1].name == "bert"
        assert batched[2].name == "mobilenetv2_x2"

    def test_coalesce_respects_cap(self):
        models = [get_model("squeezenet")] * 10
        batched, sizes = coalesce_stream(models, max_batch=4)
        assert sizes == [4, 4, 2]

    def test_coalesce_validation(self):
        with pytest.raises(ValueError):
            coalesce_stream([])
        with pytest.raises(ValueError):
            coalesce_stream([get_model("bert")], max_batch=0)


class TestStreamingPlanner:
    def test_invalid_window(self, kirin):
        with pytest.raises(ValueError):
            StreamingPlanner(kirin, window_size=0)

    def test_empty_stream_rejected(self, kirin):
        planner = StreamingPlanner(kirin)
        with pytest.raises(ValueError):
            planner.run([])

    def test_arrival_mismatch_rejected(self, kirin):
        planner = StreamingPlanner(kirin)
        with pytest.raises(ValueError):
            planner.run([get_model("vit")], arrivals=[0.0, 1.0])

    def test_windows_cover_stream(self, kirin):
        planner = StreamingPlanner(kirin, window_size=3)
        stream = [get_model("resnet50")] * 8
        result = planner.run(stream)
        assert sum(w.num_requests for w in result.windows) == 8
        assert len(result.windows) == 3
        assert all(f > 0 for f in result.request_finish_ms)

    def test_windows_dispatch_in_order(self, kirin):
        planner = StreamingPlanner(kirin, window_size=2)
        stream = [get_model(n) for n in
                  ("vit", "resnet50", "bert", "squeezenet")]
        result = planner.run(stream)
        dispatches = [w.dispatch_ms for w in result.windows]
        assert dispatches == sorted(dispatches)
        # Second window waits for the first to drain.
        assert result.windows[1].dispatch_ms >= result.windows[0].finish_ms - 1e-6

    def test_arrivals_gate_windows(self, kirin):
        planner = StreamingPlanner(kirin, window_size=2)
        stream = [get_model("squeezenet")] * 4
        arrivals = [0.0, 0.0, 1000.0, 1000.0]
        result = planner.run(stream, arrivals)
        assert result.windows[1].dispatch_ms >= 1000.0

    def test_latencies_consistent(self, kirin):
        planner = StreamingPlanner(kirin, window_size=4)
        stream = [get_model(n) for n in ("vit", "resnet50", "googlenet")]
        arrivals = arrival_times_ms(3, 10.0)
        result = planner.run(stream, arrivals)
        for i in range(3):
            assert result.request_latency_ms(i) > 0
        assert result.mean_latency_ms() > 0
        assert result.throughput_per_s > 0

    def test_coalescing_improves_light_stream(self, kirin):
        # A stream of identical lightweight requests benefits from
        # batching: fewer launches, fewer copies.
        stream = [get_model("mobilenetv2")] * 12
        plain = StreamingPlanner(kirin, window_size=12).run(stream)
        batched = StreamingPlanner(
            kirin, window_size=12, coalesce_batches=True, max_batch=12
        ).run(stream)
        assert batched.makespan_ms <= plain.makespan_ms * 1.05
        # every original request got a finish time
        assert all(f > 0 for f in batched.request_finish_ms)


class TestExtendedZoo:
    def test_builders_produce_valid_models(self):
        for name, builder in EXTENDED_MODEL_BUILDERS.items():
            model = builder()
            assert model.name == name
            assert model.num_layers > 5
            assert model.total_flops > 0

    def test_registration_idempotent(self):
        names = register_extended_models()
        assert set(names) == {"facenet", "agegendernet", "gpt2"}
        register_extended_models()
        assert get_model("facenet").name == "facenet"

    def test_evaluation_registry_untouched(self):
        from repro.models.zoo import MODEL_NAMES

        register_extended_models()
        assert len(MODEL_NAMES) == 10
        assert "facenet" not in MODEL_NAMES

    def test_gpt2_is_npu_incompatible(self):
        assert not build_gpt2().npu_supported()

    def test_facenet_and_agegender_npu_ok(self):
        assert build_facenet().npu_supported()
        assert build_agegendernet().npu_supported()

    def test_extended_models_plan_end_to_end(self, kirin):
        register_extended_models()
        planner = Hetero2PipePlanner(kirin)
        models = [
            get_model(n)
            for n in ("yolov4", "facenet", "agegendernet", "vit", "gpt2")
        ]
        report = planner.plan(models)
        report.plan.validate()
        result = execute_plan(report.plan)
        assert result.num_requests == 5


class TestTracing:
    def test_chrome_trace_structure(self, h2p_result):
        doc = json.loads(to_chrome_trace(h2p_result))
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(h2p_result.records)
        for event in slices:
            assert event["dur"] >= 0
            assert "slowdown" in event["args"]

    def test_chrome_trace_names(self, h2p_result):
        names = ["a", "b", "c", "d"]
        doc = json.loads(to_chrome_trace(h2p_result, names))
        slice_names = {
            e["name"].split(" / ")[0]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        assert slice_names <= set(names)

    def test_chrome_trace_name_mismatch(self, h2p_result):
        with pytest.raises(ValueError):
            to_chrome_trace(h2p_result, ["only-one"])

    def test_write_chrome_trace(self, h2p_result, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(h2p_result, str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_ascii_gantt_rows(self, h2p_result):
        chart = ascii_gantt(h2p_result, width=60)
        lines = chart.splitlines()
        processors = {r.processor for r in h2p_result.records}
        assert len(lines) == len(processors) + 2
        assert "legend" in lines[-1]

    def test_ascii_gantt_width_validation(self, h2p_result):
        with pytest.raises(ValueError):
            ascii_gantt(h2p_result, width=5)


class TestEnergyExperiment:
    def test_ext_energy_rows(self):
        from repro.experiments import ext_energy

        rows = ext_energy.run(num_combinations=3)
        by_scheme = {r.scheme: r for r in rows}
        assert set(by_scheme) == {"mnn", "pipe_it", "band", "h2p"}
        # H2P uses less energy per inference than serial CPU execution.
        assert (
            by_scheme["h2p"].mean_energy_per_inference_mj
            < by_scheme["mnn"].mean_energy_per_inference_mj
        )
        text = ext_energy.render(rows)
        assert "mJ_per_inference" in text
