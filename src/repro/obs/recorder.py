"""The process-global, swappable recorder and its fast-path helpers.

Instrumented code never talks to a recorder instance directly — it calls
the module-level helpers (:func:`span`, :func:`emit`, :func:`add`,
:func:`observe`, :func:`set_gauge`), each of which reads the global
recorder once and bails out on ``enabled`` immediately.  With the
default :class:`NullRecorder` installed, the cost of an instrumentation
site is one global load plus one attribute check — cheap enough to live
inside the planner's inner loops (the CI overhead guard enforces <5%
on the full-planner benchmark).

Swap recorders with :func:`set_recorder` or, scoped, with
:func:`use_recorder`::

    with use_recorder(InMemoryRecorder()) as rec:
        report = planner.plan(models)
    print(rec.metrics.render_text())

Event buffering (:meth:`Recorder.buffered` / :meth:`Recorder.commit`)
exists for the planner's candidate-order evaluation: provenance events
produced while scoring a *candidate* plan are held in a buffer and only
committed for the winning candidate, so the provenance log always
describes the plan that shipped.  Metrics deliberately bypass the
buffer — they count work performed, discarded candidates included.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .events import ProvenanceEvent
from .metrics import MetricsRegistry
from .spans import NULL_SPAN, NullSpan, Span


class Recorder:
    """Base recorder: the disabled/no-op behaviour.

    Subclasses flip :attr:`enabled` and override the record hooks.
    """

    #: The single flag every fast-path helper checks.
    enabled: bool = False

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    # -- hooks (no-ops here) ---------------------------------------------

    def start_span(self, name: str, attrs: Dict[str, object]) -> "Span | NullSpan":
        return NULL_SPAN

    def record_event(self, event: ProvenanceEvent) -> None:
        return None

    # -- event buffering -------------------------------------------------

    @contextmanager
    def buffered(self) -> Iterator[List[ProvenanceEvent]]:
        """Collect events into a buffer instead of the main log.

        Yields the buffer; pass it to :meth:`commit` to append its
        contents to the main log (typically after deciding the buffered
        work is the committed plan).  Nested buffers stack.
        """
        yield []

    def commit(self, buffer: List[ProvenanceEvent]) -> None:
        return None


class NullRecorder(Recorder):
    """The default: everything off, everything free."""


class InMemoryRecorder(Recorder):
    """Records spans, provenance events and metrics in process memory.

    Span nesting uses a per-thread stack, so concurrent planners on
    different threads each build their own trees under the shared root
    list.
    """

    enabled = True

    def __init__(self) -> None:
        super().__init__()
        self.spans: List[Span] = []  # completed + open root spans
        self.events: List[ProvenanceEvent] = []
        self._local = threading.local()
        self._sink_local = threading.local()

    # -- spans -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start_span(self, name: str, attrs: Dict[str, object]) -> Span:
        stack = self._stack()
        span = Span(name, attrs, on_close=self._close_span)
        if stack:
            stack[-1].children.append(span)
        else:
            self.spans.append(span)
        stack.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        stack = self._stack()
        # Pop through mis-nested closes defensively (a span closed out
        # of order takes its open descendants with it).
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.close()

    def all_spans(self) -> List[Span]:
        """Every recorded span, depth-first across all roots."""
        out: List[Span] = []
        for root in self.spans:
            out.extend(root.walk())
        return out

    # -- provenance ------------------------------------------------------

    def _sinks(self) -> List[List[ProvenanceEvent]]:
        sinks = getattr(self._sink_local, "sinks", None)
        if sinks is None:
            sinks = self._sink_local.sinks = []
        return sinks

    def record_event(self, event: ProvenanceEvent) -> None:
        sinks = self._sinks()
        if sinks:
            sinks[-1].append(event)
        else:
            self.events.append(event)

    @contextmanager
    def buffered(self) -> Iterator[List[ProvenanceEvent]]:
        buffer: List[ProvenanceEvent] = []
        sinks = self._sinks()
        sinks.append(buffer)
        try:
            yield buffer
        finally:
            sinks.pop()

    def commit(self, buffer: List[ProvenanceEvent]) -> None:
        for event in buffer:
            self.record_event(event)

    # -- convenience -----------------------------------------------------

    def events_of(self, kind: str) -> List[ProvenanceEvent]:
        return [e for e in self.events if e.kind == kind]

    def reset(self) -> None:
        self.spans.clear()
        self.events.clear()
        self.metrics.reset()


#: The process-global recorder; default disabled.
_RECORDER: Recorder = NullRecorder()


def get_recorder() -> Recorder:
    """The currently installed recorder."""
    return _RECORDER


def set_recorder(recorder: Recorder) -> Recorder:
    """Install a recorder process-wide; returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Scoped :func:`set_recorder`: restores the previous on exit."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


# -- fast-path helpers (the only API instrumented code calls) ------------


def span(name: str, **attrs: object) -> "Span | NullSpan":
    """Open a span under the current parent; no-op when disabled.

    Usage::

        with obs.span("plan.partition", model=name) as sp:
            ...
            sp.set(makespan_ms=result.makespan_ms)
    """
    rec = _RECORDER
    if not rec.enabled:
        return NULL_SPAN
    return rec.start_span(name, attrs)


def emit(event: ProvenanceEvent) -> None:
    """Record a provenance event; no-op when disabled."""
    rec = _RECORDER
    if rec.enabled:
        rec.record_event(event)


def add(name: str, amount: float = 1.0) -> None:
    """Increment a counter; no-op when disabled."""
    rec = _RECORDER
    if rec.enabled:
        rec.metrics.counter(name).add(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram sample; no-op when disabled."""
    rec = _RECORDER
    if rec.enabled:
        rec.metrics.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge; no-op when disabled."""
    rec = _RECORDER
    if rec.enabled:
        rec.metrics.gauge(name).set(value)


def enabled() -> bool:
    """Whether the installed recorder is recording."""
    return _RECORDER.enabled
