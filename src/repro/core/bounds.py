"""Theoretical lower bounds on multi-DNN pipeline makespan.

Used to report absolute optimality gaps — something neither exhaustive
search (which only dominates a chosen grid) nor the paper itself
provides.  Two classic bounds apply:

* **Work bound.**  Even with perfect overlap and zero contention, the
  total work has to fit on the silicon:
  ``makespan >= min over work assignments of aggregate finish``.  We
  use the fractional relaxation: each model contributes its *best-case*
  work (its minimum over processors of solo time, as if it could use
  that unit exclusively), and the aggregate must fit the K units, i.e.
  ``sum_i min_k t_{ik} / K``.  A stronger per-processor form also
  holds: the fastest unit alone cannot beat the sum of what is placed
  on it, bounded below by letting every model pick its best processor
  and dividing each unit's load by one.
* **Chain bound.**  A single request cannot finish faster than its own
  best single-processor solo time (slicing adds copies; the pipeline
  adds waiting), so ``makespan >= max_i min_k t_{ik}``.

Both ignore contention, copies and precedence, so they are true lower
bounds on anything the simulator can produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.profiler import SocProfiler


@dataclass(frozen=True)
class MakespanBounds:
    """Lower bounds for one workload on one SoC."""

    work_bound_ms: float
    chain_bound_ms: float

    @property
    def lower_bound_ms(self) -> float:
        return max(self.work_bound_ms, self.chain_bound_ms)

    def gap(self, achieved_ms: float) -> float:
        """Relative distance of an achieved makespan above the bound.

        Raises:
            ValueError: if the achieved makespan beats the bound (which
                would indicate a bug in either the bound or the
                simulator).
        """
        bound = self.lower_bound_ms
        if achieved_ms < bound - 1e-6:
            raise ValueError(
                f"achieved {achieved_ms:.3f} ms beats the lower bound "
                f"{bound:.3f} ms — inconsistent models"
            )
        if bound <= 0:
            return 0.0
        return achieved_ms / bound - 1.0


def makespan_lower_bounds(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: Optional[SocProfiler] = None,
) -> MakespanBounds:
    """Compute the work and chain bounds for a workload.

    Raises:
        ValueError: for an empty workload or a model no processor runs.
    """
    if not models:
        raise ValueError("workload must be non-empty")
    profiler = profiler or SocProfiler(soc)

    best_times: List[float] = []
    for model in models:
        profile = profiler.profile(model)
        candidates = [
            profile.whole_model_ms(proc)
            for proc in soc.processors
            if profile.feasible(proc, 0, model.num_layers - 1)
        ]
        if not candidates:
            raise ValueError(f"{model.name!r} cannot run on any processor")
        best_times.append(min(candidates))

    work_bound = sum(best_times) / soc.num_processors
    chain_bound = max(best_times)
    return MakespanBounds(
        work_bound_ms=work_bound, chain_bound_ms=chain_bound
    )


def optimality_report(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    achieved_ms: float,
    profiler: Optional[SocProfiler] = None,
) -> Dict[str, float]:
    """Bundle the bounds and the achieved gap for reporting."""
    bounds = makespan_lower_bounds(soc, models, profiler)
    return {
        "work_bound_ms": bounds.work_bound_ms,
        "chain_bound_ms": bounds.chain_bound_ms,
        "lower_bound_ms": bounds.lower_bound_ms,
        "achieved_ms": achieved_ms,
        "gap": bounds.gap(achieved_ms),
    }
