#!/usr/bin/env python3
"""Quickstart: plan and simulate a multi-DNN pipeline in ~20 lines.

Plans three concurrent inference requests on a simulated Kirin 990 with
the full Hetero2Pipe planner, executes the plan on the contention-aware
simulator, and compares against serial CPU execution.

Run:
    python examples/quickstart.py
"""

from repro import Hetero2PipePlanner, execute_plan, get_model, get_soc
from repro.baselines import plan_mnn_serial


def main() -> None:
    soc = get_soc("kirin990")
    models = [get_model(name) for name in ("yolov4", "bert", "squeezenet")]

    # Plan: horizontal DP partition -> contention mitigation -> work
    # stealing (one line for the user).
    planner = Hetero2PipePlanner(soc)
    report = planner.plan(models)

    print(f"planned on {soc.name} with stages "
          f"{[p.name for p in report.plan.processors]}")
    for i, assignment in enumerate(report.plan.assignments):
        stages = [
            f"{report.plan.processors[k].name}[{s[0]}..{s[1]}]"
            for k, s in enumerate(assignment.slices)
            if s is not None
        ]
        print(f"  request {i} ({assignment.model_name}): {' -> '.join(stages)}")

    # Execute on the event-driven simulator (dynamic co-execution
    # slowdown, Constraint-6 memory gating).
    result = execute_plan(report.plan)
    serial = execute_plan(plan_mnn_serial(soc, models))

    print(f"\nHetero2Pipe makespan : {result.makespan_ms:8.1f} ms "
          f"({result.throughput_per_s:.1f} inferences/s)")
    print(f"serial CPU makespan  : {serial.makespan_ms:8.1f} ms")
    print(f"speedup              : {serial.makespan_ms / result.makespan_ms:8.2f}x")


if __name__ == "__main__":
    main()
