"""Random multi-DNN workload generation (Fig. 7 / Fig. 8 inputs).

The paper evaluates "samples of 100 random model combinations" drawn
from the ten-model zoo.  This module reproduces that workload source
with explicit seeding so every experiment is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..models.ir import ModelGraph
from ..models.zoo import MODEL_NAMES, get_model


@dataclass(frozen=True)
class WorkloadSpec:
    """One sampled request sequence."""

    index: int
    model_names: Tuple[str, ...]

    def models(self) -> List[ModelGraph]:
        return [get_model(name) for name in self.model_names]

    def __len__(self) -> int:
        return len(self.model_names)


def sample_combinations(
    count: int = 100,
    min_size: int = 3,
    max_size: int = 8,
    pool: Sequence[str] = MODEL_NAMES,
    seed: int = 2025,
    with_replacement: bool = True,
) -> List[WorkloadSpec]:
    """Sample random model combinations.

    Args:
        count: Number of combinations (the paper uses 100).
        min_size: Smallest request-sequence length.
        max_size: Largest request-sequence length.
        pool: Candidate model names.
        seed: RNG seed.
        with_replacement: Allow repeated models in one sequence (real
            request streams repeat popular models).

    Returns:
        ``count`` :class:`WorkloadSpec` objects.

    Raises:
        ValueError: on invalid sizes or an empty pool.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not pool:
        raise ValueError("model pool must be non-empty")
    if not 1 <= min_size <= max_size:
        raise ValueError("need 1 <= min_size <= max_size")
    if not with_replacement and max_size > len(pool):
        raise ValueError("max_size exceeds pool for sampling w/o replacement")

    rng = np.random.default_rng(seed)
    specs: List[WorkloadSpec] = []
    for index in range(count):
        size = int(rng.integers(min_size, max_size + 1))
        names = rng.choice(
            np.asarray(pool, dtype=object), size=size, replace=with_replacement
        )
        specs.append(WorkloadSpec(index=index, model_names=tuple(names)))
    return specs


def arrival_times_ms(
    num_requests: int, interval_ms: float, jitter: float = 0.0, seed: int = 0
) -> List[float]:
    """Deterministic (optionally jittered) arrival schedule.

    Used by the queueing experiments (Fig. 2a): requests arrive every
    ``interval_ms`` with uniform jitter of ``± jitter * interval_ms``.

    Raises:
        ValueError: on non-positive interval or jitter outside [0, 1).
    """
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if interval_ms <= 0:
        raise ValueError("interval must be positive")
    if not 0.0 <= jitter < 1.0:
        raise ValueError("jitter must be in [0, 1)")
    rng = np.random.default_rng(seed)
    times = []
    for i in range(num_requests):
        base = i * interval_ms
        if jitter:
            base += float(rng.uniform(-jitter, jitter)) * interval_ms
        times.append(max(0.0, base))
    return sorted(times)
