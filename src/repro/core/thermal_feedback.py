"""Thermal-feedback planning (extension of Appendix B).

The paper sidesteps thermal transients by profiling at the fully-loaded
steady state — which over-penalizes processors the plan barely uses.
This extension closes the loop: plan with the current thermal scales,
simulate, read each processor's *actual* utilization, recompute its
sustained-frequency scale from the thermal model, re-profile and
re-plan.  The fixpoint typically lands in two or three iterations and
recovers throughput on lightly-loaded units (e.g. a CPU Big cluster
that only hosts one short stage does not throttle as if saturated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.soc import SocSpec
from ..hardware.thermal import sustained_frequency_scale
from ..models.ir import ModelGraph
from ..profiling.profiler import SocProfiler
from ..runtime.executor import ExecutionResult, execute_plan
from .planner import Hetero2PipePlanner, PlannerConfig, PlanReport


@dataclass(frozen=True)
class ThermalIteration:
    """One fixpoint step: the scales used and the resulting makespan."""

    scales: Dict[str, float]
    makespan_ms: float


@dataclass
class ThermalFeedbackResult:
    """Final plan plus the fixpoint trajectory."""

    report: PlanReport
    result: ExecutionResult
    iterations: List[ThermalIteration]

    @property
    def final_scales(self) -> Dict[str, float]:
        return self.iterations[-1].scales

    @property
    def converged(self) -> bool:
        if len(self.iterations) < 2:
            return False
        last, prev = self.iterations[-1], self.iterations[-2]
        return all(
            abs(last.scales[name] - prev.scales[name]) < 0.02
            for name in last.scales
        )


def plan_with_thermal_feedback(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    config: Optional[PlannerConfig] = None,
    max_iterations: int = 3,
) -> ThermalFeedbackResult:
    """Iterate plan -> simulate -> utilization -> thermal scales.

    Args:
        soc: Target platform.
        models: The request sequence.
        config: Planner switches.
        max_iterations: Fixpoint iteration cap.

    Returns:
        The :class:`ThermalFeedbackResult` with the final plan executed
        under its own utilization-consistent thermal scales.

    Raises:
        ValueError: on empty input or non-positive iteration cap.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    if max_iterations < 1:
        raise ValueError("max_iterations must be >= 1")

    # Start from the paper's worst-case assumption: full utilization.
    scales: Dict[str, float] = {
        p.name: sustained_frequency_scale(p.kind, 1.0) for p in soc.processors
    }
    iterations: List[ThermalIteration] = []
    report: Optional[PlanReport] = None
    result: Optional[ExecutionResult] = None

    for _ in range(max_iterations):
        profiler = SocProfiler(soc, thermal_scales=scales)
        planner = Hetero2PipePlanner(soc, config)
        planner.profiler = profiler  # plan against the scaled profiles
        report = planner.plan(list(models))
        result = execute_plan(report.plan)
        iterations.append(
            ThermalIteration(scales=dict(scales), makespan_ms=result.makespan_ms)
        )
        new_scales = {
            p.name: sustained_frequency_scale(
                p.kind, min(1.0, result.utilization(p.name))
            )
            for p in soc.processors
        }
        if all(
            abs(new_scales[name] - scales[name]) < 0.02 for name in scales
        ):
            scales = new_scales
            break
        scales = new_scales

    assert report is not None and result is not None
    return ThermalFeedbackResult(
        report=report, result=result, iterations=iterations
    )
