"""FLOP and byte-count calculators for common DNN operators.

These helpers compute the cost metadata attached to each :class:`~repro.models.ir.Layer`.
Counts follow the usual conventions (a multiply-accumulate counts as two
FLOPs) and assume FP16 storage (2 bytes per element), matching the paper's
mobile-inference setting where MNN runs FP16 on the CPU/GPU/NPU.
"""

from __future__ import annotations

import math
from typing import Tuple

#: Bytes per tensor element (FP16 inference as in the paper's evaluation).
BYTES_PER_ELEMENT = 2


def tensor_bytes(*dims: int) -> float:
    """Size in bytes of a dense FP16 tensor with the given dimensions."""
    if any(d < 0 for d in dims):
        raise ValueError(f"tensor dimensions must be non-negative: {dims}")
    size = BYTES_PER_ELEMENT
    for d in dims:
        size *= d
    return float(size)


def conv2d_flops(
    in_channels: int,
    out_channels: int,
    kernel: int,
    out_h: int,
    out_w: int,
    groups: int = 1,
) -> float:
    """FLOPs of a 2-D convolution (2 * MACs)."""
    if groups < 1:
        raise ValueError("groups must be >= 1")
    macs = (in_channels // groups) * out_channels * kernel * kernel * out_h * out_w
    return 2.0 * macs


def conv2d_weight_bytes(
    in_channels: int, out_channels: int, kernel: int, groups: int = 1
) -> float:
    """Parameter bytes of a conv layer (weights + bias)."""
    weights = (in_channels // groups) * out_channels * kernel * kernel
    return tensor_bytes(weights) + tensor_bytes(out_channels)


def depthwise_conv_flops(channels: int, kernel: int, out_h: int, out_w: int) -> float:
    """FLOPs of a depthwise convolution (one filter per channel)."""
    return 2.0 * channels * kernel * kernel * out_h * out_w


def linear_flops(in_features: int, out_features: int, tokens: int = 1) -> float:
    """FLOPs of a dense / fully-connected layer applied to ``tokens`` rows."""
    return 2.0 * in_features * out_features * tokens


def linear_weight_bytes(in_features: int, out_features: int) -> float:
    return tensor_bytes(in_features, out_features) + tensor_bytes(out_features)


def attention_flops(seq_len: int, hidden: int, heads: int) -> float:
    """FLOPs of one multi-head self-attention block (projections + scores).

    Q/K/V/output projections are ``4 * seq * hidden^2`` MACs; the score and
    context matmuls add ``2 * seq^2 * hidden`` MACs.  ``heads`` does not
    change the FLOP count (it reshapes the same work) but is kept in the
    signature for clarity at call sites.
    """
    if heads < 1:
        raise ValueError("heads must be >= 1")
    proj_macs = 4 * seq_len * hidden * hidden
    score_macs = 2 * seq_len * seq_len * hidden
    return 2.0 * (proj_macs + score_macs)


def attention_weight_bytes(hidden: int) -> float:
    """Parameter bytes of the four attention projection matrices."""
    return 4 * (tensor_bytes(hidden, hidden) + tensor_bytes(hidden))


def ffn_flops(seq_len: int, hidden: int, intermediate: int) -> float:
    """FLOPs of a Transformer feed-forward block (two linear layers)."""
    return 2.0 * seq_len * (hidden * intermediate + intermediate * hidden)


def ffn_weight_bytes(hidden: int, intermediate: int) -> float:
    return (
        tensor_bytes(hidden, intermediate)
        + tensor_bytes(intermediate)
        + tensor_bytes(intermediate, hidden)
        + tensor_bytes(hidden)
    )


def pool_flops(channels: int, out_h: int, out_w: int, kernel: int) -> float:
    """FLOPs of a pooling layer (one op per element in the window)."""
    return float(channels * out_h * out_w * kernel * kernel)


def elementwise_flops(*dims: int) -> float:
    """FLOPs of an elementwise op (ReLU, add, ...) over a tensor."""
    count = 1.0
    for d in dims:
        count *= d
    return count


def conv_out_dim(in_dim: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output dimension of a convolution/pooling window."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    return (in_dim + 2 * padding - kernel) // stride + 1


def layer_norm_flops(seq_len: int, hidden: int) -> float:
    """FLOPs of LayerNorm: ~5 ops per element (mean, var, scale, shift)."""
    return 5.0 * seq_len * hidden


def softmax_flops(*dims: int) -> float:
    """FLOPs of softmax: ~3 ops per element (exp, sum, divide)."""
    return 3.0 * elementwise_flops(*dims)
