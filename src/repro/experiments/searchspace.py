"""Appendix A: the search space of processor pipelines (Eq. 12-14).

Counts (1) the feasible pipeline configurations of a typical consumer
SoC — an eight-core Big.LITTLE CPU whose clusters may be subdivided into
per-core sub-cluster stages, plus an indivisible GPU and NPU — and
(2) the number of distinct model split points once layer boundaries are
chosen too.

The paper reports 449 feasible pipelines for P between 2 and 10 and over
3.6 B split combinations for a 28-layer MobileNetV2.  We enumerate the
space directly from first principles (compositions of the cluster cores
into ordered sub-cluster stages, with the GPU and NPU optionally
present); Eq. 12's printed form appears garbled (like Algorithm 1's
listing), so the direct enumeration is authoritative here and lands
within ~2 % of the paper's count, with the residual attributable to
boundary conventions (whether single-stage configurations count).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Dict, List, Optional

from .common import format_table


def compositions(cores: int, stages: int) -> int:
    """Ways to split ``cores`` identical-order cores into ``stages``
    ordered, non-empty contiguous groups (stars and bars)."""
    if stages == 0:
        return 1 if cores == 0 else 0
    if cores < stages:
        return 0
    return comb(cores - 1, stages - 1)


def pipeline_count(
    big_cores: int = 4,
    small_cores: int = 4,
    has_gpu: bool = True,
    has_npu: bool = True,
    min_stages: int = 2,
    max_stages: int = 10,
) -> Dict[int, int]:
    """Feasible pipeline configurations per total stage count P.

    A configuration chooses how many sub-cluster stages each CPU cluster
    contributes (possibly zero; each cluster subdivision is a
    composition of its cores) and whether the GPU / NPU participate.
    """
    counts: Dict[int, int] = {}
    gpu_options = (0, 1) if has_gpu else (0,)
    npu_options = (0, 1) if has_npu else (0,)
    for p_big in range(0, big_cores + 1):
        ways_big = compositions(big_cores, p_big) if p_big else 1
        for p_small in range(0, small_cores + 1):
            ways_small = compositions(small_cores, p_small) if p_small else 1
            for gpu in gpu_options:
                for npu in npu_options:
                    total = p_big + p_small + gpu + npu
                    if not min_stages <= total <= max_stages:
                        continue
                    counts[total] = counts.get(total, 0) + ways_big * ways_small
    return counts


def total_pipelines(**kwargs) -> int:
    """Total feasible pipelines (the paper's 449-scale count)."""
    return sum(pipeline_count(**kwargs).values())


def pipeline_count_eq12(
    big_cores: int = 4,
    small_cores: int = 4,
    max_stages: int = 10,
) -> int:
    """Eq. 12 evaluated literally, for comparison with the enumeration.

    The printed equation reserves two stages for the GPU and NPU
    (``P' = P - 2``) and, per CPU-stage split ``P_b``, counts
    ``4 D_b D_s + 3 D_b + 3 D_s`` configurations plus one.  As printed
    it neither matches the direct enumeration nor exactly reproduces the
    paper's 449 (the listing appears typeset-mangled, like Algorithm 1);
    we keep it for the record.
    """
    total = 0
    for stages in range(2, max_stages + 1):
        cpu_stages = stages - 2
        s_p = 1
        for p_b in range(1, min(big_cores, cpu_stages - 1) + 1):
            p_s = cpu_stages - p_b
            if not 1 <= p_s <= small_cores:
                continue
            d_b = comb(big_cores - 1, p_b - 1)
            d_s = comb(small_cores - 1, p_s - 1)
            s_p += 4 * d_b * d_s + 3 * d_b + 3 * d_s
        total += s_p
    return total


def split_point_count(
    num_layers: int,
    big_cores: int = 4,
    small_cores: int = 4,
    min_stages: int = 2,
    max_stages: int = 10,
) -> int:
    """Distinct (pipeline, layer-cut) combinations for one model (Eq. 14).

    Each P-stage pipeline combines with ``C(n - 1, P - 1)`` layer cut
    choices.

    Raises:
        ValueError: for models with fewer than 2 layers.
    """
    if num_layers < 2:
        raise ValueError("need at least two layers to split")
    per_stage = pipeline_count(
        big_cores=big_cores,
        small_cores=small_cores,
        min_stages=min_stages,
        max_stages=max_stages,
    )
    total = 0
    for stages, pipelines in per_stage.items():
        if stages - 1 <= num_layers - 1:
            total += comb(num_layers - 1, stages - 1) * pipelines
    return total


@dataclass(frozen=True)
class SearchSpaceSummary:
    """Headline counts of Appendix A."""

    pipelines_total: int
    pipelines_eq12: int
    pipelines_by_depth: Dict[int, int]
    mobilenet_splits: int


def run(mobilenet_layers: int = 28) -> SearchSpaceSummary:
    by_depth = pipeline_count()
    return SearchSpaceSummary(
        pipelines_total=sum(by_depth.values()),
        pipelines_eq12=pipeline_count_eq12(),
        pipelines_by_depth=by_depth,
        mobilenet_splits=split_point_count(mobilenet_layers),
    )


def render(summary: SearchSpaceSummary) -> str:
    headers = ["stages_P", "pipelines"]
    body = [
        [p, summary.pipelines_by_depth[p]]
        for p in sorted(summary.pipelines_by_depth)
    ]
    table = format_table(headers, body)
    return (
        f"{table}\n"
        f"total feasible pipelines (direct enumeration): "
        f"{summary.pipelines_total}\n"
        f"total feasible pipelines (Eq. 12 as printed): "
        f"{summary.pipelines_eq12}   (paper: 449)\n"
        f"MobileNetV2 (28-layer) split combinations: "
        f"{summary.mobilenet_splits:,} (paper: ~3.6 B)"
    )


def main() -> str:
    return render(run())


if __name__ == "__main__":
    print(main())
