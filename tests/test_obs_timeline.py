"""Timeline fold tests: fake-clock exactness and real-engine agreement.

The :class:`~repro.obs.timeline.TimelineAggregator` is a pure fold over
the engine's event stream, so everything it derives can be checked two
ways: against a hand-integrated fake-clock stream where every integral
is known in closed form, and against the engine's own accounting
(``processor_busy_ms``) on a real run.  The Little's-law self-check is
exercised in both directions — exact on a consistent stream, and firing
a :class:`~repro.obs.events.TimelineDiagnostic` through the provenance
recorder on a corrupted one.
"""

import pytest

from repro import obs
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs.events import event_from_dict
from repro.obs.timeline import TimelineAggregator
from repro.runtime.arrivals import PoissonArrivals
from repro.runtime.engine import DiscreteEventEngine, Event
from repro.runtime.executor import plan_to_chains, replicate_chains

KIRIN = get_soc("kirin990")


def ev(time_ms, kind, request=None, processor=None, detail=""):
    return Event(
        time_ms=time_ms,
        kind=kind,
        request=request,
        processor=processor,
        detail=detail,
    )


#: A two-request hand trace: request 0 runs cpu [0,4] then gpu [4,9]
#: (two stages); request 1 arrives at 5, waits for the cpu until 9,
#: runs [9,12].  Every integral below is computed by hand from this.
HAND_STREAM = [
    ev(0.0, "arrival", request=0),
    ev(0.0, "task_ready", request=0, processor="cpu"),
    ev(4.0, "departure", request=0, processor="cpu"),
    ev(4.0, "task_ready", request=0, processor="gpu"),
    ev(5.0, "arrival", request=1),
    ev(9.0, "departure", request=0, processor="gpu"),
    ev(9.0, "task_ready", request=1, processor="cpu"),
    ev(12.0, "departure", request=1, processor="cpu"),
]


def folded_hand_stream(window_ms=10.0):
    agg = TimelineAggregator(["cpu", "gpu"], [2, 1], window_ms)
    windows = agg.observe_many(HAND_STREAM)
    windows.extend(agg.finish(20.0))
    return agg, windows


class TestFakeClockFold:
    def test_busy_time_integrates_exactly(self):
        agg, _ = folded_hand_stream()
        assert agg.busy_ms("cpu") == 7.0  # [0,4] + [9,12]
        assert agg.busy_ms("gpu") == 5.0  # [4,9]
        assert agg.busy_ms("npu") == 0.0  # never seen

    def test_windowed_utilization_reconstructs_busy_time(self):
        agg, windows = folded_hand_stream()
        for proc in ("cpu", "gpu"):
            integrated = sum(
                w.utilization_frac[proc] * (w.end_ms - w.start_ms)
                for w in windows
            )
            assert integrated == pytest.approx(agg.busy_ms(proc), abs=1e-12)

    def test_window_rows_match_hand_integrals(self):
        _, windows = folded_hand_stream()
        assert [w.window for w in windows] == [0, 1]
        w0, w1 = windows
        assert (w0.start_ms, w0.end_ms) == (0.0, 10.0)
        assert (w1.start_ms, w1.end_ms) == (10.0, 20.0)
        # Window 0: request 1 waits on the cpu during [5,9] only.
        assert w0.arrivals == 2 and w0.completions == 1
        assert w0.utilization_frac == {"cpu": 0.5, "gpu": 0.5}
        assert w0.mean_queue_depth == pytest.approx(0.4)  # 4 ms / 10 ms
        assert w0.queue_depth_end == 0
        assert w0.mean_in_system == pytest.approx(1.4)  # 14 ms / 10 ms
        assert w0.backlog_age_ms == pytest.approx(5.0)  # req 1, arrived at 5
        assert w0.throughput_per_s == pytest.approx(100.0)
        assert w0.p50_ms == pytest.approx(9.0, rel=0.01)
        # Window 1: only request 1's tail [10,12], then idle to 20.
        assert w1.arrivals == 0 and w1.completions == 1
        assert w1.utilization_frac == {"cpu": 0.2, "gpu": 0.0}
        assert w1.mean_in_system == pytest.approx(0.2)
        assert w1.backlog_age_ms is None
        assert w1.p50_ms == pytest.approx(7.0, rel=0.01)

    def test_littles_law_exact_on_consistent_stream(self):
        agg, _ = folded_hand_stream()
        check = agg.littles_law()
        assert check.ok
        # L = (14 + 2) / 20; λW = (2/20) * ((9 + 7)/2) — both 0.8.
        assert check.observed_l == pytest.approx(0.8)
        assert check.expected_l == pytest.approx(0.8)
        assert check.relative_gap_frac <= 1e-12

    def test_latency_sketch_tracks_completions(self):
        agg, _ = folded_hand_stream()
        assert agg.latency_sketch.count == 2
        assert agg.latency_sketch.low == pytest.approx(7.0)
        assert agg.latency_sketch.high == pytest.approx(9.0)

    def test_deadline_drop_vs_cancellation_split(self):
        agg = TimelineAggregator(["cpu"], [1, 1, 1], 100.0)
        windows = agg.observe_many(
            [
                ev(0.0, "arrival", request=0),
                ev(1.0, "arrival", request=1),
                ev(2.0, "arrival", request=2),
                ev(3.0, "cancellation", request=0, detail="deadline"),
                ev(4.0, "cancellation", request=1, detail="user"),
            ]
        )
        windows.extend(agg.finish(10.0))
        (w,) = windows
        assert w.drops == 1
        assert w.cancellations == 1
        assert w.completions == 0
        assert w.p50_ms is None  # nothing completed
        assert agg.queue_depth() == 1  # request 2 still waiting

    def test_rate_change_and_preemption_carry_no_occupancy(self):
        agg = TimelineAggregator(["cpu"], [1], 100.0)
        agg.observe_many(
            [
                ev(0.0, "arrival", request=0),
                ev(0.0, "task_ready", request=0, processor="cpu"),
                ev(2.0, "rate_change", processor="cpu", detail="x0.5"),
                ev(5.0, "preemption", request=0, processor="cpu"),
            ]
        )
        agg.finish(10.0)
        assert agg.busy_ms("cpu") == 5.0  # busy [0,5], idle after preempt

    def test_interarrival_cv_periodic_vs_none(self):
        agg = TimelineAggregator(["cpu"], [1] * 4, 1000.0)
        windows = agg.observe_many(
            [ev(10.0 * i, "arrival", request=i) for i in range(4)]
        )
        windows.extend(agg.finish(40.0))
        assert windows[-1].interarrival_cv == pytest.approx(0.0)  # periodic
        single = TimelineAggregator(["cpu"], [1], 1000.0)
        rows = single.observe_many([ev(0.0, "arrival", request=0)])
        rows.extend(single.finish(1.0))
        assert rows[-1].interarrival_cv is None  # fewer than two gaps

    def test_window_boundaries_tile_the_horizon(self):
        agg, windows = folded_hand_stream(window_ms=3.0)
        assert windows[0].start_ms == 0.0
        assert windows[-1].end_ms == 20.0
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start_ms == prev.end_ms
            assert cur.window == prev.window + 1


class TestFoldContract:
    def test_time_backwards_raises(self):
        agg = TimelineAggregator(["cpu"], [1], 10.0)
        agg.observe(ev(5.0, "arrival", request=0))
        with pytest.raises(ValueError):
            agg.observe(ev(1.0, "departure", request=0, processor="cpu"))

    def test_observe_after_finish_raises(self):
        agg = TimelineAggregator(["cpu"], [1], 10.0)
        agg.finish(1.0)
        with pytest.raises(RuntimeError):
            agg.observe(ev(2.0, "arrival", request=0))
        assert agg.finish(2.0) == []  # idempotent

    def test_validation(self):
        with pytest.raises(ValueError):
            TimelineAggregator(["cpu"], [1], 0.0)
        with pytest.raises(ValueError):
            TimelineAggregator([], [1], 10.0)

    def test_empty_run_emits_one_zero_window(self):
        agg = TimelineAggregator(["cpu"], [], 10.0)
        (w,) = agg.finish(0.0)
        assert w.arrivals == 0 and w.completions == 0
        assert w.throughput_per_s == 0.0
        assert agg.littles_law().ok

    def test_window_stats_to_dict_is_json_shaped(self):
        _, windows = folded_hand_stream()
        doc = windows[0].to_dict()
        assert doc["window"] == 0
        assert list(doc["utilization_frac"]) == sorted(
            doc["utilization_frac"]
        )

    def test_littles_law_violation_emits_diagnostic(self):
        # A duplicate arrival id corrupts the fold's sojourn accounting
        # (arrivals_total counts 2, occupancy only ever sees 1), so the
        # identity must break and the diagnostic must replay.
        agg = TimelineAggregator(["cpu"], [1], 1000.0)
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            agg.observe(ev(0.0, "arrival", request=0))
            agg.observe(ev(10.0, "arrival", request=0))
            agg.finish(100.0)
            check = agg.littles_law()
        assert not check.ok
        diagnostics = [
            e for e in rec.events if e.kind == "timeline_diagnostic"
        ]
        assert len(diagnostics) == 1
        diag = diagnostics[0]
        assert diag.check == "littles_law"
        assert event_from_dict(diag.to_dict()) == diag

    def test_no_diagnostic_when_recorder_disabled(self):
        agg = TimelineAggregator(["cpu"], [1], 1000.0)
        agg.observe(ev(0.0, "arrival", request=0))
        agg.observe(ev(10.0, "arrival", request=0))
        agg.finish(100.0)
        assert not agg.littles_law().ok  # check still reports, no emit


class TestEngineAgreement:
    def _fold_run(self, arrivals=None, deadline_ms=None):
        models = [get_model(n) for n in ("squeezenet", "mobilenetv2")]
        report = Hetero2PipePlanner(KIRIN).plan(models)
        chains = replicate_chains(plan_to_chains(report.plan), 3)
        engine = DiscreteEventEngine(
            KIRIN,
            chains,
            arrivals=arrivals,
            deadline_ms=deadline_ms,
            keep_events=True,
            record=False,
        )
        agg = TimelineAggregator(
            [p.name for p in KIRIN.processors],
            [len(c) for c in chains],
            window_ms=20.0,
        )
        cursor = 0
        while engine.step():
            log = engine.event_log
            agg.observe_many(log[cursor:])
            cursor = len(log)
        agg.observe_many(engine.event_log[cursor:])
        result = engine.result()
        agg.finish(result.makespan_ms)
        return agg, result

    def test_busy_time_matches_engine_accounting(self):
        agg, result = self._fold_run()
        for proc, busy in result.processor_busy_ms.items():
            assert agg.busy_ms(proc) == pytest.approx(busy, abs=1e-9)

    def test_completions_and_littles_law_on_real_run(self):
        agg, result = self._fold_run(
            arrivals=PoissonArrivals(interval_ms=40.0, seed=3)
        )
        assert agg.latency_sketch.count == result.num_completed
        check = agg.littles_law()
        assert check.ok, check

    def test_all_dropped_run_folds_clean(self):
        # deadline 0 cancels every request before any stage starts.
        agg, result = self._fold_run(deadline_ms=0.0)
        assert result.num_completed == 0
        assert agg.latency_sketch.count == 0
        assert agg.queue_depth() == 0  # drops removed everything
        assert agg.littles_law().ok
