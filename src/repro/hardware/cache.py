"""Explicit cache-hierarchy model (substrate behind Observation 2).

The latency model's traffic-amplification heuristic
(:func:`repro.profiling.latency.traffic_amplification`) compresses the
cache behaviour of tiled GEMM into a square-root law.  This module
provides the first-principles version: a two-level hierarchy with
working-set-based hit-rate estimation, from which the same amplification
factor can be *derived* — and validated against the heuristic in tests.

The model follows the classic analytical treatment: a kernel touching a
working set ``W`` through a cache of capacity ``C`` with ``r`` logical
reuses of each operand achieves

    hit_rate ~= 1                      if W <= C      (everything fits)
    hit_rate ~= 1 - (1 - C/W) * (r-1)/r   otherwise   (reuse beyond the
                                                       resident fraction
                                                       misses)

so DRAM traffic is ``W * (1 + (r - 1) * miss_component)`` — linear in
the overflow for streaming kernels, tempered by tiling for GEMM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class CacheLevel:
    """One cache level: capacity, line size and hit latency."""

    name: str
    capacity_bytes: float
    line_bytes: int = 64
    hit_latency_ns: float = 5.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.line_bytes <= 0:
            raise ValueError(f"{self.name}: line size must be positive")


@dataclass(frozen=True)
class CacheHierarchy:
    """A two-level private/shared hierarchy plus DRAM."""

    l1: CacheLevel
    l2: CacheLevel
    dram_latency_ns: float = 100.0

    def __post_init__(self) -> None:
        if self.l2.capacity_bytes < self.l1.capacity_bytes:
            raise ValueError("L2 must be at least as large as L1")


def make_big_core_hierarchy(l2_bytes: float = 1.0e6) -> CacheHierarchy:
    """A Cortex-A76/A78 class hierarchy (64 KiB L1, ~1 MiB L2)."""
    return CacheHierarchy(
        l1=CacheLevel("L1", 64e3, hit_latency_ns=1.2),
        l2=CacheLevel("L2", l2_bytes, hit_latency_ns=9.0),
    )


def resident_fraction(working_set_bytes: float, capacity_bytes: float) -> float:
    """Fraction of the working set resident in a cache of given size."""
    if working_set_bytes <= 0:
        return 1.0
    return min(1.0, capacity_bytes / working_set_bytes)


def reuse_hit_rate(
    working_set_bytes: float, capacity_bytes: float, reuses: float
) -> float:
    """Hit rate of a kernel re-reading its working set ``reuses`` times.

    The first pass always misses (cold); subsequent passes hit on the
    resident fraction.  With ``reuses`` total passes, the overall rate
    is the resident fraction weighted by the warm passes.

    Raises:
        ValueError: for non-positive reuse counts.
    """
    if reuses < 1:
        raise ValueError("reuses must be >= 1")
    if working_set_bytes <= 0:
        return 1.0
    resident = resident_fraction(working_set_bytes, capacity_bytes)
    warm_passes = reuses - 1.0
    return (warm_passes * resident) / reuses


def gemm_reuse_count(working_set_bytes: float, capacity_bytes: float) -> float:
    """Logical operand reuses of a tiled GEMM with the given footprint.

    A GEMM over matrices of total size ``W`` tiled for a cache ``C``
    re-reads each operand ``~sqrt(W / C)`` times once it overflows —
    the classic I/O lower bound (Hong-Kung).  Fits-in-cache GEMMs read
    each operand once.
    """
    if working_set_bytes <= capacity_bytes:
        return 1.0
    return math.sqrt(working_set_bytes / capacity_bytes)


def dram_traffic_bytes(
    working_set_bytes: float,
    hierarchy: CacheHierarchy,
    reuses: float = 1.0,
) -> float:
    """DRAM bytes moved by a kernel with the given reuse behaviour.

    Each of the ``reuses`` passes over the working set misses the L2 on
    the non-resident fraction; the first pass is fully cold.

    Raises:
        ValueError: for negative working sets or reuses < 1.
    """
    if working_set_bytes < 0:
        raise ValueError("working set must be >= 0")
    if reuses < 1:
        raise ValueError("reuses must be >= 1")
    hit = reuse_hit_rate(working_set_bytes, hierarchy.l2.capacity_bytes, reuses)
    total_accessed = working_set_bytes * reuses
    return total_accessed * (1.0 - hit)


def gemm_amplification(
    working_set_bytes: float, hierarchy: CacheHierarchy
) -> float:
    """Traffic amplification of a GEMM vs a single cold pass.

    This is the first-principles counterpart of the latency model's
    ``sqrt(W / L2)`` heuristic: amplification = DRAM traffic divided by
    the compulsory (one-pass) traffic.
    """
    if working_set_bytes <= 0:
        return 1.0
    reuses = gemm_reuse_count(
        working_set_bytes, hierarchy.l2.capacity_bytes
    )
    traffic = dram_traffic_bytes(working_set_bytes, hierarchy, reuses)
    return max(1.0, traffic / working_set_bytes)


def average_access_latency_ns(
    working_set_bytes: float, hierarchy: CacheHierarchy
) -> float:
    """Mean access latency given residency in L1/L2/DRAM."""
    in_l1 = resident_fraction(working_set_bytes, hierarchy.l1.capacity_bytes)
    in_l2 = resident_fraction(working_set_bytes, hierarchy.l2.capacity_bytes)
    l2_only = max(0.0, in_l2 - in_l1)
    dram = max(0.0, 1.0 - in_l2)
    return (
        in_l1 * hierarchy.l1.hit_latency_ns
        + l2_only * hierarchy.l2.hit_latency_ns
        + dram * hierarchy.dram_latency_ns
    )
