"""Forward dataflow solving and the unit abstract interpretation.

:func:`run_forward` is a standard worklist fixpoint over a
:class:`~repro.lint.flow.cfg.CFG`: block in-states are joined over all
predecessors, pushed through a transfer function, and re-queued until
nothing changes (the unit lattice has height 2, so this converges
fast; a visit cap guards pathological graphs anyway).

:class:`UnitAnalysis` is the abstract interpretation the H2P11x rules
run: the state maps local variable names to :class:`Unit`, assignments
and loop/with bindings propagate, and expression evaluation applies
the lattice's arithmetic transfer rules. A name read prefers the
definite unit the dataflow computed, then the suffix convention, so
``t = makespan_ms`` followed by ``t + size_mb`` is caught even though
``t`` itself carries no suffix.

Two deliberate precision sacrifices keep false positives out:

* multiplying or dividing by a **numeric literal** yields ⊥ — that is
  how unit conversions are written (``ns / 1e6``), and the analysis
  cannot know which constant converts;
* only *definite vs definite* unit clashes are reported; ⊥/⊤ operands
  never flag.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .cfg import CFG, build_cfg
from .lattice import (
    Unit,
    additive_compatible,
    is_definite,
    join,
    suffix_unit,
    unit_of_add,
    unit_of_div,
    unit_of_mul,
)

#: Abstract state: local variable name -> unit.
State = Dict[str, Unit]

#: Called on each unit clash: (offending node, operation label, left, right).
Reporter = Callable[[ast.AST, str, Unit, Unit], None]


def join_states(a: State, b: State) -> State:
    """Pointwise join; a name missing from one side is ⊥ there."""
    merged: State = dict(a)
    for name, unit in b.items():
        merged[name] = join(merged.get(name, Unit.BOTTOM), unit)
    return merged


def states_equal(a: State, b: State) -> bool:
    keys = set(a) | set(b)
    return all(
        a.get(k, Unit.BOTTOM) is b.get(k, Unit.BOTTOM) for k in keys
    )


def run_forward(
    cfg: CFG,
    transfer: Callable[[ast.AST, State], State],
    initial: Optional[State] = None,
    max_visits: int = 10_000,
) -> Dict[int, State]:
    """Worklist fixpoint; returns the in-state of every reachable block."""
    in_states: Dict[int, State] = {cfg.entry_id: dict(initial or {})}
    worklist: List[int] = [cfg.entry_id]
    visits = 0
    while worklist and visits < max_visits:
        visits += 1
        block_id = worklist.pop(0)
        state = dict(in_states[block_id])
        for element in cfg.blocks[block_id].elements:
            state = transfer(element, state)
        for succ in cfg.blocks[block_id].successors:
            if succ not in in_states:
                in_states[succ] = dict(state)
                worklist.append(succ)
            else:
                merged = join_states(in_states[succ], state)
                if not states_equal(merged, in_states[succ]):
                    in_states[succ] = merged
                    if succ not in worklist:
                        worklist.append(succ)
    return in_states


# --------------------------------------------------------------- units


@dataclass(frozen=True)
class UnitViolation:
    """One definite unit clash at an arithmetic/comparison site."""

    node: ast.AST
    operation: str  # "+", "-", "+=", "-=", "<", "==", ...
    left: Unit
    right: Unit


#: Builtins/attributes that pass their arguments' unit through.
_UNIT_PRESERVING_CALLS = frozenset(
    {
        "min",
        "max",
        "sum",
        "abs",
        "round",
        "float",
        "sorted",
        "reversed",
        "list",
        "tuple",
        "mean",
        "median",
        "fsum",
        "nansum",
        "nanmean",
        "copy",
        "deepcopy",
    }
)

_COUNT_CALLS = frozenset({"len", "range", "count"})

_COMPARE_OPS: Dict[type, str] = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}


def _is_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool)


class UnitAnalysis:
    """Unit inference over one function (or module) body.

    Use :meth:`analyze` — it builds the CFG, seeds parameters from
    their suffixes, runs the fixpoint, then replays each block from
    its stable in-state with the reporter attached so every violation
    is collected exactly once.
    """

    def __init__(self) -> None:
        self.violations: List[UnitViolation] = []
        self.returns: List[Tuple[ast.Return, Unit]] = []
        self._seen: Set[Tuple[int, int, str]] = set()
        self._reporting = False

    # -- public driver ------------------------------------------------

    def analyze(
        self,
        body: Sequence[ast.stmt],
        params: Sequence[str] = (),
    ) -> "UnitAnalysis":
        cfg = build_cfg(body)
        initial: State = {
            name: suffix_unit(name) for name in params
        }
        in_states = run_forward(cfg, self.transfer, initial)
        self._reporting = True
        for block_id in cfg.reachable_ids():
            if block_id not in in_states:
                continue
            state = dict(in_states[block_id])
            for element in cfg.blocks[block_id].elements:
                state = self.transfer(element, state)
        self._reporting = False
        return self

    # -- transfer -----------------------------------------------------

    def transfer(self, element: ast.AST, state: State) -> State:
        state = dict(state)
        if isinstance(element, ast.expr):
            self._eval(element, state)
        elif isinstance(element, ast.Assign):
            unit = self._eval(element.value, state)
            for target in element.targets:
                self._bind(target, unit, state, value=element.value)
        elif isinstance(element, ast.AnnAssign):
            if element.value is not None:
                unit = self._eval(element.value, state)
                self._bind(element.target, unit, state, value=element.value)
        elif isinstance(element, ast.AugAssign):
            left = self._eval(element.target, state)
            right = self._eval(element.value, state)
            unit = self._binop_unit(
                element, element.op, left, right, element.value
            )
            self._bind(element.target, unit, state)
        elif isinstance(element, ast.Return):
            unit = (
                self._eval(element.value, state)
                if element.value is not None
                else Unit.BOTTOM
            )
            if self._reporting:
                self.returns.append((element, unit))
        elif isinstance(element, (ast.For, ast.AsyncFor)):
            unit = self._eval(element.iter, state)
            self._bind(element.target, unit, state)
        elif isinstance(element, (ast.With, ast.AsyncWith)):
            for item in element.items:
                unit = self._eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, unit, state)
        elif isinstance(element, ast.ExceptHandler):
            if element.name:
                state[element.name] = Unit.TOP
        elif isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef)):
            state[element.name] = Unit.BOTTOM
        elif isinstance(element, ast.ClassDef):
            state[element.name] = Unit.BOTTOM
        elif isinstance(element, ast.Delete):
            for target in element.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
        elif isinstance(element, ast.Assert):
            self._eval(element.test, state)
        elif isinstance(element, ast.Expr):
            self._eval(element.value, state)
        elif isinstance(element, ast.Raise):
            if element.exc is not None:
                self._eval(element.exc, state)
        return state

    def _bind(
        self,
        target: ast.expr,
        unit: Unit,
        state: State,
        value: Optional[ast.expr] = None,
    ) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = list(target.elts)
            if (
                value is not None
                and isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(elts)
            ):
                for sub_target, sub_value in zip(elts, value.elts):
                    self._bind(
                        sub_target,
                        self._eval(sub_value, state),
                        state,
                        value=sub_value,
                    )
            else:
                for sub_target in elts:
                    self._bind(sub_target, Unit.BOTTOM, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, Unit.BOTTOM, state)
        # Attribute / Subscript stores: reads re-derive from suffixes.

    # -- expression evaluation ---------------------------------------

    def _eval(self, node: ast.expr, state: State) -> Unit:
        if isinstance(node, ast.Constant):
            return Unit.BOTTOM
        if isinstance(node, ast.Name):
            return self._name_unit(node.id, state)
        if isinstance(node, ast.Attribute):
            self._eval(node.value, state)
            return suffix_unit(node.attr)
        if isinstance(node, ast.Subscript):
            self._eval_slice(node.slice, state)
            return self._eval(node.value, state)
        if isinstance(node, ast.Call):
            return self._eval_call(node, state)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, state)
            right = self._eval(node.right, state)
            return self._binop_unit(node, node.op, left, right, node.right)
        if isinstance(node, ast.UnaryOp):
            unit = self._eval(node.operand, state)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return unit
            return Unit.BOTTOM
        if isinstance(node, ast.BoolOp):
            units = [self._eval(v, state) for v in node.values]
            result = Unit.BOTTOM
            for unit in units:
                result = join(result, unit)
            return result
        if isinstance(node, ast.Compare):
            self._eval_compare(node, state)
            return Unit.BOTTOM
        if isinstance(node, ast.IfExp):
            self._eval(node.test, state)
            return join(
                self._eval(node.body, state), self._eval(node.orelse, state)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            result = Unit.BOTTOM
            for elt in node.elts:
                result = join(result, self._eval(elt, state))
            return result
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, state)
            for value in node.values:
                self._eval(value, state)
            return Unit.BOTTOM
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, node.elt, state)
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node, node.value, state)
            return Unit.BOTTOM
        if isinstance(node, ast.Starred):
            return self._eval(node.value, state)
        if isinstance(node, ast.Await):
            return self._eval(node.value, state)
        if isinstance(node, ast.NamedExpr):
            unit = self._eval(node.value, state)
            self._bind(node.target, unit, state)
            return unit
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value, state)
            return Unit.BOTTOM
        if isinstance(node, ast.Lambda):
            return Unit.BOTTOM
        return Unit.BOTTOM

    def _name_unit(self, name: str, state: State) -> Unit:
        computed = state.get(name, Unit.BOTTOM)
        if is_definite(computed):
            return computed
        inferred = suffix_unit(name)
        if is_definite(inferred):
            return inferred
        return computed

    def _eval_slice(self, node: ast.expr, state: State) -> None:
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, state)
        else:
            self._eval(node, state)

    def _eval_call(self, node: ast.Call, state: State) -> Unit:
        arg_units = [self._eval(arg, state) for arg in node.args]
        for keyword in node.keywords:
            self._eval(keyword.value, state)

        func = node.func
        func_name = ""
        if isinstance(func, ast.Name):
            func_name = func.id
        elif isinstance(func, ast.Attribute):
            func_name = func.attr
            self._eval(func.value, state)
        else:
            self._eval(func, state)

        lowered = func_name.lower()
        if lowered in _COUNT_CALLS:
            return Unit.COUNT
        if lowered in _UNIT_PRESERVING_CALLS:
            result = Unit.BOTTOM
            for unit in arg_units:
                result = join(result, unit)
            return result
        return suffix_unit(func_name)

    def _eval_compare(self, node: ast.Compare, state: State) -> None:
        left_unit = self._eval(node.left, state)
        for op, comparator in zip(node.ops, node.comparators):
            right_unit = self._eval(comparator, state)
            label = _COMPARE_OPS.get(type(op))
            if label is not None and not additive_compatible(
                left_unit, right_unit
            ):
                self._report(node, label, left_unit, right_unit)
            left_unit = right_unit

    def _binop_unit(
        self,
        node: ast.AST,
        op: ast.operator,
        left: Unit,
        right: Unit,
        right_node: Optional[ast.expr] = None,
    ) -> Unit:
        if isinstance(op, (ast.Add, ast.Sub)):
            if not additive_compatible(left, right):
                label = "+" if isinstance(op, ast.Add) else "-"
                if isinstance(node, ast.AugAssign):
                    label += "="
                self._report(node, label, left, right)
            return unit_of_add(left, right)
        if isinstance(op, ast.Mult):
            if right_node is not None and (
                _is_numeric_literal(right_node)
                or (
                    isinstance(node, ast.BinOp)
                    and _is_numeric_literal(node.left)
                )
            ):
                # Multiplying by a bare constant is how unit
                # conversions are spelled (ms * 1000); stay agnostic.
                return Unit.BOTTOM
            return unit_of_mul(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if right_node is not None and _is_numeric_literal(right_node):
                return Unit.BOTTOM  # ns / 1e6 — a conversion, not a share
            return unit_of_div(left, right)
        if isinstance(op, ast.Mod):
            return left
        return Unit.BOTTOM

    def _report(
        self, node: ast.AST, operation: str, left: Unit, right: Unit
    ) -> None:
        if not self._reporting:
            return
        key = (
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            f"{left}{operation}{right}",
        )
        if key in self._seen:
            return
        self._seen.add(key)
        self.violations.append(
            UnitViolation(node=node, operation=operation, left=left, right=right)
        )

    def _eval_comprehension(
        self,
        node: ast.expr,
        result_expr: ast.expr,
        state: State,
    ) -> Unit:
        local = dict(state)
        for comp in getattr(node, "generators", []):
            iter_unit = self._eval(comp.iter, local)
            self._bind(comp.target, iter_unit, local)
            for condition in comp.ifs:
                self._eval(condition, local)
        return self._eval(result_expr, local)


__all__ = [
    "State",
    "UnitAnalysis",
    "UnitViolation",
    "join_states",
    "run_forward",
]
