"""Dependency-free leaf helpers shared across every layer.

This module sits at the bottom of the DESIGN.md import DAG (layer 0):
anything may import it, it imports only the stdlib.  It exists because
two helpers kept being re-invented upward in the tree — ``geomean``
lived in ``experiments.common`` and was imported *down* by
``runtime.metrics`` (the layering violation H2P201 now bans), and float
tolerance comparisons were open-coded as ``== 0.0`` (H2P102).
"""

from __future__ import annotations

import math
from typing import Sequence

#: Default tolerances for :func:`approx_eq`.  Relative 1e-9 matches
#: ``math.isclose``; the absolute floor makes comparisons against 0.0
#: meaningful for quantities that are sums of roofline ms/mJ terms.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def approx_eq(
    a: float, b: float, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL
) -> bool:
    """Tolerant float equality for scheduling math.

    Use this instead of ``==``/``!=`` on floats (lint rule H2P102):
    slice costs and makespans are accumulated roofline terms, so exact
    equality is machine- and order-dependent.
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup aggregation).

    Raises:
        ValueError: on empty input or non-positive entries.
    """
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
