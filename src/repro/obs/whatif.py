"""What-if counterfactuals: differential re-simulation of a chain set.

Blame (:mod:`repro.obs.blame`) tells the operator *where* a run's time
went; this module answers the follow-up — *what single change would buy
the most back?* — by re-running the discrete-event engine under a named
intervention and reporting the makespan / latency-percentile deltas:

* ``baseline`` — the empty intervention.  Because the engine is
  deterministic and interventions operate on **fresh clones** of the
  chain set (engine tasks are mutable), the baseline counterfactual
  reproduces the reference run *float-exactly* —
  :func:`results_identical` checks bit-equality of every task record,
  finish time and causality row, and ``benchmarks/blame_guard.py``
  enforces the identity across the three SoCs.
* ``scale:<proc>:<factor>`` — scale a processor's throughput (every
  slice bound to it runs ``factor``× faster; memory traffic and the
  contention workload are unchanged — the intervention models a faster
  clock, not a different kernel).
* ``no-contention`` — disable Eq. 1 co-execution slowdown.
* ``unlimited-memory`` — lift Constraint 6 residency enforcement.
* ``drop:<request>`` — remove one co-runner's chain (and arrival)
  entirely; deltas are reported for the surviving requests.

Unlike the rest of ``repro.obs`` (data-only leaves), this module
*drives* ``repro.runtime`` — it carries an explicit H2P201 layering
override (like :mod:`repro.obs.bench`) and is deliberately **not**
re-exported from ``repro.obs``; import it as ``repro.obs.whatif``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.soc import SocSpec
from ..runtime.engine import ChainTask, ExecutionResult
from ..runtime.executor import simulate_chains

#: Intervention kinds (``WhatIf.kind``).
BASELINE = "baseline"
SCALE_PROCESSOR = "scale_processor"
NO_CONTENTION = "no_contention"
UNLIMITED_MEMORY = "unlimited_memory"
DROP_REQUEST = "drop_request"


@dataclass(frozen=True)
class WhatIf:
    """One named intervention (see :func:`parse_whatif`)."""

    kind: str
    processor: Optional[str] = None
    factor: Optional[float] = None
    request: Optional[int] = None

    @property
    def label(self) -> str:
        if self.kind == SCALE_PROCESSOR:
            return f"scale:{self.processor}:{self.factor:g}"
        if self.kind == NO_CONTENTION:
            return "no-contention"
        if self.kind == UNLIMITED_MEMORY:
            return "unlimited-memory"
        if self.kind == DROP_REQUEST:
            return f"drop:{self.request}"
        return BASELINE


def parse_whatif(spec: str) -> WhatIf:
    """Parse one intervention spec string.

    Grammar: ``baseline`` | ``no-contention`` | ``unlimited-memory`` |
    ``scale:<processor>:<factor>`` | ``drop:<request>``.

    Raises:
        ValueError: on an unknown kind or malformed parameters.
    """
    spec = spec.strip()
    if spec == BASELINE:
        return WhatIf(kind=BASELINE)
    if spec == "no-contention":
        return WhatIf(kind=NO_CONTENTION)
    if spec == "unlimited-memory":
        return WhatIf(kind=UNLIMITED_MEMORY)
    if spec.startswith("scale:"):
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"scale spec must be scale:<processor>:<factor>, got {spec!r}"
            )
        try:
            factor = float(parts[2])
        except ValueError:
            raise ValueError(f"bad scale factor in {spec!r}") from None
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        return WhatIf(kind=SCALE_PROCESSOR, processor=parts[1], factor=factor)
    if spec.startswith("drop:"):
        try:
            request = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad request index in {spec!r}") from None
        if request < 0:
            raise ValueError(f"request index must be >= 0, got {request}")
        return WhatIf(kind=DROP_REQUEST, request=request)
    raise ValueError(
        f"unknown what-if spec {spec!r}: expected baseline, "
        "no-contention, unlimited-memory, scale:<proc>:<factor> "
        "or drop:<request>"
    )


def parse_whatifs(specs: str) -> List[WhatIf]:
    """Parse a comma-separated list of intervention specs."""
    return [parse_whatif(s) for s in specs.split(",") if s.strip()]


def _clone_chains(
    chains: Sequence[Sequence[ChainTask]],
) -> List[List[ChainTask]]:
    """Fresh task objects: engine runs mutate remaining/start/proc."""
    return [
        [
            ChainTask(
                request=task.request,
                proc=task.proc,
                solo_ms=task.solo_ms,
                workload=task.workload,
                working_set=task.working_set,
                stage=task.stage,
            )
            for task in chain
        ]
        for chain in chains
    ]


def run_counterfactual(
    soc: SocSpec,
    chains: Sequence[Sequence[ChainTask]],
    intervention: WhatIf,
    arrivals: Optional[Sequence[float]] = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    deadline_ms: Optional[object] = None,
) -> Tuple[ExecutionResult, Dict[int, int]]:
    """Re-simulate the chain set under one intervention.

    ``chains`` may be an already-executed (mutated) chain set: the
    counterfactual always runs on fresh clones, so the ``baseline``
    intervention reproduces the original run float-exactly.

    Returns:
        ``(result, request_map)`` where ``request_map`` maps original
        request ids to their index in the counterfactual result (the
        identity map except under ``drop:<request>``).

    Raises:
        ValueError: on an unknown processor / out-of-range request in
            the intervention, and the engine's own input errors.
    """
    cloned = _clone_chains(chains)
    times = list(arrivals) if arrivals is not None else None
    deadlines = (
        list(deadline_ms)
        if isinstance(deadline_ms, (list, tuple))
        else deadline_ms
    )
    request_map = {i: i for i in range(len(cloned))}
    if intervention.kind == SCALE_PROCESSOR:
        names = {p.name for p in soc.processors}
        if intervention.processor not in names:
            raise ValueError(
                f"unknown processor {intervention.processor!r} on "
                f"SoC {soc.name!r}"
            )
        if intervention.factor is None or intervention.factor <= 0:
            raise ValueError(
                f"scale intervention needs a factor > 0, got "
                f"{intervention.factor}"
            )
        for chain in cloned:
            for task in chain:
                if task.proc.name == intervention.processor:
                    task.solo_ms = task.solo_ms / intervention.factor
                    task.remaining_ms = task.solo_ms
    elif intervention.kind == NO_CONTENTION:
        with_contention = False
    elif intervention.kind == UNLIMITED_MEMORY:
        enforce_memory = False
    elif intervention.kind == DROP_REQUEST:
        victim = intervention.request
        if victim is None or not 0 <= victim < len(cloned):
            raise ValueError(
                f"drop request {victim} out of range [0, {len(cloned)})"
            )
        survivors = [i for i in range(len(cloned)) if i != victim]
        request_map = {old: new for new, old in enumerate(survivors)}
        kept = [cloned[i] for i in survivors]
        for new, old in enumerate(survivors):
            for task in kept[new]:
                task.request = new
        cloned = kept
        if times is not None:
            times = [times[i] for i in survivors]
        if isinstance(deadlines, list):
            deadlines = [deadlines[i] for i in survivors]
    result = simulate_chains(
        soc,
        cloned,
        arrivals=times,
        with_contention=with_contention,
        enforce_memory=enforce_memory,
        record=False,
        deadline_ms=deadlines,
        track_causality=True,
    )
    return result, request_map


@dataclass(frozen=True)
class WhatIfReport:
    """Deltas of one counterfactual vs the baseline run.

    Negative deltas mean the intervention made things faster.
    Percentile deltas are None when either run completed no requests.
    """

    intervention: str
    makespan_ms: float
    delta_makespan_ms: float
    delta_p50_ms: Optional[float]
    delta_p95_ms: Optional[float]
    delta_p99_ms: Optional[float]
    delta_mean_latency_ms: float
    completed: int
    delta_completed: int
    request_latency_deltas_ms: Dict[int, float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "intervention": self.intervention,
            "makespan_ms": self.makespan_ms,
            "delta_makespan_ms": self.delta_makespan_ms,
            "delta_p50_ms": self.delta_p50_ms,
            "delta_p95_ms": self.delta_p95_ms,
            "delta_p99_ms": self.delta_p99_ms,
            "delta_mean_latency_ms": self.delta_mean_latency_ms,
            "completed": self.completed,
            "delta_completed": self.delta_completed,
            "request_latency_deltas_ms": {
                str(k): v
                for k, v in sorted(self.request_latency_deltas_ms.items())
            },
        }


def _pct_delta(
    baseline: ExecutionResult, variant: ExecutionResult, pct: float
) -> Optional[float]:
    if baseline.num_completed == 0 or variant.num_completed == 0:
        return None
    return variant.latency_percentile_ms(pct) - baseline.latency_percentile_ms(
        pct
    )


def compare_runs(
    baseline: ExecutionResult,
    variant: ExecutionResult,
    intervention: WhatIf,
    request_map: Dict[int, int],
) -> WhatIfReport:
    """Build the delta report for one counterfactual run."""
    deltas: Dict[int, float] = {}
    variant_completed = set(variant.completed_requests())
    for old in baseline.completed_requests():
        new = request_map.get(old)
        if new is None or new not in variant_completed:
            continue
        deltas[old] = variant.request_latency_ms(
            new
        ) - baseline.request_latency_ms(old)
    return WhatIfReport(
        intervention=intervention.label,
        makespan_ms=variant.makespan_ms,
        delta_makespan_ms=variant.makespan_ms - baseline.makespan_ms,
        delta_p50_ms=_pct_delta(baseline, variant, 50.0),
        delta_p95_ms=_pct_delta(baseline, variant, 95.0),
        delta_p99_ms=_pct_delta(baseline, variant, 99.0),
        delta_mean_latency_ms=(
            variant.mean_latency_ms() - baseline.mean_latency_ms()
        ),
        completed=variant.num_completed,
        delta_completed=variant.num_completed - baseline.num_completed,
        request_latency_deltas_ms=deltas,
    )


def run_whatifs(
    soc: SocSpec,
    chains: Sequence[Sequence[ChainTask]],
    interventions: Sequence[WhatIf],
    arrivals: Optional[Sequence[float]] = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    deadline_ms: Optional[object] = None,
) -> Tuple[ExecutionResult, List[WhatIfReport]]:
    """Run the baseline plus each intervention; return delta reports."""
    baseline, _ = run_counterfactual(
        soc,
        chains,
        WhatIf(kind=BASELINE),
        arrivals=arrivals,
        with_contention=with_contention,
        enforce_memory=enforce_memory,
        deadline_ms=deadline_ms,
    )
    reports = []
    for intervention in interventions:
        variant, request_map = run_counterfactual(
            soc,
            chains,
            intervention,
            arrivals=arrivals,
            with_contention=with_contention,
            enforce_memory=enforce_memory,
            deadline_ms=deadline_ms,
        )
        reports.append(
            compare_runs(baseline, variant, intervention, request_map)
        )
    return baseline, reports


def results_identical(a: ExecutionResult, b: ExecutionResult) -> bool:
    """Float-exact equality of two runs (the baseline-identity check).

    Compares every task record, finish/arrival time, busy accounting,
    pressure count and causality row with ``==`` — no tolerance.  The
    dataclass comparisons are exact float comparisons by design: the
    engine is deterministic, so the empty intervention must reproduce
    the reference run bit-for-bit, and any drift is a cloning bug.
    """
    return (
        a.records == b.records
        and a.makespan_ms == b.makespan_ms
        and a.request_arrival_ms == b.request_arrival_ms
        and a.request_finish_ms == b.request_finish_ms
        and a.processor_busy_ms == b.processor_busy_ms
        and a.memory_pressure_events == b.memory_pressure_events
        and a.request_first_start_ms == b.request_first_start_ms
        and a.dropped_requests == b.dropped_requests
        and a.cancelled_requests == b.cancelled_requests
        and a.causality == b.causality
        and a.corun_inflation_ms == b.corun_inflation_ms
    )
