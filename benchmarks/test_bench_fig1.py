"""Fig. 1 / Fig. 11 benchmark: solo model latency per processor."""

from repro.experiments import fig1_processor_latency
from repro.hardware.soc import get_soc


def test_bench_fig1_processor_latency(run_once):
    rows = run_once(fig1_processor_latency.run)
    print("\n" + fig1_processor_latency.render(rows))

    # Paper shape: NPU errors exactly on YOLOv4 and BERT; NPU fastest
    # elsewhere; small cluster slowest everywhere.
    errored = {r.model for r in rows if r.latency_ms["npu"] is None}
    assert errored == {"yolov4", "bert"}
    for row in rows:
        if row.latency_ms["npu"] is not None:
            others = [
                v for k, v in row.latency_ms.items() if k != "npu" and v
            ]
            assert row.latency_ms["npu"] < min(others)
        assert row.latency_ms["cpu_small"] == max(
            v for v in row.latency_ms.values() if v is not None
        )


def test_bench_fig11_snapdragon_latency(run_once):
    # Fig. 11 repeats the measurement; we run it on a second platform.
    soc = get_soc("snapdragon870")
    rows = run_once(fig1_processor_latency.run, soc)
    print("\n" + fig1_processor_latency.render(rows, soc))
    for row in rows:
        assert row.latency_ms["cpu_small"] > row.latency_ms["cpu_big"]
