"""Roofline latency model for layers on mobile processors.

Each layer's solo execution time on a processor is the roofline maximum
of its compute time (FLOPs over achievable throughput) and its memory
time (DRAM traffic over the unit's solo bandwidth), plus a fixed kernel
dispatch overhead per slice.

Two effects central to the paper's empirical section are modelled here:

* **Cache amplification** (Observation 2): MatMul-family operators whose
  operand working set exceeds the unit's last-level cache re-read their
  operands from DRAM, amplifying effective traffic — this is why FC
  layers in VGG/AlexNet show 2-4x the cache misses of conv layers, and
  why BERT's 768x768 / 768x3072 projections are memory-bound on CPUs.
* **Deterministic device noise**: per-(processor, layer) multiplicative
  perturbation from a stable hash, standing in for micro-architectural
  variation between real SoCs while keeping every run bit-reproducible.
"""

from __future__ import annotations

import math
import zlib
from typing import Tuple

from ..hardware.processor import ProcessorSpec
from ..models.ir import Layer

#: Cap on the cache-miss traffic amplification factor.
MAX_AMPLIFICATION = 8.0

#: Relative half-width of the deterministic device-noise band.
NOISE_SPAN = 0.06


def traffic_amplification(layer: Layer, proc: ProcessorSpec) -> float:
    """Multiplier on weight traffic due to cache-capacity misses.

    MatMul-family layers whose parameter block exceeds the unit's cache
    stream their operands repeatedly; the amplification grows like the
    square root of the overflow ratio (classic tiled-GEMM traffic bound)
    and is capped at :data:`MAX_AMPLIFICATION`.
    """
    if proc.op_family(layer.op) != "matmul":
        return 1.0
    if layer.weight_bytes <= proc.l2_cache_bytes:
        return 1.0
    amp = math.sqrt(layer.weight_bytes / proc.l2_cache_bytes)
    return min(amp, MAX_AMPLIFICATION)


def layer_traffic_bytes(layer: Layer, proc: ProcessorSpec) -> float:
    """Effective DRAM traffic of executing the layer once on ``proc``."""
    amp = traffic_amplification(layer, proc)
    return layer.weight_bytes * amp + layer.activation_bytes


def _device_noise(proc: ProcessorSpec, layer: Layer) -> float:
    """Deterministic multiplicative noise in [1 - span, 1 + span]."""
    digest = zlib.crc32(f"{proc.name}:{layer.name}".encode())
    unit = (digest % 10_000) / 10_000.0
    return 1.0 + NOISE_SPAN * (2.0 * unit - 1.0)


def layer_latency_ms(
    layer: Layer, proc: ProcessorSpec, thermal_scale: float = 1.0
) -> float:
    """Solo execution time of one layer on one processor, in milliseconds.

    Args:
        layer: The layer to execute.
        proc: The target compute unit.
        thermal_scale: Sustained-frequency factor in (0, 1] from the
            thermal model; divides the compute throughput.

    Returns:
        Roofline latency (without the per-slice launch overhead, which is
        charged once per slice, not per layer).

    Raises:
        ValueError: if the processor cannot execute the layer (NPU
            operator gap) or ``thermal_scale`` is out of range.
    """
    if not proc.supports(layer):
        raise ValueError(
            f"processor {proc.name!r} does not support op {layer.op.value!r} "
            f"(layer {layer.name!r})"
        )
    if not 0.0 < thermal_scale <= 1.0:
        raise ValueError(f"thermal_scale must be in (0, 1], got {thermal_scale}")
    gflops = proc.effective_gflops(layer.op) * thermal_scale
    compute_ms = layer.flops / (gflops * 1e9) * 1e3
    memory_ms = layer_traffic_bytes(layer, proc) / (
        proc.mem_bandwidth_gbps * 1e9
    ) * 1e3
    return max(compute_ms, memory_ms) * _device_noise(proc, layer)


def layer_compute_memory_ms(
    layer: Layer, proc: ProcessorSpec, thermal_scale: float = 1.0
) -> Tuple[float, float]:
    """The (compute, memory) roofline components, for PMU synthesis."""
    if not proc.supports(layer):
        raise ValueError(
            f"processor {proc.name!r} does not support op {layer.op.value!r}"
        )
    gflops = proc.effective_gflops(layer.op) * thermal_scale
    compute_ms = layer.flops / (gflops * 1e9) * 1e3
    memory_ms = layer_traffic_bytes(layer, proc) / (
        proc.mem_bandwidth_gbps * 1e9
    ) * 1e3
    return compute_ms, memory_ms


def copy_latency_ms(
    nbytes: float, src: ProcessorSpec, dst: ProcessorSpec
) -> float:
    """Inter-stage tensor copy time on the unified memory (``T^c``).

    The copy streams through the slower of the two units' copy paths and
    pays both units' dispatch overheads (map/unmap or driver round trip).
    """
    if nbytes < 0:
        raise ValueError("copy size must be >= 0")
    if nbytes == 0:
        return 0.0
    bandwidth = min(src.copy_bandwidth_gbps, dst.copy_bandwidth_gbps)
    stream_ms = nbytes / (bandwidth * 1e9) * 1e3
    return stream_ms + 0.5 * (src.launch_overhead_ms + dst.launch_overhead_ms)
