"""Appendix B: thermal behaviour of the heterogeneous processors.

The paper observes that continuous inference drives the CPU above
60 degC with noticeable throttling while the GPU/NPU stay within ~50
degC, and therefore profiles at the thermal steady state.  This
experiment regenerates the steady-state picture — per-processor
equilibrium temperature and sustained-frequency scale across a
utilization sweep — and quantifies the latency cost of the worst-case
(full-load) assumption vs the utilization-consistent thermal-feedback
fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.planner import Hetero2PipePlanner
from ..core.thermal_feedback import plan_with_thermal_feedback
from ..hardware.processor import ProcessorKind
from ..hardware.soc import SocSpec, get_soc
from ..hardware.thermal import steady_state
from ..models.zoo import get_model
from ..runtime.executor import execute_plan
from .common import format_table


@dataclass(frozen=True)
class ThermalRow:
    """One (processor kind, utilization) steady-state point."""

    kind: str
    utilization: float
    temperature_c: float
    frequency_scale: float


def run_sweep(
    utilizations: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> List[ThermalRow]:
    """Steady-state temperature/scale over a utilization sweep."""
    rows: List[ThermalRow] = []
    for kind in ProcessorKind:
        for utilization in utilizations:
            state = steady_state(kind, utilization)
            rows.append(
                ThermalRow(
                    kind=kind.value,
                    utilization=utilization,
                    temperature_c=state.temperature_c,
                    frequency_scale=state.frequency_scale,
                )
            )
    return rows


@dataclass(frozen=True)
class FeedbackComparison:
    """Worst-case-profiled vs utilization-consistent planning."""

    worst_case_ms: float
    feedback_ms: float
    final_cpu_scale: float

    @property
    def recovered(self) -> float:
        """Fraction of latency recovered by the feedback fixpoint."""
        if self.worst_case_ms <= 0:
            return 0.0
        return 1.0 - self.feedback_ms / self.worst_case_ms


def run_feedback(
    soc: Optional[SocSpec] = None,
    model_names: Sequence[str] = ("yolov4", "bert", "squeezenet", "vit"),
) -> FeedbackComparison:
    """Compare worst-case thermal profiling with the feedback loop."""
    soc = soc or get_soc("kirin990")
    models = [get_model(n) for n in model_names]
    worst = execute_plan(Hetero2PipePlanner(soc).plan(models).plan).makespan_ms
    feedback = plan_with_thermal_feedback(soc, models, max_iterations=3)
    return FeedbackComparison(
        worst_case_ms=worst,
        feedback_ms=feedback.result.makespan_ms,
        final_cpu_scale=feedback.final_scales.get("cpu_big", 1.0),
    )


def render_sweep(rows: Sequence[ThermalRow]) -> str:
    headers = ["processor", "utilization", "temp_C", "freq_scale"]
    body = [
        [r.kind, r.utilization, r.temperature_c, round(r.frequency_scale, 3)]
        for r in rows
    ]
    return format_table(headers, body)


def render_feedback(comparison: FeedbackComparison) -> str:
    return (
        f"worst-case thermal profiling: {comparison.worst_case_ms:.1f} ms\n"
        f"thermal-feedback fixpoint:    {comparison.feedback_ms:.1f} ms "
        f"(cpu_big scale {comparison.final_cpu_scale:.2f})\n"
        f"latency recovered:            {comparison.recovered * 100:.1f}%"
    )


def main() -> str:
    return (
        "Appendix B steady-state sweep:\n"
        + render_sweep(run_sweep())
        + "\n\nthermal-feedback comparison:\n"
        + render_feedback(run_feedback())
    )


if __name__ == "__main__":
    print(main())
