"""Windowed streaming planner (extension of Sec. V's complexity remark).

The paper's planner works on a fixed request batch; its complexity
analysis notes that for longer request streams "the planner should be
scheduled more frequently to avoid enlarged search space".  This module
operationalizes that: requests are consumed from an arrival stream in
*planning windows*; each window is planned with the full two-step
Hetero2Pipe flow (optionally after coalescing runs of identical
lightweight requests into batches, Appendix D) and dispatched as soon as
the previous window drains.

The result aggregates per-request completion latency across windows so
streaming behaviour (backlog, window-boundary bubbles) is measurable.

When accuracy tracking is on, each window also closes the predict →
execute → compare loop: the planner's own deterministic simulation of
the committed plan (its prediction) is joined against the executed run
(:func:`repro.obs.accuracy.join_execution`), the residuals feed the
per-processor/per-model drift detectors
(:class:`repro.obs.drift.DriftMonitor`), and a fired detector triggers
the replan path — planner caches invalidated, the SoC spec recalibrated
from the observed slowdown, and the planner rebuilt so the *next*
window is planned against reality instead of the stale model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..runtime.executor import ExecutionResult, execute_plan
from ..workloads.batching import coalesce_stream
from .objective import Fingerprint, plan_fingerprint
from .planner import Hetero2PipePlanner, PlannerConfig

#: Recalibration clamps: per-drift throughput scale stays within this
#: band so one noisy window cannot wreck the spec.
_MIN_RECALIBRATION_SCALE = 0.25
_MAX_RECALIBRATION_SCALE = 4.0
#: Processors whose mean relative error is inside the deadband are left
#: alone — re-deriving the spec from noise would itself inject drift.
_RECALIBRATION_DEADBAND = 0.05


@dataclass(frozen=True)
class WindowOutcome:
    """One planning window's dispatch and execution."""

    first_request: int
    num_requests: int
    dispatch_ms: float
    makespan_ms: float

    @property
    def finish_ms(self) -> float:
        return self.dispatch_ms + self.makespan_ms


@dataclass
class StreamingResult:
    """Aggregated outcome of a streamed execution.

    The accuracy fields stay empty unless the planner ran with
    ``track_accuracy``: one :class:`~repro.obs.ResidualReport` and one
    plan fingerprint per window, every :class:`~repro.obs.DriftDetected`
    event the monitor fired, and the count of drift-triggered replans.
    """

    windows: List[WindowOutcome]
    request_arrival_ms: List[float]
    request_finish_ms: List[float]
    residuals: List["obs.ResidualReport"] = field(default_factory=list)
    drift_events: List["obs.DriftDetected"] = field(default_factory=list)
    plan_fingerprints: List[Fingerprint] = field(default_factory=list)
    replans: int = 0

    @property
    def num_requests(self) -> int:
        return len(self.request_finish_ms)

    @property
    def makespan_ms(self) -> float:
        return max((w.finish_ms for w in self.windows), default=0.0)

    @property
    def throughput_per_s(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return self.num_requests / (self.makespan_ms / 1e3)

    def request_latency_ms(self, request: int) -> float:
        return (
            self.request_finish_ms[request] - self.request_arrival_ms[request]
        )

    def mean_latency_ms(self) -> float:
        if not self.request_finish_ms:
            return 0.0
        return sum(
            self.request_latency_ms(i) for i in range(self.num_requests)
        ) / self.num_requests


class StreamingPlanner:
    """Plans an arrival stream window by window.

    Args:
        soc: Target platform.
        window_size: Requests per planning window (the paper's "how often
            the pipelining plan is made" knob).
        config: Planner feature switches.
        coalesce_batches: Fold runs of identical requests into batched
            requests before planning each window (Appendix D).
        max_batch: Batch-size cap for coalescing.
        track_accuracy: Join each window's predicted execution against
            the actual one and keep the residual reports (see module
            docstring).  Implied by passing ``drift_monitor``.
        drift_monitor: Drift detectors fed with every window's residuals;
            a default :class:`~repro.obs.DriftMonitor` is created when
            ``track_accuracy`` is set without one.
        execute: The *actual* execution of a committed plan — a callable
            ``plan -> ExecutionResult`` (default
            :func:`~repro.runtime.executor.execute_plan`).  Tests and
            what-if studies inject perturbed executors here
            (:func:`~repro.runtime.executor.execute_plan_perturbed`);
            the planner's *prediction* always remains its own clean
            simulation, so the injected divergence shows up as residual.
        recalibrate_on_drift: On a fired detector, invalidate the planner
            caches, rescale drifting processors' throughput from the
            observed residuals, and rebuild the planner (reusing the
            fitted contention estimator) so the next window replans
            against the corrected spec.
    """

    def __init__(
        self,
        soc: SocSpec,
        window_size: int = 8,
        config: Optional[PlannerConfig] = None,
        coalesce_batches: bool = False,
        max_batch: int = 8,
        track_accuracy: bool = False,
        drift_monitor: Optional["obs.DriftMonitor"] = None,
        execute: Optional[Callable[..., ExecutionResult]] = None,
        recalibrate_on_drift: bool = True,
    ) -> None:
        if window_size < 1:
            raise ValueError("window size must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.soc = soc
        self.window_size = window_size
        self.coalesce_batches = coalesce_batches
        self.max_batch = max_batch
        self.planner = Hetero2PipePlanner(soc, config)
        self.track_accuracy = track_accuracy or drift_monitor is not None
        self.drift_monitor = drift_monitor or (
            obs.DriftMonitor() if self.track_accuracy else None
        )
        self.execute = execute or execute_plan
        self.recalibrate_on_drift = recalibrate_on_drift
        self.replans = 0
        #: Cumulative per-processor throughput scale applied by replans.
        self.recalibration_scales: Dict[str, float] = {
            p.name: 1.0 for p in soc.processors
        }

    def _handle_drift(self, report: "obs.ResidualReport") -> None:
        """The replan/re-profile trigger (module docstring, step 3).

        Every cached prediction is now suspect, so the planner's
        memoization layers are dropped wholesale; then each processor
        whose residuals sit outside the deadband has its throughput
        rescaled by the inverse of the observed actual/predicted ratio
        (clamped), and the planner is rebuilt against the corrected SoC.
        The contention estimator is reused: its PMU-derived intensity
        labels describe *interference structure*, not throughput, and
        refitting the zoo per drift would dwarf the planning budget.
        """
        self.replans += 1
        self.planner.invalidate_caches()
        scales: Dict[str, float] = {}
        for name, summary in report.by_processor().items():
            error = summary.mean_relative_error
            if abs(error) <= _RECALIBRATION_DEADBAND:
                continue
            scale = 1.0 / (1.0 + error)
            scales[name] = min(
                _MAX_RECALIBRATION_SCALE,
                max(_MIN_RECALIBRATION_SCALE, scale),
            )
        if not scales:
            return
        self.soc = dataclasses.replace(
            self.soc,
            processors=tuple(
                dataclasses.replace(
                    p, peak_gflops=p.peak_gflops * scales[p.name]
                )
                if p.name in scales
                else p
                for p in self.soc.processors
            ),
        )
        for name, scale in scales.items():
            self.recalibration_scales[name] = (
                self.recalibration_scales.get(name, 1.0) * scale
            )
            obs.observe("recalibration_scale", scale)
        self.planner = Hetero2PipePlanner(
            self.soc, self.planner.config, estimator=self.planner.estimator
        )
        obs.add("drift_replans")

    def run(
        self,
        stream: Sequence[ModelGraph],
        arrivals: Optional[Sequence[float]] = None,
    ) -> StreamingResult:
        """Plan and simulate the whole stream.

        Args:
            stream: Requests in arrival order.
            arrivals: Arrival times (ms); defaults to all zero.

        Returns:
            The :class:`StreamingResult` with per-request latencies.

        Raises:
            ValueError: on empty stream or arrival-length mismatch.
        """
        if not stream:
            raise ValueError("stream must be non-empty")
        if arrivals is None:
            arrivals = [0.0] * len(stream)
        if len(arrivals) != len(stream):
            raise ValueError(
                f"expected {len(stream)} arrivals, got {len(arrivals)}"
            )

        windows: List[WindowOutcome] = []
        finish = [0.0] * len(stream)
        ready_ms = 0.0  # when the pipeline is free for the next window
        residuals: List["obs.ResidualReport"] = []
        fingerprints: List[Fingerprint] = []
        drift_events: List["obs.DriftDetected"] = []
        window_index = -1

        for start in range(0, len(stream), self.window_size):
            window_index += 1
            window_models = list(stream[start : start + self.window_size])
            window_arrivals = list(
                arrivals[start : start + self.window_size]
            )
            raw_count = len(window_models)
            group_sizes = [1] * len(window_models)
            if self.coalesce_batches:
                window_models, group_sizes = coalesce_stream(
                    window_models, max_batch=self.max_batch
                )

            # The window dispatches when the pipeline is free and its
            # last member has arrived (window-based planning needs the
            # whole window known).
            dispatch = max(ready_ms, max(window_arrivals))
            with obs.span(
                "stream.window", first_request=start, requests=raw_count
            ) as sp:
                report = self.planner.plan(window_models)
                result = self.execute(report.plan)
                sp.set(makespan_ms=result.makespan_ms)
            obs.add("windows_planned")
            obs.add("requests_coalesced", raw_count - len(window_models))
            fingerprints.append(plan_fingerprint(report.plan))

            if self.track_accuracy:
                # The prediction is the planner's own clean simulation of
                # the committed plan — exactly what the objective scored —
                # so on an unperturbed run the residuals are identically
                # zero and any deviation is real environment drift.
                predicted = execute_plan(report.plan, record=False)
                # TaskRecord.request is the execution position, so the
                # name list is permuted by the committed order.
                residual = obs.join_execution(
                    predicted,
                    result,
                    model_names=[
                        window_models[i].name for i in report.plan.order
                    ],
                    window=window_index,
                )
                residuals.append(residual)
                if self.drift_monitor is not None:
                    fired = self.drift_monitor.observe_report(residual)
                    drift_events.extend(fired)
                    if fired and self.recalibrate_on_drift:
                        self._handle_drift(residual)
            windows.append(
                WindowOutcome(
                    first_request=start,
                    num_requests=len(window_arrivals),
                    dispatch_ms=dispatch,
                    makespan_ms=result.makespan_ms,
                )
            )
            ready_ms = dispatch + result.makespan_ms

            # Map batched-request finishes back to original requests:
            # every member of a coalesced group completes when its
            # batched request does.  ``report.plan.order`` permutes the
            # (possibly coalesced) window.
            group_start = []
            acc = start
            for size in group_sizes:
                group_start.append(acc)
                acc += size
            for exec_pos, original_pos in enumerate(report.plan.order):
                done = dispatch + result.request_finish_ms[exec_pos]
                first = group_start[original_pos]
                for offset in range(group_sizes[original_pos]):
                    finish[first + offset] = done

        return StreamingResult(
            windows=windows,
            request_arrival_ms=list(arrivals),
            request_finish_ms=finish,
            residuals=residuals,
            drift_events=drift_events,
            plan_fingerprints=fingerprints,
            replans=self.replans,
        )
