"""Fig. 7: overall latency/throughput comparison on three SoCs.

Runs random multi-DNN combinations through every scheme — vanilla MNN
(serial CPU Big), Pipe-it (Big/Small CPU pipeline), Band (greedy
NPU-fallback mapping), Hetero2Pipe without contention mitigation / tail
optimization ("No C/T"), and full Hetero2Pipe — on the same simulator,
and aggregates latency, throughput and relative speedups.  The final
section extracts the Band-vs-Hetero2Pipe solution scatter of the
rightmost subplots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.band import execute_band
from ..baselines.mnn_serial import plan_mnn_serial
from ..baselines.pipe_it import plan_pipe_it
from ..core.planner import Hetero2PipePlanner, PlannerConfig
from ..hardware.soc import SOC_NAMES, SocSpec, get_soc
from ..profiling.profiler import SocProfiler
from ..runtime.executor import execute_plan
from ..workloads.generator import WorkloadSpec, sample_combinations
from .common import format_table, geomean

SCHEMES = ("mnn", "pipe_it", "band", "h2p_no_ct", "h2p")


@dataclass(frozen=True)
class SchemeResult:
    """One scheme's measurement on one workload."""

    latency_ms: float
    throughput_per_s: float


@dataclass
class WorkloadResult:
    """All schemes on one workload."""

    spec: WorkloadSpec
    by_scheme: Dict[str, SchemeResult]


@dataclass
class SocSummary:
    """Aggregates for one platform (one column group of Fig. 7)."""

    soc_name: str
    results: List[WorkloadResult]

    def mean_latency_ms(self, scheme: str) -> float:
        values = [r.by_scheme[scheme].latency_ms for r in self.results]
        return sum(values) / len(values)

    def mean_throughput(self, scheme: str) -> float:
        values = [r.by_scheme[scheme].throughput_per_s for r in self.results]
        return sum(values) / len(values)

    def speedup_over(self, scheme: str) -> Tuple[float, float, float]:
        """(geomean, max, min) speedup of full H2P over one scheme."""
        ratios = [
            r.by_scheme[scheme].latency_ms / r.by_scheme["h2p"].latency_ms
            for r in self.results
        ]
        return geomean(ratios), max(ratios), min(ratios)

    def band_scatter(self, fraction: float = 0.3) -> List[Tuple[float, float]]:
        """(band, h2p) latency pairs for a deterministic subset."""
        step = max(1, int(round(1.0 / fraction)))
        return [
            (
                r.by_scheme["band"].latency_ms,
                r.by_scheme["h2p"].latency_ms,
            )
            for r in self.results[::step]
        ]


def run_workload(
    soc: SocSpec,
    spec: WorkloadSpec,
    profiler: SocProfiler,
    planner: Hetero2PipePlanner,
    planner_no_ct: Hetero2PipePlanner,
) -> WorkloadResult:
    """Evaluate every scheme on one workload."""
    models = spec.models()

    def wrap(result) -> SchemeResult:
        return SchemeResult(
            latency_ms=result.makespan_ms,
            throughput_per_s=result.throughput_per_s,
        )

    by_scheme = {
        "mnn": wrap(execute_plan(plan_mnn_serial(soc, models, profiler))),
        "pipe_it": wrap(execute_plan(plan_pipe_it(soc, models, profiler))),
        "band": wrap(execute_band(soc, models, profiler)),
        "h2p_no_ct": wrap(execute_plan(planner_no_ct.plan(models).plan)),
        "h2p": wrap(execute_plan(planner.plan(models).plan)),
    }
    return WorkloadResult(spec=spec, by_scheme=by_scheme)


def run(
    soc_names: Sequence[str] = SOC_NAMES,
    num_combinations: int = 100,
    seed: int = 2025,
) -> List[SocSummary]:
    """Run the full Fig. 7 sweep.

    Args:
        soc_names: Platforms to evaluate (default: all three).
        num_combinations: Random combinations per platform (paper: 100).
        seed: Workload sampling seed.
    """
    specs = sample_combinations(count=num_combinations, seed=seed)
    summaries: List[SocSummary] = []
    for soc_name in soc_names:
        soc = get_soc(soc_name)
        profiler = SocProfiler(soc)
        planner = Hetero2PipePlanner(soc)
        planner_no_ct = Hetero2PipePlanner(
            soc, PlannerConfig.no_contention_or_tail()
        )
        results = [
            run_workload(soc, spec, profiler, planner, planner_no_ct)
            for spec in specs
        ]
        summaries.append(SocSummary(soc_name=soc_name, results=results))
    return summaries


def render(summaries: List[SocSummary]) -> str:
    sections: List[str] = []
    for summary in summaries:
        headers = ["scheme", "mean_latency_ms", "mean_throughput_/s"]
        body = [
            [s, summary.mean_latency_ms(s), summary.mean_throughput(s)]
            for s in SCHEMES
        ]
        table = format_table(headers, body)
        speed_lines = []
        for scheme in ("mnn", "pipe_it", "band", "h2p_no_ct"):
            gm, hi, lo = summary.speedup_over(scheme)
            speed_lines.append(
                f"  H2P speedup vs {scheme}: {gm:.2f}x geomean "
                f"(max {hi:.2f}x, min {lo:.2f}x)"
            )
        sections.append(
            f"=== {summary.soc_name} ===\n{table}\n" + "\n".join(speed_lines)
        )
    return "\n\n".join(sections)


def render_charts(summaries: List[SocSummary]) -> str:
    """Fig. 7's latency bars plus the Band-vs-H2P scatter."""
    from ..analysis.charts import grouped_bar_chart, scatter_plot

    groups = [
        (
            summary.soc_name,
            [(scheme, summary.mean_latency_ms(scheme)) for scheme in SCHEMES],
        )
        for summary in summaries
    ]
    text = grouped_bar_chart(groups, width=40, unit=" ms")
    scatter = summaries[0].band_scatter(fraction=0.3)
    if len(scatter) >= 2:
        text += (
            f"\n\nBand (x) vs Hetero2Pipe (y) latency scatter on "
            f"{summaries[0].soc_name}:\n"
            + scatter_plot(
                scatter, width=46, height=12,
                x_label="band ms", y_label="h2p ms",
            )
        )
    return text


def main(num_combinations: int = 30) -> str:
    summaries = run(num_combinations=num_combinations)
    return render(summaries) + "\n\n" + render_charts(summaries)


if __name__ == "__main__":
    print(main())
