"""Frozen pre-engine executor loop, kept as an equivalence oracle.

This is the bespoke closed-loop simulator that ``simulate_chains`` was
before the discrete-event engine (:mod:`repro.runtime.engine`) replaced
it, preserved verbatim minus observability so the golden-equivalence
tests and ``benchmarks/equivalence_guard.py`` can diff the engine
against the exact historical arithmetic.  **Do not fix bugs here** —
the point of the module is to stay byte-identical to the old behaviour,
including the known off-by-epsilon arrival scan (an arrival within
``_EPS`` of ``now`` is treated as already arrived, so a slice could
start up to 1e-9 ms before its request) and the O(n) arrival rescans
per event the engine's heap replaced.

Production code must import :func:`repro.runtime.executor.simulate_chains`;
nothing outside tests and benchmarks should touch this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..hardware.memory import MemoryDemand, MemoryGovernor
from ..hardware.soc import SocSpec
from ..profiling.slowdown import SliceWorkload, slowdown_fraction
from .engine import (
    _EPS,
    ChainTask,
    ExecutionResult,
    TaskRecord,
    TracePoint,
)


def legacy_simulate_chains(
    soc: SocSpec,
    chains: Sequence[Sequence[ChainTask]],
    arrivals: Optional[Sequence[float]] = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    trace: bool = False,
    processor_offline_ms: Optional[Dict[str, float]] = None,
) -> ExecutionResult:
    """The historical ``simulate_chains`` loop (reference only)."""
    n = len(chains)
    if arrivals is None:
        arrivals = [0.0] * n
    if len(arrivals) != n:
        raise ValueError(f"expected {n} arrival times, got {len(arrivals)}")
    proc_names = {p.name for p in soc.processors}
    capacity = soc.memory_capacity_bytes
    for chain in chains:
        for task in chain:
            if task.proc.name not in proc_names:
                raise ValueError(
                    f"task processor {task.proc.name!r} not on SoC {soc.name!r}"
                )
            if enforce_memory and task.working_set > capacity:
                raise MemoryError(
                    f"slice of request {task.request} needs "
                    f"{task.working_set / 1e6:.0f} MB alone; capacity is "
                    f"{capacity / 1e6:.0f} MB"
                )

    governor = MemoryGovernor(soc)
    next_idx = [0] * n
    prev_done = [True] * n
    proc_running: Dict[str, Optional[ChainTask]] = {
        p.name: None for p in soc.processors
    }
    request_alloc: Dict[int, float] = {}
    used_bytes = 0.0
    memory_pressure_events = 0
    now = 0.0
    records: List[TaskRecord] = []
    trace_points: List[TracePoint] = []
    busy: Dict[str, float] = {p.name: 0.0 for p in soc.processors}
    finish: List[float] = [0.0] * n
    total_tasks = sum(len(c) for c in chains)
    completed = 0
    offline = dict(processor_offline_ms or {})

    def is_offline(proc_name: str) -> bool:
        return proc_name in offline and now >= offline[proc_name] - _EPS

    def reassign_offline_heads() -> None:
        backlog: Dict[str, float] = {}
        for proc in soc.processors:
            running = proc_running[proc.name]
            backlog[proc.name] = (
                running.remaining_ms if running is not None else 0.0
            )
        for i in range(n):
            idx = next_idx[i]
            if idx >= len(chains[i]):
                continue
            task = chains[i][idx]
            if not is_offline(task.proc.name):
                backlog[task.proc.name] = (
                    backlog.get(task.proc.name, 0.0) + task.remaining_ms
                )
                continue
            candidates = []
            for proc in soc.processors:
                if is_offline(proc.name):
                    continue
                if task.workload is not None:
                    solo = task.workload.profile.exec_ms(
                        proc, task.workload.start, task.workload.end
                    )
                    if solo == float("inf"):
                        continue
                else:
                    solo = task.solo_ms
                candidates.append((backlog[proc.name] + solo, solo, proc))
            if not candidates:
                raise RuntimeError(
                    f"request {task.request}: no online processor can run "
                    f"its slice after {task.proc.name!r} went offline"
                )
            _, solo, proc = min(candidates, key=lambda c: c[0])
            backlog[proc.name] += solo
            task.proc = proc
            task.solo_ms = solo
            task.remaining_ms = solo
            if task.workload is not None:
                task.workload = SliceWorkload(
                    profile=task.workload.profile,
                    proc=proc,
                    start=task.workload.start,
                    end=task.workload.end,
                )

    def ready_task_for(proc_name: str) -> Optional[ChainTask]:
        if is_offline(proc_name):
            return None
        best: Optional[ChainTask] = None
        for i in range(n):
            idx = next_idx[i]
            if idx >= len(chains[i]) or not prev_done[i]:
                continue
            task = chains[i][idx]
            if task.proc.name != proc_name:
                continue
            if arrivals[i] > now + _EPS:
                continue
            if best is None or task.request < best.request:
                best = task
        return best

    def start_task(task: ChainTask, proc_name: str) -> None:
        nonlocal used_bytes
        task.start_ms = now
        proc_running[proc_name] = task
        used_bytes += task.working_set
        request_alloc[task.request] = (
            request_alloc.get(task.request, 0.0) + task.working_set
        )
        next_idx[task.request] += 1
        prev_done[task.request] = False

    def try_start() -> bool:
        blocked = False
        for proc in soc.processors:
            if proc_running[proc.name] is not None:
                continue
            task = ready_task_for(proc.name)
            if task is None:
                continue
            if enforce_memory and used_bytes + task.working_set > capacity:
                blocked = True
                continue
            start_task(task, proc.name)
        return blocked

    def force_start_blocked() -> bool:
        nonlocal memory_pressure_events
        for proc in soc.processors:
            if proc_running[proc.name] is not None:
                continue
            task = ready_task_for(proc.name)
            if task is None:
                continue
            start_task(task, proc.name)
            memory_pressure_events += 1
            return True
        return False

    def record_trace() -> None:
        if not trace:
            return
        demands = []
        names = []
        for proc in soc.processors:
            task = proc_running[proc.name]
            if task is None or task.workload is None:
                continue
            names.append(proc.name)
            demands.append(
                MemoryDemand(
                    processor=proc.kind,
                    bandwidth_gbps=task.workload.profile.traffic_rate_gbps(
                        task.workload.proc,
                        task.workload.start,
                        task.workload.end,
                    ),
                    footprint_bytes=task.working_set,
                )
            )
        trace_points.append(
            TracePoint(
                time_ms=now,
                bandwidth_demand_gbps=sum(d.bandwidth_gbps for d in demands),
                memory_freq_mhz=governor.select_frequency(demands),
                used_bytes=used_bytes,
                active_processors=tuple(names),
            )
        )

    while completed < total_tasks:
        if offline:
            reassign_offline_heads()
        memory_blocked = try_start()
        running = [t for t in proc_running.values() if t is not None]
        if not running and memory_blocked:
            if force_start_blocked():
                running = [t for t in proc_running.values() if t is not None]
        record_trace()
        if not running:
            future = [a for a in arrivals if a > now + _EPS]
            if not future:
                raise RuntimeError(
                    "simulation wedged: no running task and no arrival"
                )
            now = min(future)
            continue

        rates: Dict[int, float] = {}
        for task in running:
            slowdown = 0.0
            if with_contention and task.workload is not None:
                others = [
                    t.workload
                    for t in running
                    if t is not task and t.workload is not None
                ]
                slowdown = slowdown_fraction(soc, task.workload, others)
            rates[id(task)] = 1.0 + slowdown

        dt = min(task.remaining_ms * rates[id(task)] for task in running)
        future = [a - now for a in arrivals if a > now + _EPS]
        if future:
            dt = min(dt, min(future))
        fault_edges = [t - now for t in offline.values() if t > now + _EPS]
        if fault_edges:
            dt = min(dt, min(fault_edges))
        dt = max(dt, _EPS)

        for task in running:
            task.remaining_ms -= dt / rates[id(task)]
            busy[task.proc.name] += dt
        now += dt

        for proc in soc.processors:
            task = proc_running[proc.name]
            if task is not None and task.remaining_ms <= _EPS * 10:
                proc_running[proc.name] = None
                prev_done[task.request] = True
                finish[task.request] = now
                completed += 1
                if next_idx[task.request] >= len(chains[task.request]):
                    used_bytes -= request_alloc.pop(task.request, 0.0)
                traffic = 0.0
                if task.workload is not None:
                    traffic = task.workload.profile.traffic_bytes(
                        task.workload.proc,
                        task.workload.start,
                        task.workload.end,
                    )
                records.append(
                    TaskRecord(
                        request=task.request,
                        stage=task.stage,
                        processor=proc.name,
                        start_ms=task.start_ms or 0.0,
                        finish_ms=now,
                        solo_ms=task.solo_ms,
                        traffic_bytes=traffic,
                    )
                )
        record_trace()

    return ExecutionResult(
        records=records,
        makespan_ms=now,
        request_arrival_ms=list(arrivals),
        request_finish_ms=finish,
        trace=trace_points,
        processor_busy_ms=busy,
        memory_pressure_events=memory_pressure_events,
    )
