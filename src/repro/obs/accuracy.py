"""Prediction-accuracy residuals: the planner's model vs executed reality.

Hetero2Pipe's plan quality rests entirely on *predictions* — per-slice
solo latencies from the roofline profiles, Eq. 1 contention intensities,
and the simulated contention-aware makespan the objective optimizes.
This module closes the predict → execute → compare loop: it joins the
planner's predicted execution (the same deterministic simulation the
objective ran, re-played under the planner's assumptions) against the
*actual* executed :class:`~repro.runtime.executor.TaskRecord` stream and
produces typed residual records at every granularity the drift detectors
and dashboards consume:

* per **slice** (:class:`SliceResidual`) — predicted vs actual duration
  and slowdown of one ``(request, stage)`` execution;
* per **request** (:class:`RequestResidual`) — predicted vs actual
  completion latency;
* per **run/window** (:class:`ResidualReport`) — the makespan residual
  plus aggregation by processor, stage and model.

The join is exact: every executed task record must map to exactly one
predicted record (same ``(request, stage)`` key) or the join raises —
a partial join would silently hide exactly the mispredictions this
subsystem exists to expose.

This module is a data-only leaf like the rest of ``repro.obs``: the
predicted/actual inputs are duck-typed execution results (anything with
``records`` / ``request_*_ms`` / ``makespan_ms``), so nothing here
imports ``core`` or ``runtime``.  Streaming drift detection over these
residuals lives in :mod:`repro.obs.drift`; JSONL export in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .recorder import add, enabled, observe

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps obs a leaf
    from ..runtime.executor import ExecutionResult


@dataclass(frozen=True)
class SliceResidual:
    """Predicted vs actual execution of one slice.

    Attributes:
        request: Execution position (matches ``TaskRecord.request``).
        stage: Pipeline stage index.
        processor: Processor the slice ran on (actual).
        model: Model name of the request ('' when the caller has none).
        predicted_ms: Duration the planner's simulation predicted.
        actual_ms: Executed duration.
        predicted_slowdown: Slowdown the planner's model predicted
            (``predicted / solo - 1``).
        observed_slowdown: Slowdown the executor observed.
        start_ms: Actual start time (anchors trace counter tracks).
        finish_ms: Actual finish time.
    """

    request: int
    stage: int
    processor: str
    model: str
    predicted_ms: float
    actual_ms: float
    predicted_slowdown: float
    observed_slowdown: float
    start_ms: float
    finish_ms: float

    @property
    def residual_ms(self) -> float:
        """Signed prediction error: positive means slower than predicted."""
        return self.actual_ms - self.predicted_ms

    @property
    def relative_error(self) -> float:
        """Residual as a fraction of the prediction (0 when predicted 0)."""
        if self.predicted_ms <= 0:
            return 0.0
        return self.residual_ms / self.predicted_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "request": self.request,
            "stage": self.stage,
            "processor": self.processor,
            "model": self.model,
            "predicted_ms": self.predicted_ms,
            "actual_ms": self.actual_ms,
            "predicted_slowdown": self.predicted_slowdown,
            "observed_slowdown": self.observed_slowdown,
            "start_ms": self.start_ms,
            "finish_ms": self.finish_ms,
            "residual_ms": self.residual_ms,
            "relative_error": self.relative_error,
        }


@dataclass(frozen=True)
class RequestResidual:
    """Predicted vs actual completion latency of one request."""

    request: int
    model: str
    predicted_ms: float
    actual_ms: float

    @property
    def residual_ms(self) -> float:
        return self.actual_ms - self.predicted_ms

    @property
    def relative_error(self) -> float:
        if self.predicted_ms <= 0:
            return 0.0
        return self.residual_ms / self.predicted_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "request": self.request,
            "model": self.model,
            "predicted_ms": self.predicted_ms,
            "actual_ms": self.actual_ms,
            "residual_ms": self.residual_ms,
            "relative_error": self.relative_error,
        }


@dataclass(frozen=True)
class ResidualSummary:
    """Aggregate residual statistics over one group of slices."""

    count: int
    mean_residual_ms: float
    mean_abs_residual_ms: float
    mean_relative_error: float
    worst_relative_error: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean_residual_ms": self.mean_residual_ms,
            "mean_abs_residual_ms": self.mean_abs_residual_ms,
            "mean_relative_error": self.mean_relative_error,
            "worst_relative_error": self.worst_relative_error,
        }


def summarize(residuals: Sequence[SliceResidual]) -> ResidualSummary:
    """Aggregate a group of slice residuals."""
    if not residuals:
        return ResidualSummary(0, 0.0, 0.0, 0.0, 0.0)
    n = len(residuals)
    rel = [r.relative_error for r in residuals]
    worst = max(rel, key=abs)
    return ResidualSummary(
        count=n,
        mean_residual_ms=sum(r.residual_ms for r in residuals) / n,
        mean_abs_residual_ms=sum(abs(r.residual_ms) for r in residuals) / n,
        mean_relative_error=sum(rel) / n,
        worst_relative_error=worst,
    )


@dataclass(frozen=True)
class ResidualReport:
    """One run's (or one streaming window's) full residual join."""

    slices: Tuple[SliceResidual, ...]
    requests: Tuple[RequestResidual, ...]
    predicted_makespan_ms: float
    actual_makespan_ms: float
    window: int = -1

    @property
    def makespan_residual_ms(self) -> float:
        return self.actual_makespan_ms - self.predicted_makespan_ms

    @property
    def makespan_relative_error_frac(self) -> float:
        if self.predicted_makespan_ms <= 0:
            return 0.0
        return self.makespan_residual_ms / self.predicted_makespan_ms

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    def overall(self) -> ResidualSummary:
        return summarize(self.slices)

    def by_processor(self) -> Dict[str, ResidualSummary]:
        return self._grouped(lambda r: r.processor)

    def by_stage(self) -> Dict[int, ResidualSummary]:
        return self._grouped(lambda r: r.stage)

    def by_model(self) -> Dict[str, ResidualSummary]:
        groups = self._grouped(lambda r: r.model)
        groups.pop("", None)
        return groups

    def _grouped(self, key) -> Dict:  # type: ignore[no-untyped-def]
        groups: Dict[object, List[SliceResidual]] = {}
        for residual in self.slices:
            groups.setdefault(key(residual), []).append(residual)
        return {k: summarize(v) for k, v in sorted(groups.items())}

    def to_dict(self) -> Dict[str, object]:
        """Nested document form (the replay round-trip format)."""
        return {
            "window": self.window,
            "predicted_makespan_ms": self.predicted_makespan_ms,
            "actual_makespan_ms": self.actual_makespan_ms,
            "makespan_residual_ms": self.makespan_residual_ms,
            "slices": [s.to_dict() for s in self.slices],
            "requests": [r.to_dict() for r in self.requests],
        }

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat telemetry rows (one JSONL line each; see obs.export)."""
        rows: List[Dict[str, object]] = []
        summary = self.overall().to_dict()
        summary.update(
            {
                "type": "window_summary",
                "window": self.window,
                "predicted_makespan_ms": self.predicted_makespan_ms,
                "actual_makespan_ms": self.actual_makespan_ms,
                "makespan_residual_ms": self.makespan_residual_ms,
                "makespan_relative_error_frac": self.makespan_relative_error_frac,
            }
        )
        rows.append(summary)
        for s in self.slices:
            row = s.to_dict()
            row.update({"type": "slice_residual", "window": self.window})
            rows.append(row)
        for r in self.requests:
            row = r.to_dict()
            row.update({"type": "request_residual", "window": self.window})
            rows.append(row)
        return rows


def _slice_residual_from_dict(doc: Dict[str, object]) -> SliceResidual:
    return SliceResidual(
        request=int(doc["request"]),  # type: ignore[arg-type]
        stage=int(doc["stage"]),  # type: ignore[arg-type]
        processor=str(doc["processor"]),
        model=str(doc["model"]),
        predicted_ms=float(doc["predicted_ms"]),  # type: ignore[arg-type]
        actual_ms=float(doc["actual_ms"]),  # type: ignore[arg-type]
        predicted_slowdown=float(doc["predicted_slowdown"]),  # type: ignore[arg-type]
        observed_slowdown=float(doc["observed_slowdown"]),  # type: ignore[arg-type]
        start_ms=float(doc["start_ms"]),  # type: ignore[arg-type]
        finish_ms=float(doc["finish_ms"]),  # type: ignore[arg-type]
    )


def report_from_dict(doc: Dict[str, object]) -> ResidualReport:
    """Rebuild a :class:`ResidualReport` from :meth:`ResidualReport.to_dict`."""
    return ResidualReport(
        slices=tuple(
            _slice_residual_from_dict(s)  # type: ignore[arg-type]
            for s in doc.get("slices", [])  # type: ignore[union-attr]
        ),
        requests=tuple(
            RequestResidual(
                request=int(r["request"]),
                model=str(r["model"]),
                predicted_ms=float(r["predicted_ms"]),
                actual_ms=float(r["actual_ms"]),
            )
            for r in doc.get("requests", [])  # type: ignore[union-attr]
        ),
        predicted_makespan_ms=float(doc["predicted_makespan_ms"]),  # type: ignore[arg-type]
        actual_makespan_ms=float(doc["actual_makespan_ms"]),  # type: ignore[arg-type]
        window=int(doc.get("window", -1)),  # type: ignore[arg-type]
    )


def join_execution(
    predicted: "ExecutionResult",
    actual: "ExecutionResult",
    model_names: Optional[Sequence[str]] = None,
    window: int = -1,
) -> ResidualReport:
    """Join a predicted execution against the executed one.

    ``predicted`` is the planner's model of the run — the same
    deterministic simulation the objective scored, produced by e.g.
    ``execute_plan(report.plan, record=False)`` under the planner's
    assumptions.  ``actual`` is what really ran (possibly perturbed,
    throttled, or co-scheduled differently).  Both must describe the
    same plan: the join is keyed by ``(request, stage)`` and is
    total — every executed task record maps to exactly one predicted
    record.

    Args:
        predicted: The planner's simulated execution of the plan.
        actual: The executed run.
        model_names: Model name per execution position (``request``
            index); omitted names render as ''.
        window: Streaming window index for per-window telemetry.

    Returns:
        The :class:`ResidualReport`.

    Raises:
        ValueError: when the two runs do not describe the same plan —
            duplicate slice keys, executed slices with no predicted
            counterpart (or vice versa), or request-count mismatch.
            Requests the actual run dropped or cancelled are exempt:
            their predicted slices never ran by design, and they are
            omitted from the request-level residuals.
    """
    predicted_by: Dict[Tuple[int, int], object] = {}
    for rec in predicted.records:
        key = (rec.request, rec.stage)
        if key in predicted_by:
            raise ValueError(f"predicted run has duplicate slice {key}")
        predicted_by[key] = rec

    if predicted.num_requests != actual.num_requests:
        raise ValueError(
            f"request count mismatch: predicted {predicted.num_requests}, "
            f"actual {actual.num_requests}"
        )

    def name_of(request: int) -> str:
        if model_names is not None and 0 <= request < len(model_names):
            return model_names[request]
        return ""

    slices: List[SliceResidual] = []
    seen: set = set()  # of (request, stage) keys
    for rec in actual.records:
        key = (rec.request, rec.stage)
        if key in seen:
            raise ValueError(f"actual run has duplicate slice {key}")
        seen.add(key)
        pred = predicted_by.get(key)
        if pred is None:
            raise ValueError(
                f"executed slice {key} has no predicted counterpart; "
                "predicted and actual runs describe different plans"
            )
        slices.append(
            SliceResidual(
                request=rec.request,
                stage=rec.stage,
                processor=rec.processor,
                model=name_of(rec.request),
                predicted_ms=pred.duration_ms,  # type: ignore[attr-defined]
                actual_ms=rec.duration_ms,
                predicted_slowdown=pred.slowdown,  # type: ignore[attr-defined]
                observed_slowdown=rec.slowdown,
                start_ms=rec.start_ms,
                finish_ms=rec.finish_ms,
            )
        )
    # Requests the actual run dropped (deadline) or cancelled executed
    # no slices and have no completion latency: their predicted slices
    # legitimately never ran, and they contribute no request residual.
    removed = set(getattr(actual, "dropped_requests", ()) or ()) | set(
        getattr(actual, "cancelled_requests", ()) or ()
    )
    unmatched = {
        key for key in set(predicted_by) - seen if key[0] not in removed
    }
    if unmatched:
        raise ValueError(
            f"predicted slices never executed: {sorted(unmatched)}"
        )

    requests = tuple(
        RequestResidual(
            request=i,
            model=name_of(i),
            predicted_ms=predicted.request_latency_ms(i),
            actual_ms=actual.request_latency_ms(i),
        )
        for i in range(actual.num_requests)
        if i not in removed
    )

    report = ResidualReport(
        slices=tuple(sorted(slices, key=lambda s: (s.request, s.stage))),
        requests=requests,
        predicted_makespan_ms=predicted.makespan_ms,
        actual_makespan_ms=actual.makespan_ms,
        window=window,
    )
    if enabled():
        add("residual_slices_joined", report.num_slices)
        add("residual_joins")
        for s in report.slices:
            observe("slice_residual_ms", s.residual_ms)
            observe("slice_relative_error", s.relative_error)
    return report
