"""Simulated heterogeneous mobile SoC substrate."""

from .processor import (
    ProcessorKind,
    ProcessorSpec,
    make_cpu_big,
    make_cpu_small,
    make_gpu,
    make_npu,
)
from .soc import (
    DEFAULT_COUPLING,
    SOC_BUILDERS,
    SOC_NAMES,
    SocSpec,
    all_socs,
    get_soc,
    make_kirin990,
    make_snapdragon778g,
    make_snapdragon870,
)
from .energy import (
    DEFAULT_POWER,
    DRAM_PJ_PER_BYTE,
    EnergyBreakdown,
    PowerSpec,
    estimate_energy,
)
from .memory import MemoryDemand, MemoryFootprintTracker, MemoryGovernor
from .thermal import ThermalState, steady_state, sustained_frequency_scale

__all__ = [
    "ProcessorKind",
    "ProcessorSpec",
    "make_cpu_big",
    "make_cpu_small",
    "make_gpu",
    "make_npu",
    "DEFAULT_COUPLING",
    "SOC_BUILDERS",
    "SOC_NAMES",
    "SocSpec",
    "all_socs",
    "get_soc",
    "make_kirin990",
    "make_snapdragon778g",
    "make_snapdragon870",
    "DEFAULT_POWER",
    "DRAM_PJ_PER_BYTE",
    "EnergyBreakdown",
    "PowerSpec",
    "estimate_energy",
    "MemoryDemand",
    "MemoryFootprintTracker",
    "MemoryGovernor",
    "ThermalState",
    "steady_state",
    "sustained_frequency_scale",
]
