"""Fig. 10: intra-cluster CPU contention (Appendix A remark).

Co-executing YOLOv4 and VGG16 on *split halves of the same cluster*
("BB-BB": two Big cores each; "SS-SS": two Small cores each; "BBB-B",
"SSS-S": 3+1 splits) causes conflicting L2 misses and up to ~70 %
slowdown on the performance cores — the measurement that justifies
Hetero2Pipe's whole-cluster scheduling granularity.

The split itself also halves each workload's core count, so the total
penalty is the core-sharing factor times the contention inflation; the
paper's figure (and this reproduction) reports the *contention* part —
the slowdown relative to running alone on the same reduced core set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hardware.soc import SocSpec, get_soc
from ..models.zoo import get_model
from ..profiling.profiler import SocProfiler
from ..profiling.slowdown import SliceWorkload, intra_cluster_slowdown
from .common import format_table

#: Fig. 10 configurations: (label, cluster attribute, core split).
DEFAULT_CONFIGS: Tuple[Tuple[str, str, Tuple[int, int]], ...] = (
    ("BB-BB", "cpu_big", (2, 2)),
    ("BBB-B", "cpu_big", (3, 1)),
    ("SS-SS", "cpu_small", (2, 2)),
    ("SSS-S", "cpu_small", (3, 1)),
)

#: The co-running pair of Fig. 10.
DEFAULT_PAIR = ("yolov4", "vgg16")


@dataclass(frozen=True)
class IntraClusterRow:
    """One split configuration's mutual contention slowdown."""

    label: str
    cluster: str
    victim_slowdown_pct: float
    partner_slowdown_pct: float


def run(
    soc: Optional[SocSpec] = None,
    pair: Tuple[str, str] = DEFAULT_PAIR,
) -> List[IntraClusterRow]:
    """Measure intra-cluster contention for each split configuration."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    victim_model, partner_model = (get_model(n) for n in pair)
    rows: List[IntraClusterRow] = []
    for label, cluster_name, (victim_cores, partner_cores) in DEFAULT_CONFIGS:
        proc = getattr(soc, cluster_name)
        victim_profile = profiler.profile(victim_model)
        partner_profile = profiler.profile(partner_model)
        victim = SliceWorkload(
            profile=victim_profile,
            proc=proc,
            start=0,
            end=victim_profile.model.num_layers - 1,
        )
        partner = SliceWorkload(
            profile=partner_profile,
            proc=proc,
            start=0,
            end=partner_profile.model.num_layers - 1,
        )
        rows.append(
            IntraClusterRow(
                label=label,
                cluster=cluster_name,
                victim_slowdown_pct=intra_cluster_slowdown(
                    soc, victim, partner, victim_cores, partner_cores
                )
                * 100.0,
                partner_slowdown_pct=intra_cluster_slowdown(
                    soc, partner, victim, partner_cores, victim_cores
                )
                * 100.0,
            )
        )
    return rows


def render(rows: List[IntraClusterRow]) -> str:
    headers = ["config", "cluster", "yolov4_slowdown_%", "vgg16_slowdown_%"]
    body = [
        [r.label, r.cluster, r.victim_slowdown_pct, r.partner_slowdown_pct]
        for r in rows
    ]
    return format_table(headers, body)


def main() -> str:
    return render(run())


if __name__ == "__main__":
    print(main())
