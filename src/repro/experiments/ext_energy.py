"""Extension experiment: energy comparison across scheduling schemes.

Not a paper figure — the paper motivates energy efficiency but reports
no Joules.  This experiment applies the documented mobile power model
(:mod:`repro.hardware.energy`) to the Fig. 7 scheme line-up, showing
that contention-aware pipelining saves energy as well as time: the
accelerators are cheaper per operation *and* the high-idle-power window
(screen-on, rails up) shrinks with the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.band import execute_band
from ..baselines.mnn_serial import plan_mnn_serial
from ..baselines.pipe_it import plan_pipe_it
from ..core.planner import Hetero2PipePlanner
from ..hardware.energy import EnergyBreakdown, estimate_energy
from ..hardware.soc import SocSpec, get_soc
from ..profiling.profiler import SocProfiler
from ..runtime.executor import execute_plan
from ..workloads.generator import sample_combinations
from .common import format_table


@dataclass(frozen=True)
class EnergyRow:
    """Mean per-inference energy and latency of one scheme."""

    scheme: str
    mean_latency_ms: float
    mean_energy_mj: float
    mean_energy_per_inference_mj: float


def run(
    soc: Optional[SocSpec] = None,
    num_combinations: int = 20,
    seed: int = 2025,
) -> List[EnergyRow]:
    """Latency + energy of every scheme over random combinations."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    planner = Hetero2PipePlanner(soc)
    totals: Dict[str, List] = {
        name: [0.0, 0.0, 0.0]  # latency, energy, energy/inference
        for name in ("mnn", "pipe_it", "band", "h2p")
    }
    specs = sample_combinations(count=num_combinations, seed=seed)
    for spec in specs:
        models = spec.models()
        results = {
            "mnn": execute_plan(plan_mnn_serial(soc, models, profiler)),
            "pipe_it": execute_plan(plan_pipe_it(soc, models, profiler)),
            "band": execute_band(soc, models, profiler),
            "h2p": execute_plan(planner.plan(models).plan),
        }
        for name, result in results.items():
            energy = estimate_energy(result, soc)
            totals[name][0] += result.makespan_ms
            totals[name][1] += energy.total_mj
            totals[name][2] += energy.per_inference_mj(len(models))

    n = len(specs)
    return [
        EnergyRow(
            scheme=name,
            mean_latency_ms=latency / n,
            mean_energy_mj=energy / n,
            mean_energy_per_inference_mj=per_inf / n,
        )
        for name, (latency, energy, per_inf) in totals.items()
    ]


def render(rows: Sequence[EnergyRow]) -> str:
    headers = ["scheme", "mean_latency_ms", "mean_energy_mJ", "mJ_per_inference"]
    body = [
        [r.scheme, r.mean_latency_ms, r.mean_energy_mj,
         r.mean_energy_per_inference_mj]
        for r in sorted(rows, key=lambda r: r.mean_energy_per_inference_mj)
    ]
    return format_table(headers, body)


def main(num_combinations: int = 10) -> str:
    return render(run(num_combinations=num_combinations))


if __name__ == "__main__":
    print(main())
