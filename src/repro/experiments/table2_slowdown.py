"""Table II: pairwise co-execution slowdown of SqueezeNet/BERT/ViT.

The paper co-runs model pairs on (CPU Big, GPU) and reports solo time,
co-execution time and the resulting slowdown percentage, demonstrating
Observation 3: tiny SqueezeNet imposes *more* slowdown on its peer than
the 70x-larger ViT does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hardware.soc import SocSpec, get_soc
from ..models.zoo import get_model
from ..profiling.profiler import SocProfiler
from ..profiling.slowdown import SliceWorkload, pairwise_slowdown_table
from .common import format_table

#: The pairings of Table II: (model_on_cpu, model_on_gpu).
DEFAULT_PAIRS = (
    ("squeezenet", "bert"),
    ("vit", "bert"),
)


@dataclass(frozen=True)
class SlowdownRow:
    """One victim's solo/co-execution comparison."""

    model: str
    processor: str
    solo_ms: float
    co_ms: float

    @property
    def slowdown_pct(self) -> float:
        return (self.co_ms / self.solo_ms - 1.0) * 100.0


def run(
    soc: Optional[SocSpec] = None,
    pairs: Tuple[Tuple[str, str], ...] = DEFAULT_PAIRS,
) -> List[SlowdownRow]:
    """Compute Table II on one SoC."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    rows: List[SlowdownRow] = []
    for cpu_model, gpu_model in pairs:
        cpu_profile = profiler.profile(get_model(cpu_model))
        gpu_profile = profiler.profile(get_model(gpu_model))
        cpu_work = SliceWorkload(
            profile=cpu_profile,
            proc=soc.cpu_big,
            start=0,
            end=cpu_profile.model.num_layers - 1,
        )
        gpu_work = SliceWorkload(
            profile=gpu_profile,
            proc=soc.gpu,
            start=0,
            end=gpu_profile.model.num_layers - 1,
        )
        s_cpu, s_gpu = pairwise_slowdown_table(soc, cpu_work, gpu_work)
        solo_cpu = cpu_work.solo_ms()
        solo_gpu = gpu_work.solo_ms()
        rows.append(
            SlowdownRow(
                model=cpu_model,
                processor="cpu_big",
                solo_ms=solo_cpu,
                co_ms=solo_cpu * (1 + s_cpu),
            )
        )
        rows.append(
            SlowdownRow(
                model=gpu_model,
                processor="gpu",
                solo_ms=solo_gpu,
                co_ms=solo_gpu * (1 + s_gpu),
            )
        )
    return rows


def render(rows: List[SlowdownRow]) -> str:
    headers = ["model", "processor", "solo_ms", "co_ms", "slowdown_%"]
    body = [
        [r.model, r.processor, r.solo_ms, r.co_ms, r.slowdown_pct]
        for r in rows
    ]
    return format_table(headers, body)


def main() -> str:
    return render(run())


if __name__ == "__main__":
    print(main())
