"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

Text mimics the compiler convention (``path:line:col: CODE message``)
so editors and CI annotations pick locations up for free; JSON carries
the same fields plus a summary block under the stable
``hetero2pipe.lint.v1`` schema (matching the other CLI verbs); SARIF
2.1.0 lets GitHub code scanning render findings as inline annotations.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Sequence

from .engine import RULE_REGISTRY, Finding

#: SARIF constants — the shape tests assert against.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
JSON_SCHEMA = "hetero2pipe.lint.v1"

#: Engine-level codes without a registry entry, for the SARIF rule table.
_SYNTHETIC_RULES: Dict[str, str] = {
    "H2P000": "file fails to parse (syntax error)",
    "H2P300": "planner crash or unmapped validator code",
}


def render_text(findings: Sequence[Finding]) -> str:
    """One finding per line plus a per-code summary footer."""
    if not findings:
        return "lint: clean (0 findings)"
    lines = [str(f) for f in findings]
    counts = Counter(f.code for f in findings)
    summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
    lines.append(f"lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    baseline: Optional[Dict[str, object]] = None,
) -> str:
    """Stable ``hetero2pipe.lint.v1`` document.

    ``findings`` lists what the caller should act on (post-baseline
    when a ratchet is active); ``baseline`` carries the ratchet summary
    block produced by :mod:`repro.lint.baseline` when one was applied.
    """
    counts: Dict[str, int] = dict(
        sorted(Counter(f.code for f in findings).items())
    )
    document: Dict[str, object] = {
        "schema": JSON_SCHEMA,
        "findings": [f.to_dict() for f in findings],
        "counts": counts,
        "total": len(findings),
    }
    if baseline is not None:
        document["baseline"] = baseline
    return json.dumps(document, indent=2, sort_keys=True)


def _rule_table(codes: Sequence[str]) -> List[Dict[str, object]]:
    """SARIF ``tool.driver.rules`` for every code that appears."""
    table: List[Dict[str, object]] = []
    for code in sorted(set(codes)):
        rule = RULE_REGISTRY.get(code)
        if rule is not None:
            description = rule.rationale or rule.name
            name = rule.name
        else:
            description = _SYNTHETIC_RULES.get(
                code, "engine- or sweep-level finding"
            )
            name = code
        table.append(
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": description},
            }
        )
    return table


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 document (GitHub code-scanning compatible).

    SARIF columns are 1-based where the engine's are 0-based; virtual
    paths (``plan://...``) pass through as opaque URIs.
    """
    codes = [f.code for f in findings]
    rules = _rule_table(codes)
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for f in findings:
        results.append(
            {
                "ruleId": f.code,
                "ruleIndex": rule_index[f.code],
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": max(1, f.line),
                                "startColumn": f.col + 1,
                                "endLine": max(1, f.last_line),
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "hetero2pipe-lint",
                        "informationUri": (
                            "https://github.com/hetero2pipe/repro"
                            "/blob/main/docs/STATIC_ANALYSIS.md"
                        ),
                        "version": "1.0.0",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def exit_code(findings: Sequence[Finding]) -> int:
    """0 clean, 1 findings — the contract CI relies on."""
    return 1 if findings else 0


__all__: List[str] = [
    "JSON_SCHEMA",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "exit_code",
    "render_json",
    "render_sarif",
    "render_text",
]
