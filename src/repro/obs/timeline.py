"""Streaming timelines: fold the engine's event log into time-series.

PR 8's :class:`~repro.runtime.engine.DiscreteEventEngine` emits a full
exogenous-event log (arrival / task_ready / departure / preemption /
cancellation / rate_change) but every latency and queueing number in the
repo is still computed *post hoc* from a finished ``ExecutionResult``.
This module is the live consumer: a :class:`TimelineAggregator` folds
the event stream — incrementally, as ``step()`` produces it — into the
derived time-series a serving front-end watches:

* per-processor **busy/idle utilization** (busy time integrates exactly
  to the engine's ``processor_busy_ms`` accounting — a test pins this);
* instantaneous and time-averaged **queue depth** (arrived, unfinished,
  not currently running) and in-system occupancy ``N(t)``;
* **backlog age** — how stale the oldest waiting request is;
* **throughput**, **completion-latency percentiles** (via the mergeable
  :class:`~repro.obs.sketch.QuantileSketch`) and the **inter-arrival
  coefficient of variation**.

Aggregation is windowed: tumbling windows of ``window_ms`` close as the
stream crosses each boundary, emitting one typed :class:`WindowStats`
row per window (the JSONL/trace/dashboard record; sliding multi-window
views — e.g. SLO burn rates — are built one layer up by folding trailing
``WindowStats`` rows, see :mod:`repro.obs.slo`).

As a self-check the aggregator verifies **Little's law**: the
time-average occupancy ``L`` must equal arrival rate ``λ`` times mean
sojourn ``W``.  Over a complete horizon this is an exact identity
(both sides equal ``Σ sojourn / T``), so a violation beyond float
tolerance means the fold itself dropped or double-counted state — it
emits a typed :class:`~repro.obs.events.TimelineDiagnostic` through the
provenance log.

Like the rest of ``repro.obs`` this module is a data-only leaf: events
are duck-typed (anything with ``time_ms``/``kind``/``request``/
``processor``/``detail``), so nothing here imports ``runtime``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from .events import TimelineDiagnostic
from .recorder import emit, enabled
from .sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps obs a leaf
    from ..runtime.engine import Event

#: Relative tolerance of the Little's-law identity check.  The two
#: sides are the same sum accumulated in different orders, so only
#: float rounding separates them on a correct fold.
LITTLES_LAW_TOLERANCE_FRAC = 1e-6


@dataclass(frozen=True)
class WindowStats:
    """One tumbling window's derived time-series row.

    Attributes:
        window: Window index (0-based).
        start_ms: Inclusive window start on the simulated clock.
        end_ms: Exclusive window end (the close boundary; the final
            partial window closes at the stream's last timestamp).
        arrivals: Requests that arrived inside the window.
        completions: Requests whose final stage departed inside it.
        drops: Deadline drops (cancellations with detail ``deadline``).
        cancellations: Non-deadline cancellations.
        utilization_frac: Busy fraction per processor over the window.
        mean_queue_depth: Time-averaged waiting-request count.
        queue_depth_end: Instantaneous waiting count at the boundary.
        mean_in_system: Time-averaged in-system occupancy (Little's L).
        backlog_age_ms: Age of the oldest in-system request at the
            boundary; None when the system is empty.
        throughput_per_s: Completions per second of window span.
        interarrival_cv: Coefficient of variation of the inter-arrival
            gaps seen so far (cumulative; None until two gaps exist —
            1.0 is Poisson, 0.0 periodic).
        p50_ms / p95_ms / p99_ms: Completion-latency percentiles of the
            window's completions (sketch estimates; None when the
            window completed nothing).
    """

    window: int
    start_ms: float
    end_ms: float
    arrivals: int
    completions: int
    drops: int
    cancellations: int
    utilization_frac: Dict[str, float]
    mean_queue_depth: float
    queue_depth_end: int
    mean_in_system: float
    backlog_age_ms: Optional[float]
    throughput_per_s: float
    interarrival_cv: Optional[float]
    p50_ms: Optional[float]
    p95_ms: Optional[float]
    p99_ms: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "drops": self.drops,
            "cancellations": self.cancellations,
            "utilization_frac": dict(sorted(self.utilization_frac.items())),
            "mean_queue_depth": self.mean_queue_depth,
            "queue_depth_end": self.queue_depth_end,
            "mean_in_system": self.mean_in_system,
            "backlog_age_ms": self.backlog_age_ms,
            "throughput_per_s": self.throughput_per_s,
            "interarrival_cv": self.interarrival_cv,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
        }


@dataclass(frozen=True)
class LittlesLawCheck:
    """The full-horizon ``L = λW`` self-check result.

    ``observed_l`` is the folded time-average occupancy ``∫N(t)dt / T``;
    ``expected_l`` is ``λW`` computed from per-request sojourns (exited
    requests use their exit time, still-in-system requests the horizon
    end).  On a correct fold the two are the same sum.
    """

    observed_l: float
    expected_l: float
    arrival_rate_per_ms: float
    mean_sojourn_ms: float
    relative_gap_frac: float
    tolerance_frac: float
    ok: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "observed_l": self.observed_l,
            "expected_l": self.expected_l,
            "arrival_rate_per_ms": self.arrival_rate_per_ms,
            "mean_sojourn_ms": self.mean_sojourn_ms,
            "relative_gap_frac": self.relative_gap_frac,
            "tolerance_frac": self.tolerance_frac,
            "ok": self.ok,
        }


class TimelineAggregator:
    """Fold an engine event stream into windowed time-series rows.

    Feed every processed event (in stream order) to :meth:`observe`;
    each call returns the :class:`WindowStats` rows for any windows the
    stream just crossed.  Call :meth:`finish` once the run is done to
    close the final partial window.

    Args:
        processors: Processor names of the SoC (the utilization keys).
        stages_per_request: Chain length per request — the fold needs
            to know which departure is a request's *last* to track
            completion (the event stream itself does not say).
        window_ms: Tumbling window width on the simulated clock.
        relative_accuracy: Latency-sketch accuracy (see
            :class:`~repro.obs.sketch.QuantileSketch`).

    Raises:
        ValueError: on a non-positive window or empty processor list.
    """

    def __init__(
        self,
        processors: Sequence[str],
        stages_per_request: Sequence[int],
        window_ms: float,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> None:
        if window_ms <= 0:
            raise ValueError(f"window must be > 0 ms, got {window_ms}")
        if not processors:
            raise ValueError("need at least one processor name")
        self._processors = tuple(processors)
        self._stages = list(stages_per_request)
        self._window_ms = float(window_ms)
        self._relative_accuracy = relative_accuracy

        # --- fold state
        self._now_ms = 0.0
        self._running_procs: Set[str] = set()
        self._running_requests: Set[int] = set()
        self._in_system: Dict[int, float] = {}  # request -> arrival_ms
        self._departures_seen: Dict[int, int] = {}
        self._last_arrival_ms: Optional[float] = None
        self._gap_count = 0
        self._gap_sum_ms = 0.0
        self._gap_sumsq = 0.0

        # --- cumulative accumulators (full horizon)
        self._busy_total_ms: Dict[str, float] = {p: 0.0 for p in processors}
        self._n_integral_total = 0.0
        self._sojourn_sum_ms = 0.0
        self._exited = 0
        self._arrivals_total = 0
        self._completions_total = 0
        self._drops_total = 0
        self._cancellations_total = 0
        self.latency_sketch = QuantileSketch(relative_accuracy)

        # --- per-window accumulators
        self._window_index = 0
        self._window_start_ms = 0.0
        self._window_busy_ms: Dict[str, float] = {p: 0.0 for p in processors}
        self._window_depth_integral = 0.0
        self._window_n_integral = 0.0
        self._window_arrivals = 0
        self._window_completions = 0
        self._window_drops = 0
        self._window_cancellations = 0
        self._window_sketch = QuantileSketch(relative_accuracy)
        self._finished = False

    # ------------------------------------------------------- public API

    @property
    def now_ms(self) -> float:
        return self._now_ms

    @property
    def window_ms(self) -> float:
        return self._window_ms

    def busy_ms(self, processor: str) -> float:
        """Cumulative busy time folded for one processor."""
        return self._busy_total_ms.get(processor, 0.0)

    def queue_depth(self) -> int:
        """Instantaneous waiting-request count (arrived, not running)."""
        return len(self._in_system) - len(
            self._running_requests & set(self._in_system)
        )

    def observe(self, event: "Event") -> List[WindowStats]:
        """Fold one event; returns any windows the stream just closed.

        Raises:
            RuntimeError: when called after :meth:`finish`.
            ValueError: on an event that moves time backwards.
        """
        if self._finished:
            raise RuntimeError("aggregator already finished")
        t = event.time_ms
        if t < self._now_ms - 1e-9:
            raise ValueError(
                f"event at {t} ms is before the fold clock {self._now_ms} ms"
            )
        closed = self._advance(max(t, self._now_ms))
        self._apply(event)
        return closed

    def observe_many(self, events: Sequence["Event"]) -> List[WindowStats]:
        closed: List[WindowStats] = []
        for event in events:
            closed.extend(self.observe(event))
        return closed

    def finish(self, now_ms: Optional[float] = None) -> List[WindowStats]:
        """Close the final partial window at ``now_ms`` (default: the
        fold clock) and freeze the aggregator."""
        if self._finished:
            return []
        end_ms = self._now_ms if now_ms is None else max(now_ms, self._now_ms)
        closed = self._advance(end_ms)
        if end_ms > self._window_start_ms + 1e-12 or not closed:
            closed.append(self._close_window(end_ms))
        self._finished = True
        return closed

    def littles_law(
        self, tolerance_frac: float = LITTLES_LAW_TOLERANCE_FRAC
    ) -> LittlesLawCheck:
        """Check ``L = λW`` over the folded horizon (see module docs).

        Still-in-system requests contribute their partial sojourn
        (horizon end minus arrival), which keeps the identity exact at
        any stopping point.  A violation beyond ``tolerance_frac``
        emits a :class:`~repro.obs.events.TimelineDiagnostic`.
        """
        horizon_ms = self._now_ms
        if horizon_ms <= 0 or self._arrivals_total == 0:
            return LittlesLawCheck(0.0, 0.0, 0.0, 0.0, 0.0, tolerance_frac, True)
        partial_ms = sum(
            horizon_ms - arrival for arrival in self._in_system.values()
        )
        sojourn_sum_ms = self._sojourn_sum_ms + partial_ms
        observed_l = self._n_integral_total / horizon_ms
        arrival_rate = self._arrivals_total / horizon_ms
        mean_sojourn_ms = sojourn_sum_ms / self._arrivals_total
        expected_l = arrival_rate * mean_sojourn_ms
        scale = max(abs(observed_l), abs(expected_l), 1e-12)
        gap_frac = abs(observed_l - expected_l) / scale
        ok = gap_frac <= tolerance_frac
        check = LittlesLawCheck(
            observed_l=observed_l,
            expected_l=expected_l,
            arrival_rate_per_ms=arrival_rate,
            mean_sojourn_ms=mean_sojourn_ms,
            relative_gap_frac=gap_frac,
            tolerance_frac=tolerance_frac,
            ok=ok,
        )
        if not ok and enabled():
            emit(
                TimelineDiagnostic(
                    check="littles_law",
                    observed=observed_l,
                    expected=expected_l,
                    relative_gap_frac=gap_frac,
                    tolerance_frac=tolerance_frac,
                    time_ms=horizon_ms,
                )
            )
        return check

    # ------------------------------------------------------ fold internals

    def _advance(self, t: float) -> List[WindowStats]:
        """Integrate state up to ``t``, closing any crossed windows."""
        closed: List[WindowStats] = []
        while t >= self._window_start_ms + self._window_ms:
            boundary = self._window_start_ms + self._window_ms
            self._integrate_to(boundary)
            closed.append(self._close_window(boundary))
        self._integrate_to(t)
        return closed

    def _integrate_to(self, t: float) -> None:
        dt = t - self._now_ms
        if dt <= 0:
            return
        waiting = self.queue_depth()
        in_system = len(self._in_system)
        for proc in self._running_procs:
            self._window_busy_ms[proc] += dt
            self._busy_total_ms[proc] += dt
        self._window_depth_integral += waiting * dt
        self._window_n_integral += in_system * dt
        self._n_integral_total += in_system * dt
        self._now_ms = t

    def _close_window(self, end_ms: float) -> WindowStats:
        span_ms = end_ms - self._window_start_ms
        safe_span = max(span_ms, 1e-12)
        backlog_age_ms: Optional[float] = None
        if self._in_system:
            backlog_age_ms = end_ms - min(self._in_system.values())
        if self._window_sketch.count:
            p50: Optional[float] = self._window_sketch.p50
            p95: Optional[float] = self._window_sketch.p95
            p99: Optional[float] = self._window_sketch.p99
        else:
            p50 = p95 = p99 = None
        stats = WindowStats(
            window=self._window_index,
            start_ms=self._window_start_ms,
            end_ms=end_ms,
            arrivals=self._window_arrivals,
            completions=self._window_completions,
            drops=self._window_drops,
            cancellations=self._window_cancellations,
            utilization_frac={
                proc: self._window_busy_ms[proc] / safe_span
                for proc in self._processors
            },
            mean_queue_depth=self._window_depth_integral / safe_span,
            queue_depth_end=self.queue_depth(),
            mean_in_system=self._window_n_integral / safe_span,
            backlog_age_ms=backlog_age_ms,
            throughput_per_s=self._window_completions / (safe_span / 1e3),
            interarrival_cv=self._interarrival_cv(),
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
        )
        self._window_index += 1
        self._window_start_ms = end_ms
        self._window_busy_ms = {p: 0.0 for p in self._processors}
        self._window_depth_integral = 0.0
        self._window_n_integral = 0.0
        self._window_arrivals = 0
        self._window_completions = 0
        self._window_drops = 0
        self._window_cancellations = 0
        self._window_sketch = QuantileSketch(self._relative_accuracy)
        return stats

    def _interarrival_cv(self) -> Optional[float]:
        if self._gap_count < 2 or self._gap_sum_ms <= 0:
            return None
        mean = self._gap_sum_ms / self._gap_count
        variance = max(
            0.0, self._gap_sumsq / self._gap_count - mean * mean
        )
        return math.sqrt(variance) / mean

    def _apply(self, event: "Event") -> None:
        kind = event.kind
        request = event.request
        processor = event.processor
        if kind == "arrival":
            assert request is not None
            self._in_system[request] = event.time_ms
            self._window_arrivals += 1
            self._arrivals_total += 1
            if self._last_arrival_ms is not None:
                gap = event.time_ms - self._last_arrival_ms
                self._gap_count += 1
                self._gap_sum_ms += gap
                self._gap_sumsq += gap * gap
            self._last_arrival_ms = event.time_ms
        elif kind == "task_ready":
            assert request is not None and processor is not None
            self._running_procs.add(processor)
            self._running_requests.add(request)
        elif kind == "departure":
            assert request is not None
            if processor is not None:
                self._running_procs.discard(processor)
            self._running_requests.discard(request)
            seen = self._departures_seen.get(request, 0) + 1
            self._departures_seen[request] = seen
            if (
                0 <= request < len(self._stages)
                and seen >= self._stages[request]
            ):
                self._complete(request, event.time_ms)
        elif kind == "preemption":
            if processor is not None:
                self._running_procs.discard(processor)
            if request is not None:
                self._running_requests.discard(request)
        elif kind == "cancellation":
            assert request is not None
            if processor is not None:
                self._running_procs.discard(processor)
            self._running_requests.discard(request)
            self._exit(request, event.time_ms)
            if event.detail == "deadline":
                self._window_drops += 1
                self._drops_total += 1
            else:
                self._window_cancellations += 1
                self._cancellations_total += 1
        # rate_change events carry no occupancy information: the
        # utilization denominator stays the full window span even while
        # a processor is offline (idle-by-fault reads as idle).

    def _complete(self, request: int, time_ms: float) -> None:
        arrival = self._in_system.get(request)
        if arrival is None:
            return
        latency_ms = time_ms - arrival
        self.latency_sketch.insert(latency_ms)
        self._window_sketch.insert(latency_ms)
        self._window_completions += 1
        self._completions_total += 1
        self._exit(request, time_ms)

    def _exit(self, request: int, time_ms: float) -> None:
        arrival = self._in_system.pop(request, None)
        if arrival is None:
            return
        self._sojourn_sum_ms += time_ms - arrival
        self._exited += 1
