"""Tests for the uLayer baseline, contention-aware Band, sensitivity sweep."""

import pytest

from repro.baselines.band import plan_band, plan_band_contention_aware
from repro.baselines.mnn_serial import serial_latency_ms
from repro.baselines.ulayer import (
    split_layer,
    ulayer_model_latency_ms,
    ulayer_sequence_latency_ms,
    ulayer_speedup_over_cpu,
)
from repro.experiments.ext_sensitivity import run as sensitivity_run, scaled_soc
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler
from repro.runtime.executor import simulate_chains


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


class TestULayer:
    def test_split_balances_finish_times(self, kirin):
        model = get_model("vgg16")
        split = split_layer(model.layers[0], kirin.cpu_big, kirin.gpu, kirin)
        assert 0.0 < split.cpu_fraction < 1.0
        assert split.merge_ms > 0

    def test_per_model_speedup_in_realistic_band(self, kirin, profiler):
        # uLayer's CPU+GPU cooperation gains 1.3-2.5x on big CNNs...
        for name in ("vgg16", "resnet50", "bert"):
            speedup = ulayer_speedup_over_cpu(
                kirin, get_model(name), profiler
            )
            assert 1.2 <= speedup <= 3.0, f"{name}: {speedup:.2f}"

    def test_merge_overhead_hurts_tiny_models(self, kirin, profiler):
        # ...but the per-layer merge kills it on depthwise MobileNetV2
        # (the paper's critique of intra-operator partitioning).
        speedup = ulayer_speedup_over_cpu(
            kirin, get_model("mobilenetv2"), profiler
        )
        assert speedup < 1.2

    def test_sequence_is_serial_sum(self, kirin):
        models = [get_model("resnet50"), get_model("vgg16")]
        total = ulayer_sequence_latency_ms(kirin, models)
        parts = sum(ulayer_model_latency_ms(m, kirin)[0] for m in models)
        assert total == pytest.approx(parts)

    def test_sequence_empty_rejected(self, kirin):
        with pytest.raises(ValueError):
            ulayer_sequence_latency_ms(kirin, [])

    def test_merge_cost_scales_with_output(self, kirin):
        model = get_model("vgg16")
        big_out = max(model.layers, key=lambda l: l.output_bytes)
        small_out = min(model.layers, key=lambda l: l.output_bytes)
        big = split_layer(big_out, kirin.cpu_big, kirin.gpu, kirin)
        small = split_layer(small_out, kirin.cpu_big, kirin.gpu, kirin)
        assert big.merge_ms >= small.merge_ms


class TestBandContentionAware:
    def test_produces_valid_chains(self, kirin, profiler):
        models = [get_model(n) for n in ("yolov4", "bert", "squeezenet")]
        mapping = plan_band_contention_aware(kirin, models, profiler)
        assert len(mapping.chains) == 3
        result = simulate_chains(kirin, mapping.chains)
        assert result.num_requests == 3

    def test_empty_rejected(self, kirin):
        with pytest.raises(ValueError):
            plan_band_contention_aware(kirin, [])

    def test_not_worse_than_plain_band_on_contended_mix(self, kirin, profiler):
        # On a heavily contended workload, contention-aware estimates
        # should not lose badly to contention-blind ones.
        models = [
            get_model(n)
            for n in ("alexnet", "vgg16", "bert", "squeezenet", "alexnet")
        ]
        plain = simulate_chains(
            kirin, plan_band(kirin, models, profiler).chains
        ).makespan_ms
        aware = simulate_chains(
            kirin, plan_band_contention_aware(kirin, models, profiler).chains
        ).makespan_ms
        assert aware <= plain * 1.15

    def test_zero_pressure_gain_matches_plain_band(self, kirin, profiler):
        models = [get_model(n) for n in ("vit", "resnet50", "googlenet")]
        plain = plan_band(kirin, models, profiler)
        aware = plan_band_contention_aware(
            kirin, models, profiler, pressure_gain=0.0
        )
        assert plain.choices == aware.choices


class TestSensitivity:
    def test_scaled_soc_scales_coupling(self, kirin):
        doubled = scaled_soc(kirin, 2.0)
        for pair, value in kirin.coupling.items():
            assert doubled.coupling[pair] == pytest.approx(2 * value)

    def test_scaled_soc_validation(self, kirin):
        with pytest.raises(ValueError):
            scaled_soc(kirin, -1.0)

    def test_ordering_robust_across_scales(self, kirin):
        points = sensitivity_run(
            kirin,
            coupling_scales=(0.0, 1.0, 2.0),
            num_combinations=3,
            seed=9,
        )
        assert len(points) == 3
        for point in points:
            # H2P dominates serial MNN and stays competitive with Band
            # regardless of how strong contention is assumed to be.
            assert point.speedup_vs_mnn > 1.5
            assert point.speedup_vs_band > 0.9
