#!/usr/bin/env python3
"""Application scenarios end to end: catalogue -> comparison -> bounds.

Runs every named scenario (scene understanding, smart camera, AR
assistant, video conferencing, photo batch) through the full scheme
line-up with the uniform comparison framework, reports win rates, and
shows how far each Hetero2Pipe schedule sits above the contention-free
theoretical lower bound.

Run:
    python examples/scenario_benchmarks.py
"""

from repro import get_soc
from repro.analysis.charts import bar_chart
from repro.core.bounds import makespan_lower_bounds
from repro.runtime.metrics import compare_schemes, standard_schemes
from repro.workloads.scenarios import all_scenarios


def main() -> None:
    soc = get_soc("kirin990")
    scenarios = all_scenarios()
    workloads = [scenario.models() for scenario in scenarios]

    matrix = compare_schemes(standard_schemes(soc), workloads)

    print(f"scheme line-up over {len(scenarios)} application scenarios "
          f"on {soc.name}\n")
    print(bar_chart(
        matrix.leaderboard(), width=44, unit=" ms",
        title="mean latency per scheme (lower is better):",
    ))

    gm, hi, lo = matrix.speedup_summary("mnn", "h2p")
    print(f"\nHetero2Pipe vs serial MNN: {gm:.2f}x geomean "
          f"({lo:.2f}x .. {hi:.2f}x)")
    print(f"win rate vs Band: {matrix.win_rate('h2p', 'band') * 100:.0f}% "
          f"of scenarios")

    print("\nper-scenario detail (H2P ms vs theoretical lower bound):")
    for scenario, workload, h2p_ms in zip(
        scenarios, workloads, matrix.latency_ms["h2p"]
    ):
        bounds = makespan_lower_bounds(soc, workload)
        gap = bounds.gap(h2p_ms)
        print(f"  {scenario.name:20s} {h2p_ms:8.1f} ms  "
              f"(bound {bounds.lower_bound_ms:7.1f} ms, +{gap * 100:.0f}%)  "
              f"- {scenario.description}")


if __name__ == "__main__":
    main()
