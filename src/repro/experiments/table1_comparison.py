"""Table I: qualitative comparison of on-device inference schemes.

Regenerates the capability matrix from the baseline registry so the
documentation stays in sync with what is actually implemented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .common import format_table


@dataclass(frozen=True)
class SchemeCapabilities:
    """One row of Table I."""

    name: str
    processors: str
    multi_dnn: bool
    dnn_heterogeneity: bool
    pipeline: bool
    contention: bool
    algorithm: str
    implemented: bool


#: The subset of Table I reproduced in this repository, plus the rows
#: the paper lists for context (implemented=False).
SCHEMES: Tuple[SchemeCapabilities, ...] = (
    SchemeCapabilities(
        "Pipe-it", "CPU", True, False, True, False, "Local Search", True
    ),
    SchemeCapabilities(
        "MASA", "CPU", True, True, False, False, "BinPacking", False
    ),
    SchemeCapabilities(
        "EdgePipe", "CPU", True, False, True, False, "DP", False
    ),
    SchemeCapabilities(
        "Gillis", "CPU", True, False, True, False, "DP", False
    ),
    SchemeCapabilities(
        "uLayer", "CPU, GPU", False, False, False, False, "DP", True
    ),
    SchemeCapabilities(
        "PICO", "CPU", True, False, True, False, "DP", False
    ),
    SchemeCapabilities(
        "DART", "CPU, GPU", True, False, False, False, "DP", False
    ),
    SchemeCapabilities(
        "BlasNet", "CPU, GPU", True, False, False, False, "DARTS", False
    ),
    SchemeCapabilities(
        "Band", "CPU, GPU, NPU", True, True, False, False, "Greedy", True
    ),
    SchemeCapabilities(
        "Hetero2Pipe",
        "CPU, GPU, NPU",
        True,
        True,
        True,
        True,
        "DP+Work Stealing",
        True,
    ),
)


def run() -> List[SchemeCapabilities]:
    return list(SCHEMES)


def render(rows: List[SchemeCapabilities]) -> str:
    def mark(flag: bool) -> str:
        return "yes" if flag else "no"

    headers = [
        "scheme",
        "processors",
        "multi-DNN",
        "DNN-hetero",
        "pipeline",
        "contention",
        "algorithm",
        "in-repo",
    ]
    body = [
        [
            r.name,
            r.processors,
            mark(r.multi_dnn),
            mark(r.dnn_heterogeneity),
            mark(r.pipeline),
            mark(r.contention),
            r.algorithm,
            mark(r.implemented),
        ]
        for r in rows
    ]
    return format_table(headers, body)


def main() -> str:
    return render(run())


if __name__ == "__main__":
    print(main())
