"""Ridge regression, closed form — the learning piece of Eq. 1.

The paper characterizes model-specific contention footprints "via an
effective regression model, without external efforts to profile a large
number of co-execution combinations":

    W = argmin_w 1/2 (XW - Y)^T (XW - Y) + 1/2 * alpha * ||W||^2

with the closed-form solution ``W = (X^T X + alpha I)^{-1} X^T Y``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class RidgeModel:
    """A fitted ridge regression ``y ~ X @ weights + intercept``."""

    weights: np.ndarray
    intercept: float
    alpha: float

    def predict(self, features: Sequence[float] | np.ndarray) -> float | np.ndarray:
        """Predict targets for one feature vector or a feature matrix."""
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            if x.shape[0] != self.weights.shape[0]:
                raise ValueError(
                    f"expected {self.weights.shape[0]} features, got {x.shape[0]}"
                )
            return float(x @ self.weights + self.intercept)
        return x @ self.weights + self.intercept


def fit_ridge(
    features: np.ndarray,
    targets: np.ndarray,
    alpha: float = 1.0,
    fit_intercept: bool = True,
) -> RidgeModel:
    """Fit ridge regression via the closed-form normal equations.

    Args:
        features: (n_samples, n_features) design matrix X.
        targets: (n_samples,) target vector Y.
        alpha: L2 regularization strength (the paper's alpha).
            ``alpha=0`` is ordinary least squares; with a singular Gram
            matrix (collinear features, fewer samples than features)
            the fit falls back to the minimum-norm ``lstsq`` solution
            instead of raising.
        fit_intercept: Centre the data so the bias is not regularized.

    Returns:
        The fitted :class:`RidgeModel`.

    Raises:
        ValueError: on shape mismatches or negative alpha.
    """
    x = np.asarray(features, dtype=float)
    y = np.asarray(targets, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {x.shape}")
    if y.ndim != 1 or y.shape[0] != x.shape[0]:
        raise ValueError(
            f"targets shape {y.shape} incompatible with features {x.shape}"
        )
    if x.shape[0] < 1:
        raise ValueError("need at least one sample")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")

    if fit_intercept:
        x_mean = x.mean(axis=0)
        y_mean = float(y.mean())
        xc = x - x_mean
        yc = y - y_mean
    else:
        x_mean = np.zeros(x.shape[1])
        y_mean = 0.0
        xc, yc = x, y

    gram = xc.T @ xc + alpha * np.eye(x.shape[1])
    try:
        weights = np.linalg.solve(gram, xc.T @ yc)
    except np.linalg.LinAlgError:
        # alpha=0 with a rank-deficient design (collinear columns, or a
        # single centred sample, which is all zeros): take the
        # minimum-norm least-squares solution.  Any alpha > 0 makes the
        # Gram matrix positive definite, so solve() cannot get here.
        weights, _, _, _ = np.linalg.lstsq(gram, xc.T @ yc, rcond=None)
    intercept = y_mean - float(x_mean @ weights) if fit_intercept else 0.0
    return RidgeModel(weights=weights, intercept=intercept, alpha=alpha)
