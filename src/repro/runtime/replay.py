"""Post-hoc timeline analysis and serialization of executed schedules.

Given an :class:`~repro.runtime.executor.ExecutionResult`, reconstructs
the per-processor timeline: busy intervals, the idle gaps between them
(the concrete bubbles of Definition 3, with start/end timestamps), a
sampled concurrency profile, and the critical chain of records that
determined the makespan.  The examples and experiments use this to
explain *where* a schedule lost its time.

:func:`save_run` / :func:`load_run` round-trip a full run to JSON —
execution records, trace samples, and the prediction-accuracy telemetry
(residual reports + drift events) — so accuracy analysis can run
offline, long after the run that produced it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..obs import DriftDetected, ResidualReport, event_from_dict, report_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutionResult, TaskRecord


@dataclass(frozen=True)
class IdleGap:
    """One bubble: a processor idle between two of its tasks."""

    processor: str
    start_ms: float
    end_ms: float
    before_request: int  # request whose task follows the gap

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class Timeline:
    """Reconstructed execution timeline."""

    makespan_ms: float
    gaps: Tuple[IdleGap, ...]
    busy_ms: Dict[str, float]

    @property
    def total_gap_ms(self) -> float:
        return sum(g.duration_ms for g in self.gaps)

    def gaps_on(self, processor: str) -> List[IdleGap]:
        return [g for g in self.gaps if g.processor == processor]

    def largest_gaps(self, count: int = 5) -> List[IdleGap]:
        return sorted(self.gaps, key=lambda g: g.duration_ms, reverse=True)[
            :count
        ]


def build_timeline(result: "ExecutionResult") -> Timeline:
    """Reconstruct per-processor idle gaps from the task records."""
    by_proc: Dict[str, List["TaskRecord"]] = {}
    for record in result.records:
        by_proc.setdefault(record.processor, []).append(record)

    gaps: List[IdleGap] = []
    for processor, records in by_proc.items():
        records = sorted(records, key=lambda r: r.start_ms)
        for earlier, later in zip(records, records[1:]):
            if later.start_ms > earlier.finish_ms + 1e-9:
                gaps.append(
                    IdleGap(
                        processor=processor,
                        start_ms=earlier.finish_ms,
                        end_ms=later.start_ms,
                        before_request=later.request,
                    )
                )
    return Timeline(
        makespan_ms=result.makespan_ms,
        gaps=tuple(sorted(gaps, key=lambda g: g.start_ms)),
        busy_ms=dict(result.processor_busy_ms),
    )


def concurrency_profile(
    result: "ExecutionResult", samples: int = 50
) -> List[Tuple[float, int]]:
    """(time, number of simultaneously running slices) samples.

    Raises:
        ValueError: for non-positive sample counts.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if not result.records or result.makespan_ms <= 0:
        return [(0.0, 0)]
    points: List[Tuple[float, int]] = []
    for i in range(samples):
        t = result.makespan_ms * i / max(1, samples - 1)
        active = sum(
            1
            for r in result.records
            if r.start_ms <= t < r.finish_ms
        )
        points.append((t, active))
    return points


def critical_chain(result: "ExecutionResult") -> List["TaskRecord"]:
    """The chain of records ending at the makespan, walked backwards.

    From the record that finishes last, repeatedly steps to the record
    that *enabled* its start: the same request's previous stage if it
    finished exactly at the start, otherwise the record occupying the
    same processor immediately before.  The result is the sequence of
    tasks that directly determined the makespan — lengthening any of
    them lengthens the run.
    """
    if not result.records:
        return []
    records = sorted(result.records, key=lambda r: r.finish_ms)
    chain: List["TaskRecord"] = [records[-1]]
    tolerance = 1e-6
    while True:
        current = chain[-1]
        predecessor = None
        for record in records:
            if record is current:
                continue
            enables_by_chain = (
                record.request == current.request
                and abs(record.finish_ms - current.start_ms) <= tolerance
            )
            enables_by_proc = (
                record.processor == current.processor
                and abs(record.finish_ms - current.start_ms) <= tolerance
            )
            if enables_by_chain or enables_by_proc:
                predecessor = record
                break
        if predecessor is None or current.start_ms <= tolerance:
            break
        chain.append(predecessor)
    chain.reverse()
    return chain


#: Schema identifier stamped into every serialized run document.
RUN_SCHEMA = "hetero2pipe.run.v1"


def run_to_dict(
    result: "ExecutionResult",
    residuals: Sequence[ResidualReport] = (),
    drift_events: Sequence[DriftDetected] = (),
) -> Dict[str, object]:
    """Serialize a run (+ accuracy telemetry) to a JSON-safe document."""
    return {
        "schema": RUN_SCHEMA,
        "makespan_ms": result.makespan_ms,
        "request_arrival_ms": list(result.request_arrival_ms),
        "request_finish_ms": list(result.request_finish_ms),
        "processor_busy_ms": dict(result.processor_busy_ms),
        "memory_pressure_events": result.memory_pressure_events,
        "records": [
            {
                "request": r.request,
                "stage": r.stage,
                "processor": r.processor,
                "start_ms": r.start_ms,
                "finish_ms": r.finish_ms,
                "solo_ms": r.solo_ms,
                "traffic_bytes": r.traffic_bytes,
            }
            for r in result.records
        ],
        "trace": [
            {
                "time_ms": p.time_ms,
                "bandwidth_demand_gbps": p.bandwidth_demand_gbps,
                "memory_freq_mhz": p.memory_freq_mhz,
                "used_bytes": p.used_bytes,
                "active_processors": list(p.active_processors),
            }
            for p in result.trace
        ],
        "residuals": [r.to_dict() for r in residuals],
        "drift_events": [e.to_dict() for e in drift_events],
    }


def run_from_dict(
    doc: Dict[str, object],
) -> Tuple["ExecutionResult", List[ResidualReport], List[DriftDetected]]:
    """Rebuild a run (+ accuracy telemetry) from :func:`run_to_dict`.

    Raises:
        ValueError: on an unknown schema identifier.
    """
    from .executor import ExecutionResult, TaskRecord, TracePoint

    schema = doc.get("schema", RUN_SCHEMA)
    if schema != RUN_SCHEMA:
        raise ValueError(f"unsupported run schema {schema!r}")
    result = ExecutionResult(
        records=[
            TaskRecord(
                request=int(r["request"]),
                stage=int(r["stage"]),
                processor=str(r["processor"]),
                start_ms=float(r["start_ms"]),
                finish_ms=float(r["finish_ms"]),
                solo_ms=float(r["solo_ms"]),
                traffic_bytes=float(r.get("traffic_bytes", 0.0)),
            )
            for r in doc.get("records", [])  # type: ignore[union-attr]
        ],
        makespan_ms=float(doc["makespan_ms"]),  # type: ignore[arg-type]
        request_arrival_ms=[
            float(t) for t in doc.get("request_arrival_ms", [])  # type: ignore[union-attr]
        ],
        request_finish_ms=[
            float(t) for t in doc.get("request_finish_ms", [])  # type: ignore[union-attr]
        ],
        trace=[
            TracePoint(
                time_ms=float(p["time_ms"]),
                bandwidth_demand_gbps=float(p["bandwidth_demand_gbps"]),
                memory_freq_mhz=int(p["memory_freq_mhz"]),
                used_bytes=float(p["used_bytes"]),
                active_processors=tuple(p.get("active_processors", ())),
            )
            for p in doc.get("trace", [])  # type: ignore[union-attr]
        ],
        processor_busy_ms={
            str(k): float(v)
            for k, v in doc.get("processor_busy_ms", {}).items()  # type: ignore[union-attr]
        },
        memory_pressure_events=int(doc.get("memory_pressure_events", 0)),  # type: ignore[arg-type]
    )
    residuals = [
        report_from_dict(r) for r in doc.get("residuals", [])  # type: ignore[union-attr]
    ]
    drift_events = []
    for e in doc.get("drift_events", []):  # type: ignore[union-attr]
        event = event_from_dict(e)
        if not isinstance(event, DriftDetected):
            raise ValueError(f"expected drift_detected event, got {event.kind}")
        drift_events.append(event)
    return result, residuals, drift_events


def save_run(
    path: str,
    result: "ExecutionResult",
    residuals: Sequence[ResidualReport] = (),
    drift_events: Sequence[DriftDetected] = (),
) -> None:
    """Write a run (+ accuracy telemetry) as a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(run_to_dict(result, residuals, drift_events), handle)


def load_run(
    path: str,
) -> Tuple["ExecutionResult", List[ResidualReport], List[DriftDetected]]:
    """Load a run written by :func:`save_run`."""
    with open(path, "r", encoding="utf-8") as handle:
        return run_from_dict(json.load(handle))


def utilization_summary(result: "ExecutionResult") -> Dict[str, float]:
    """Busy fraction per processor over the makespan."""
    if result.makespan_ms <= 0:
        return {name: 0.0 for name in result.processor_busy_ms}
    return {
        name: busy / result.makespan_ms
        for name, busy in result.processor_busy_ms.items()
    }
