"""Tests for the scenario catalogue, makespan bounds and the scenario
experiment, plus serialization fuzzing with random models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    MakespanBounds,
    makespan_lower_bounds,
    optimality_report,
)
from repro.core.planner import Hetero2PipePlanner
from repro.experiments.ext_scenarios import run as scenarios_run
from repro.hardware.soc import get_soc
from repro.models.ir import Layer, ModelGraph, OpType
from repro.models.serialization import model_from_json, model_to_json
from repro.models.zoo import MODEL_NAMES, get_model
from repro.profiling.profiler import SocProfiler
from repro.runtime.executor import execute_plan
from repro.workloads.scenarios import SCENARIOS, all_scenarios, get_scenario


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


class TestScenarios:
    def test_catalogue_size(self):
        assert len(SCENARIOS) >= 5
        assert len(all_scenarios()) == len(SCENARIOS)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            get_scenario("doom_scrolling")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_models_resolve_from_evaluation_zoo(self, name):
        scenario = get_scenario(name)
        models = scenario.models()
        assert len(models) == scenario.num_requests
        for model in models:
            assert model.name in MODEL_NAMES

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_arrivals_match_requests(self, name):
        scenario = get_scenario(name)
        arrivals = scenario.arrivals()
        assert len(arrivals) == scenario.num_requests
        assert arrivals == sorted(arrivals)

    def test_scenarios_plan_end_to_end(self, kirin):
        planner = Hetero2PipePlanner(kirin)
        scenario = get_scenario("video_conference")
        result = execute_plan(planner.plan(scenario.models()).plan)
        assert result.num_requests == scenario.num_requests


class TestBounds:
    def test_bounds_below_any_execution(self, kirin):
        planner = Hetero2PipePlanner(kirin)
        for name in ("scene_understanding", "smart_camera"):
            models = get_scenario(name).models()
            bounds = makespan_lower_bounds(kirin, models)
            achieved = execute_plan(planner.plan(models).plan).makespan_ms
            assert achieved >= bounds.lower_bound_ms - 1e-6

    def test_chain_bound_is_best_single_model(self, kirin):
        profiler = SocProfiler(kirin)
        models = [get_model("yolov4"), get_model("squeezenet")]
        bounds = makespan_lower_bounds(kirin, models, profiler)
        yolo = profiler.profile(get_model("yolov4"))
        best_yolo = min(
            yolo.whole_model_ms(p)
            for p in kirin.processors
            if yolo.feasible(p, 0, yolo.model.num_layers - 1)
        )
        assert bounds.chain_bound_ms == pytest.approx(best_yolo)

    def test_work_bound_scales_with_requests(self, kirin):
        one = makespan_lower_bounds(kirin, [get_model("resnet50")])
        four = makespan_lower_bounds(kirin, [get_model("resnet50")] * 4)
        assert four.work_bound_ms == pytest.approx(4 * one.work_bound_ms)

    def test_gap_validation(self):
        bounds = MakespanBounds(work_bound_ms=100.0, chain_bound_ms=50.0)
        assert bounds.lower_bound_ms == 100.0
        assert bounds.gap(150.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            bounds.gap(50.0)

    def test_empty_workload_rejected(self, kirin):
        with pytest.raises(ValueError):
            makespan_lower_bounds(kirin, [])

    def test_report_keys(self, kirin):
        report = optimality_report(kirin, [get_model("vit")], 100.0)
        assert set(report) == {
            "work_bound_ms", "chain_bound_ms", "lower_bound_ms",
            "achieved_ms", "gap",
        }


class TestScenarioExperiment:
    def test_h2p_dominates_serial_everywhere(self, kirin):
        rows = scenarios_run(
            kirin, scenarios=[get_scenario("smart_camera")]
        )
        for row in rows:
            assert row.h2p_ms < row.mnn_ms
            assert row.h2p_ms >= row.lower_bound_ms


# --- serialization fuzzing -------------------------------------------------

_OPS = list(OpType)


@st.composite
def random_model(draw):
    n = draw(st.integers(1, 10))
    layers = []
    for i in range(n):
        layers.append(
            Layer(
                name=f"layer{i}",
                op=_OPS[draw(st.integers(0, len(_OPS) - 1))],
                flops=draw(st.floats(0, 1e9, allow_nan=False)),
                weight_bytes=draw(st.floats(0, 1e8, allow_nan=False)),
                activation_bytes=draw(st.floats(0, 1e8, allow_nan=False)),
                output_bytes=draw(st.floats(0, 1e7, allow_nan=False)),
                output_shape=tuple(
                    draw(
                        st.lists(st.integers(1, 64), min_size=0, max_size=3)
                    )
                ),
            )
        )
    return ModelGraph(
        name=draw(st.text(min_size=1, max_size=12)),
        layers=tuple(layers),
        family=draw(st.sampled_from(["cnn", "transformer", "detector"])),
        input_bytes=draw(st.floats(0, 1e7, allow_nan=False)),
    )


class TestSerializationFuzz:
    @given(random_model())
    @settings(max_examples=100, deadline=None)
    def test_round_trip_any_model(self, model):
        restored = model_from_json(model_to_json(model))
        assert restored.name == model.name
        assert restored.family == model.family
        assert restored.num_layers == model.num_layers
        for a, b in zip(model.layers, restored.layers):
            assert a.op == b.op
            assert a.flops == pytest.approx(b.flops)
            assert a.output_shape == b.output_shape
