"""Windowed streaming planner (extension of Sec. V's complexity remark).

The paper's planner works on a fixed request batch; its complexity
analysis notes that for longer request streams "the planner should be
scheduled more frequently to avoid enlarged search space".  This module
operationalizes that: requests are consumed from an arrival stream in
*planning windows*; each window is planned with the full two-step
Hetero2Pipe flow (optionally after coalescing runs of identical
lightweight requests into batches, Appendix D) and dispatched as soon as
the previous window drains.

The result aggregates per-request completion latency across windows so
streaming behaviour (backlog, window-boundary bubbles) is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..runtime.executor import ExecutionResult, execute_plan
from ..workloads.batching import coalesce_stream
from .planner import Hetero2PipePlanner, PlannerConfig


@dataclass(frozen=True)
class WindowOutcome:
    """One planning window's dispatch and execution."""

    first_request: int
    num_requests: int
    dispatch_ms: float
    makespan_ms: float

    @property
    def finish_ms(self) -> float:
        return self.dispatch_ms + self.makespan_ms


@dataclass
class StreamingResult:
    """Aggregated outcome of a streamed execution."""

    windows: List[WindowOutcome]
    request_arrival_ms: List[float]
    request_finish_ms: List[float]

    @property
    def num_requests(self) -> int:
        return len(self.request_finish_ms)

    @property
    def makespan_ms(self) -> float:
        return max((w.finish_ms for w in self.windows), default=0.0)

    @property
    def throughput_per_s(self) -> float:
        if self.makespan_ms <= 0:
            return 0.0
        return self.num_requests / (self.makespan_ms / 1e3)

    def request_latency_ms(self, request: int) -> float:
        return (
            self.request_finish_ms[request] - self.request_arrival_ms[request]
        )

    def mean_latency_ms(self) -> float:
        if not self.request_finish_ms:
            return 0.0
        return sum(
            self.request_latency_ms(i) for i in range(self.num_requests)
        ) / self.num_requests


class StreamingPlanner:
    """Plans an arrival stream window by window.

    Args:
        soc: Target platform.
        window_size: Requests per planning window (the paper's "how often
            the pipelining plan is made" knob).
        config: Planner feature switches.
        coalesce_batches: Fold runs of identical requests into batched
            requests before planning each window (Appendix D).
        max_batch: Batch-size cap for coalescing.
    """

    def __init__(
        self,
        soc: SocSpec,
        window_size: int = 8,
        config: Optional[PlannerConfig] = None,
        coalesce_batches: bool = False,
        max_batch: int = 8,
    ) -> None:
        if window_size < 1:
            raise ValueError("window size must be >= 1")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.soc = soc
        self.window_size = window_size
        self.coalesce_batches = coalesce_batches
        self.max_batch = max_batch
        self.planner = Hetero2PipePlanner(soc, config)

    def run(
        self,
        stream: Sequence[ModelGraph],
        arrivals: Optional[Sequence[float]] = None,
    ) -> StreamingResult:
        """Plan and simulate the whole stream.

        Args:
            stream: Requests in arrival order.
            arrivals: Arrival times (ms); defaults to all zero.

        Returns:
            The :class:`StreamingResult` with per-request latencies.

        Raises:
            ValueError: on empty stream or arrival-length mismatch.
        """
        if not stream:
            raise ValueError("stream must be non-empty")
        if arrivals is None:
            arrivals = [0.0] * len(stream)
        if len(arrivals) != len(stream):
            raise ValueError(
                f"expected {len(stream)} arrivals, got {len(arrivals)}"
            )

        windows: List[WindowOutcome] = []
        finish = [0.0] * len(stream)
        ready_ms = 0.0  # when the pipeline is free for the next window

        for start in range(0, len(stream), self.window_size):
            window_models = list(stream[start : start + self.window_size])
            window_arrivals = list(
                arrivals[start : start + self.window_size]
            )
            raw_count = len(window_models)
            group_sizes = [1] * len(window_models)
            if self.coalesce_batches:
                window_models, group_sizes = coalesce_stream(
                    window_models, max_batch=self.max_batch
                )

            # The window dispatches when the pipeline is free and its
            # last member has arrived (window-based planning needs the
            # whole window known).
            dispatch = max(ready_ms, max(window_arrivals))
            with obs.span(
                "stream.window", first_request=start, requests=raw_count
            ) as sp:
                report = self.planner.plan(window_models)
                result = execute_plan(report.plan)
                sp.set(makespan_ms=result.makespan_ms)
            obs.add("windows_planned")
            obs.add("requests_coalesced", raw_count - len(window_models))
            windows.append(
                WindowOutcome(
                    first_request=start,
                    num_requests=len(window_arrivals),
                    dispatch_ms=dispatch,
                    makespan_ms=result.makespan_ms,
                )
            )
            ready_ms = dispatch + result.makespan_ms

            # Map batched-request finishes back to original requests:
            # every member of a coalesced group completes when its
            # batched request does.  ``report.plan.order`` permutes the
            # (possibly coalesced) window.
            group_start = []
            acc = start
            for size in group_sizes:
                group_start.append(acc)
                acc += size
            for exec_pos, original_pos in enumerate(report.plan.order):
                done = dispatch + result.request_finish_ms[exec_pos]
                first = group_start[original_pos]
                for offset in range(group_sizes[original_pos]):
                    finish[first + offset] = done

        return StreamingResult(
            windows=windows,
            request_arrival_ms=list(arrivals),
            request_finish_ms=finish,
        )
