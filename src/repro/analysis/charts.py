"""Terminal charts: bar charts, scatter plots, time series.

The experiment harness prints its numbers as tables; these helpers add
the visual forms the paper's figures use — horizontal bar charts
(Fig. 1/7/8b), scatter plots (Fig. 7 right, Fig. 12) and step series
(Fig. 9) — rendered in plain ASCII so they work in any terminal and in
captured benchmark output.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart, one row per (label, value).

    Raises:
        ValueError: for empty input, negative values or tiny width.
    """
    if not items:
        raise ValueError("bar chart needs at least one item")
    if width < 10:
        raise ValueError("width must be >= 10")
    if any(v < 0 for _, v in items):
        raise ValueError("bar chart values must be non-negative")
    peak = max(v for _, v in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1 if value > 0 else 0, int(value / peak * width))
        lines.append(f"{label:<{label_width}s} |{bar:<{width}s}| "
                     f"{value:.1f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[Tuple[str, Sequence[Tuple[str, float]]]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Bars grouped by an outer category (Fig. 7's per-SoC panels)."""
    if not groups:
        raise ValueError("need at least one group")
    sections = []
    for group_label, items in groups:
        sections.append(
            bar_chart(items, width=width, unit=unit, title=f"[{group_label}]")
        )
    return "\n\n".join(sections)


def scatter_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "o",
    overlay: Optional[Sequence[Tuple[float, float]]] = None,
    overlay_marker: str = "+",
) -> str:
    """ASCII scatter plot with optional second series (Fig. 7 / 12).

    Raises:
        ValueError: for empty input or degenerate dimensions.
    """
    if not points:
        raise ValueError("scatter plot needs at least one point")
    if width < 10 or height < 5:
        raise ValueError("plot area too small")
    all_points = list(points) + list(overlay or [])
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(series, glyph):
        for x, y in series:
            col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
            row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = glyph

    place(points, marker)
    if overlay:
        place(overlay, overlay_marker)

    lines = [f"{y_label} ({y_lo:.0f} .. {y_hi:.0f})"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(f" {x_label} ({x_lo:.0f} .. {x_hi:.0f})")
    if overlay:
        lines.append(f" {marker} = series 1, {overlay_marker} = series 2")
    return "\n".join(lines)


def step_series(
    series: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 10,
    label: str = "",
) -> str:
    """Step plot of a (time, value) trace (Fig. 9's frequency trace).

    Raises:
        ValueError: for empty input.
    """
    if not series:
        raise ValueError("series must be non-empty")
    times = [t for t, _ in series]
    values = [v for _, v in series]
    t_lo, t_hi = min(times), max(times)
    v_lo, v_hi = min(values), max(values)
    t_span = (t_hi - t_lo) or 1.0
    v_span = (v_hi - v_lo) or 1.0

    # Sample the step function at each column.
    ordered = sorted(series)
    columns = []
    for col in range(width):
        t = t_lo + col / max(1, width - 1) * t_span
        value = ordered[0][1]
        for time, val in ordered:
            if time <= t:
                value = val
            else:
                break
        columns.append(value)

    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(columns):
        row = min(height - 1, int((value - v_lo) / v_span * (height - 1)))
        grid[height - 1 - row][col] = "#"
    lines = [f"{label} ({v_lo:.0f} .. {v_hi:.0f})"] if label else []
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(f" t: {t_lo:.0f} .. {t_hi:.0f} ms")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline for quick trend display.

    Raises:
        ValueError: for empty input.
    """
    if not values:
        raise ValueError("sparkline needs values")
    glyphs = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        glyphs[min(len(glyphs) - 1, int((v - lo) / span * (len(glyphs) - 1)))]
        for v in values
    )
