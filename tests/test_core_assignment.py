"""Tests for the from-scratch Kuhn-Munkres solver."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    InfeasibleAssignmentError,
    assignment_cost,
    kuhn_munkres,
)


def brute_force(cost):
    """Optimal assignment by enumeration (small matrices only)."""
    n, m = len(cost), len(cost[0])
    transposed = n > m
    if transposed:
        cost = [list(col) for col in zip(*cost)]
        n, m = m, n
    best = None
    for perm in itertools.permutations(range(m), n):
        total = sum(cost[i][perm[i]] for i in range(n))
        if math.isinf(total):
            continue
        if best is None or total < best:
            best = total
    return best


class TestBasics:
    def test_identity_matrix(self):
        pairs, total = kuhn_munkres([[0, 1], [1, 0]])
        assert total == 0
        assert pairs == [(0, 0), (1, 1)]

    def test_single_cell(self):
        pairs, total = kuhn_munkres([[7.0]])
        assert pairs == [(0, 0)]
        assert total == 7.0

    def test_rectangular_wide(self):
        pairs, total = kuhn_munkres([[5, 1, 9]])
        assert pairs == [(0, 1)]
        assert total == 1

    def test_rectangular_tall(self):
        pairs, total = kuhn_munkres([[5], [1], [9]])
        assert pairs == [(1, 0)]
        assert total == 1

    def test_classic_example(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        _, total = kuhn_munkres(cost)
        assert total == 5  # 1 + 2 + 2

    def test_forbidden_pairs_avoided(self):
        inf = math.inf
        cost = [[inf, 1], [1, inf]]
        pairs, total = kuhn_munkres(cost)
        assert total == 2
        assert set(pairs) == {(0, 1), (1, 0)}

    def test_infeasible_raises(self):
        inf = math.inf
        with pytest.raises(InfeasibleAssignmentError):
            kuhn_munkres([[inf, inf], [1, 1]])

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            kuhn_munkres([])
        with pytest.raises(ValueError):
            kuhn_munkres([[]])

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError):
            kuhn_munkres([[1, 2], [3]])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            kuhn_munkres([[float("nan")]])

    def test_assignment_cost_helper(self):
        cost = [[4, 1], [2, 0]]
        assert assignment_cost(cost, [(0, 1), (1, 0)]) == 3


class TestOptimality:
    @given(
        st.lists(
            st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=5),
            min_size=1,
            max_size=5,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1)
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, cost):
        expected = brute_force(cost)
        pairs, total = kuhn_munkres(cost)
        assert expected is not None
        assert total == pytest.approx(expected, abs=1e-9)
        # pairs form a valid matching of the smaller side
        rows = [i for i, _ in pairs]
        cols = [j for _, j in pairs]
        assert len(set(rows)) == len(rows)
        assert len(set(cols)) == len(cols)
        assert len(pairs) == min(len(cost), len(cost[0]))

    @given(
        st.lists(
            st.lists(
                st.one_of(
                    st.floats(0, 50, allow_nan=False), st.just(math.inf)
                ),
                min_size=2,
                max_size=4,
            ),
            min_size=2,
            max_size=4,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1)
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force_with_forbidden(self, cost):
        expected = brute_force(cost)
        if expected is None:
            with pytest.raises(InfeasibleAssignmentError):
                kuhn_munkres(cost)
        else:
            _, total = kuhn_munkres(cost)
            assert total == pytest.approx(expected, abs=1e-9)
