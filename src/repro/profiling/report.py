"""Per-layer profile reports: the profiling tooling a device engineer
uses before trusting the planner.

Produces the tables behind the intuition in Sec. III: for one model on
one SoC, every layer's FLOPs, effective DRAM traffic, roofline regime
(compute- vs memory-bound) and latency on each processor; plus a
model-level summary ranking layers by bus demand — where the contention
actually comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from .latency import layer_compute_memory_ms, layer_traffic_bytes
from .profiler import ModelProfile, SocProfiler


@dataclass(frozen=True)
class LayerReport:
    """One layer's profile on one processor."""

    index: int
    name: str
    op: str
    gflops: float
    traffic_mb: float
    latency_ms: float
    memory_bound: bool


@dataclass(frozen=True)
class ModelReport:
    """Per-layer profile of one model on one processor."""

    model_name: str
    processor_name: str
    layers: Tuple[LayerReport, ...]

    @property
    def total_latency_ms(self) -> float:
        return sum(layer.latency_ms for layer in self.layers)

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of layers (by time) in the memory-bound regime."""
        total = self.total_latency_ms
        if total <= 0:
            return 0.0
        bound = sum(
            layer.latency_ms for layer in self.layers if layer.memory_bound
        )
        return bound / total

    def hottest_layers(self, count: int = 5) -> List[LayerReport]:
        """Layers ranked by latency, slowest first."""
        return sorted(
            self.layers, key=lambda l: l.latency_ms, reverse=True
        )[:count]

    def highest_traffic_layers(self, count: int = 5) -> List[LayerReport]:
        """Layers ranked by DRAM traffic — the contention sources."""
        return sorted(
            self.layers, key=lambda l: l.traffic_mb, reverse=True
        )[:count]


def profile_report(
    model: ModelGraph,
    soc: SocSpec,
    processor_name: str = "cpu_big",
    profiler: Optional[SocProfiler] = None,
) -> ModelReport:
    """Build the per-layer report of one model on one processor.

    Raises:
        KeyError: for unknown processor names.
        ValueError: if the processor cannot run some layer (profile the
            fallback unit instead for NPU-incompatible models).
    """
    profiler = profiler or SocProfiler(soc)
    profile = profiler.profile(model)
    proc = soc.processor(processor_name)
    layers: List[LayerReport] = []
    for index, layer in enumerate(model.layers):
        if not proc.supports(layer):
            raise ValueError(
                f"{proc.name!r} cannot run layer {layer.name!r}; profile a "
                "fully-capable processor for this model"
            )
        compute_ms, memory_ms = layer_compute_memory_ms(layer, proc)
        layers.append(
            LayerReport(
                index=index,
                name=layer.name,
                op=layer.op.value,
                gflops=layer.flops / 1e9,
                traffic_mb=layer_traffic_bytes(layer, proc) / 1e6,
                latency_ms=profile.layer_ms(proc, index),
                memory_bound=memory_ms > compute_ms,
            )
        )
    return ModelReport(
        model_name=model.name,
        processor_name=proc.name,
        layers=tuple(layers),
    )


def render_report(report: ModelReport, top: Optional[int] = None) -> str:
    """ASCII rendering of a model report."""
    from ..experiments.common import format_table

    layers = report.layers if top is None else report.hottest_layers(top)
    headers = ["#", "layer", "op", "GFLOPs", "traffic_MB", "ms", "bound"]
    body = [
        [
            l.index,
            l.name,
            l.op,
            round(l.gflops, 3),
            round(l.traffic_mb, 2),
            l.latency_ms,
            "memory" if l.memory_bound else "compute",
        ]
        for l in layers
    ]
    table = format_table(headers, body)
    return (
        f"{report.model_name} on {report.processor_name}: "
        f"{report.total_latency_ms:.1f} ms total, "
        f"{report.memory_bound_fraction * 100:.0f}% of time memory-bound\n"
        + table
    )
