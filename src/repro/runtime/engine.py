"""The discrete-event simulation engine behind every executed plan.

This module is the general substrate the legacy closed-loop executor
(:mod:`repro.runtime.executor`, now a thin adapter) was refactored
into.  One engine instance simulates a set of per-request task chains
on one SoC, driven by an **event heap** instead of the old per-step
O(n) rescans of the arrival list:

* ``arrival`` — a request enters the system (timestamps come from an
  injectable :class:`~repro.runtime.arrivals.ArrivalProcess`: periodic,
  Poisson, trace-driven, or a plain list).
* ``task_ready`` — a chain's next slice is admitted onto its processor
  (emitted; readiness itself is derived state: predecessor finished,
  request arrived, processor free, memory admitted).
* ``rate_change`` — an exogenous processor-rate edge (today: fault
  injection via ``processor_offline_ms``; co-runner-induced rate
  changes are implicit — see below).
* ``departure`` — a slice completes; the last departure of a chain
  releases the request's memory arenas.
* ``preemption`` — a running slice is taken off its processor with its
  progress preserved; it re-enters the ready set.
* ``cancellation`` — a request is removed (user-scheduled, or a
  deadline drop when its first slice has not started by
  ``arrival + deadline``), releasing its arenas and pending work.

**Co-execution dynamics.**  While a set of slices co-runs, each
progresses at ``1 / (1 + slowdown)`` with the slowdown recomputed from
the live co-runner set whenever it changes (Eq. 2's dynamic ``T^co``).
Because *every* start and departure changes every co-runner's rate, a
textbook approach of keeping predicted departure events in the heap
would invalidate and re-insert the whole running set on each edge.
The running set is bounded by the processor count (<= 5 on every
registered SoC), so the engine instead computes the earliest departure
with a direct minimum over the running set each step — fewer
operations than the heap churn, and floating-point-identical to the
legacy executor's step arithmetic (the golden-equivalence guarantee
below).  The heap holds the *unbounded* exogenous event population:
arrivals, fault edges, deadlines, cancellations, preemptions.

**Equivalence guarantee.**  For the legacy feature set (closed-loop or
listed arrivals, contention, memory enforcement, fault injection — no
deadlines/cancellation/preemption), the engine reproduces the legacy
executor's ``TaskRecord``s and ``request_finish_ms`` to within 1e-9:
the step arithmetic (``dt = min(remaining * rate)``, clipped at the
next exogenous edge, floored at ``_EPS``) is unchanged, and processor
iteration orders are identical.  The one deliberate divergence is the
legacy off-by-epsilon arrival scan: the old loop treated an arrival in
``(now, now + _EPS]`` as already arrived and could start its task up
to ``_EPS`` *before* its arrival timestamp (a negative queueing
delay).  The engine instead advances ``now`` to the popped event's
timestamp, so a slice never starts before its request arrives and the
idle-advance can never select a zero-length step.  On schedules whose
arrivals do not fall within 1e-9 of an unrelated event edge the two
simulators agree exactly; ``benchmarks/equivalence_guard.py`` enforces
this over the full zoo x SoC grid in CI.

**Queueing outputs.**  Per-request first-start times, queueing delays
(first start minus arrival) and deadline drops are first-class fields
of :class:`ExecutionResult` — the serving metrics the ROADMAP's
open-loop front-end consumes — not post-hoc joins over task records.

**Residency (Constraint 6).**  MNN-style arena behaviour: a slice's
working set is allocated when it starts and the request's accumulated
arenas release only when its last stage departs (or the request is
cancelled).  A task whose admission would exceed physical capacity
waits for residency to drain; when *every* processor is blocked, one
task is force-started and counted as a memory-pressure event (the
paging regime of a real device).

**Causality (exact blame data).**  With ``track_causality=True`` (the
default) the engine records, per task, a :class:`TaskCausality` row:
the instant the slice became ready (its request's arrival for the
first stage, the predecessor's departure otherwise), what *enabled*
its start (arrival, predecessor finish, a specific processor freeing,
a specific residency drain, or the ``_force_start_blocked`` overcommit
path), and an integrated wait breakdown (processor-busy wait,
residency wait, a residual scheduler bucket that absorbs sub-epsilon
event-pop slivers, and off-processor preemption time).  Because ready
instants tile each request's ``[arrival, finish]`` interval exactly,
the components sum to the end-to-end latency with zero residue by
construction — the invariant :mod:`repro.obs.blame` and
``benchmarks/blame_guard.py`` enforce.  The bookkeeping never touches
the step arithmetic, so the equivalence guarantee above is unaffected.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..hardware.memory import MemoryDemand, MemoryGovernor
from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..profiling.slowdown import SliceWorkload, slowdown_fraction
from ..util import percentile
from .arrivals import ArrivalsLike, resolve_arrivals

_EPS = 1e-9

#: MNN-style runtime arenas (weight buffers, pre-allocated tensor pools,
#: backend scratch space) occupy a multiple of the raw working set.
ARENA_OVERHEAD_FACTOR = 3.0

# ----------------------------------------------------------- event model

ARRIVAL = "arrival"
TASK_READY = "task_ready"
RATE_CHANGE = "rate_change"
DEPARTURE = "departure"
PREEMPTION = "preemption"
CANCELLATION = "cancellation"

#: The engine's full event taxonomy, in no particular order.
EVENT_KINDS = (
    ARRIVAL,
    TASK_READY,
    RATE_CHANGE,
    DEPARTURE,
    PREEMPTION,
    CANCELLATION,
)


@dataclass(frozen=True)
class Event:
    """One processed simulation event (kept when ``keep_events=True``)."""

    time_ms: float
    kind: str
    request: Optional[int] = None
    processor: Optional[str] = None
    detail: str = ""


# ------------------------------------------------------- task structures


@dataclass
class ChainTask:
    """One schedulable unit: a slice bound to a specific processor."""

    request: int
    proc: ProcessorSpec
    solo_ms: float
    workload: Optional[SliceWorkload]
    working_set: float
    stage: int = 0
    remaining_ms: float = 0.0
    start_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.solo_ms < 0:
            raise ValueError("solo_ms must be >= 0")
        self.remaining_ms = self.solo_ms


@dataclass(frozen=True)
class TaskRecord:
    """Completed execution of one slice."""

    request: int
    stage: int
    processor: str
    start_ms: float
    finish_ms: float
    solo_ms: float
    traffic_bytes: float = 0.0

    @property
    def duration_ms(self) -> float:
        return self.finish_ms - self.start_ms

    @property
    def slowdown(self) -> float:
        """Observed average slowdown vs the solo time."""
        if self.solo_ms <= 0:
            return 0.0
        return self.duration_ms / self.solo_ms - 1.0


# ----------------------------------------------------- causality model

#: What enabled a slice's start (``TaskCausality.cause``).
CAUSE_ARRIVAL = "arrival"
CAUSE_PREDECESSOR = "predecessor"
CAUSE_PROCESSOR_FREED = "processor_freed"
CAUSE_RESIDENCY_DRAIN = "residency_drain"
CAUSE_FORCED = "forced"
#: A slice cancelled before it ever started has no enabling cause.
CAUSE_UNSTARTED = "unstarted"

#: The full enabling-cause taxonomy, in no particular order.
CAUSE_KINDS = (
    CAUSE_ARRIVAL,
    CAUSE_PREDECESSOR,
    CAUSE_PROCESSOR_FREED,
    CAUSE_RESIDENCY_DRAIN,
    CAUSE_FORCED,
    CAUSE_UNSTARTED,
)


@dataclass(frozen=True)
class TaskCausality:
    """Exact wait/enablement accounting for one slice.

    ``index`` is the slice's position in its request's chain (stages
    may repeat in hand-built chains; positions never do) —
    ``enabled_by`` references ``(request, index)`` of the task whose
    completion triggered this one's start, or ``None`` when the start
    was triggered by the request's own arrival, a forced overcommit,
    or a preemption vacating the processor.

    The wait interval ``[ready_ms, start_ms]`` decomposes into
    ``processor_busy_wait_ms + residency_wait_ms + scheduler_wait_ms``
    where the scheduler bucket is the float residual (it absorbs the
    sub-epsilon slivers between event pops and starts, so the sum is
    exact by construction).  The run interval ``[start_ms, finish_ms]``
    decomposes into ``executed_solo_ms + preempted_ms +
    inflation_ms`` — contention inflation is likewise the residual.
    A slice cancelled mid-run is ``truncated`` with
    ``executed_solo_ms`` the progress it actually made; a slice
    cancelled before starting has ``start_ms=None`` and only waits.
    """

    request: int
    stage: int
    index: int
    processor: str
    cause: str
    enabled_by: Optional[Tuple[int, int]]
    ready_ms: float
    start_ms: Optional[float]
    finish_ms: float
    solo_ms: float
    executed_solo_ms: float
    processor_busy_wait_ms: float
    residency_wait_ms: float
    scheduler_wait_ms: float
    preempted_ms: float
    truncated: bool = False

    @property
    def wait_ms(self) -> float:
        """Ready-to-start wait (ready-to-cancel for unstarted slices)."""
        anchor = self.start_ms if self.start_ms is not None else self.finish_ms
        return anchor - self.ready_ms

    @property
    def duration_ms(self) -> float:
        """Wall time on (or preempted from) the processor."""
        if self.start_ms is None:
            return 0.0
        return self.finish_ms - self.start_ms

    @property
    def inflation_ms(self) -> float:
        """Contention inflation: wall duration beyond solo + preempted."""
        return self.duration_ms - self.executed_solo_ms - self.preempted_ms


class _BlameState:
    """Mutable per-head accrual for a ready-but-unfinished slice."""

    __slots__ = (
        "ready_ms",
        "start_ms",
        "cause",
        "enabled_by",
        "busy_wait_ms",
        "residency_wait_ms",
        "preempted_ms",
        "last_block",
    )

    def __init__(self, ready_ms: float) -> None:
        self.ready_ms = ready_ms
        self.start_ms: Optional[float] = None
        self.cause: Optional[str] = None
        self.enabled_by: Optional[Tuple[int, int]] = None
        self.busy_wait_ms = 0.0
        self.residency_wait_ms = 0.0
        self.preempted_ms = 0.0
        self.last_block: Optional[str] = None


@dataclass(frozen=True)
class TracePoint:
    """One sample of the shared-memory subsystem state."""

    time_ms: float
    bandwidth_demand_gbps: float
    memory_freq_mhz: int
    used_bytes: float
    active_processors: Tuple[str, ...]


@dataclass
class ExecutionResult:
    """Everything the experiments read off one simulated run.

    ``request_first_start_ms``, ``dropped_requests`` and
    ``cancelled_requests`` are first-class queueing outputs of the
    event engine; results reconstructed from older archives leave them
    empty, in which case first starts are derived from the task
    records on demand.
    """

    records: List[TaskRecord]
    makespan_ms: float
    request_arrival_ms: List[float]
    request_finish_ms: List[float]
    trace: List[TracePoint]
    processor_busy_ms: Dict[str, float]
    memory_pressure_events: int = 0
    request_first_start_ms: List[Optional[float]] = field(
        default_factory=list
    )
    dropped_requests: Tuple[int, ...] = ()
    cancelled_requests: Tuple[int, ...] = ()
    events: List[Event] = field(default_factory=list)
    causality: List[TaskCausality] = field(default_factory=list)
    corun_inflation_ms: Dict[Tuple[str, str], float] = field(
        default_factory=dict
    )

    @property
    def num_requests(self) -> int:
        return len(self.request_finish_ms)

    @property
    def deadline_drops(self) -> int:
        """Requests cancelled because their deadline elapsed unstarted."""
        return len(self.dropped_requests)

    def completed_requests(self) -> List[int]:
        """Request ids that ran to completion (arrival order)."""
        removed = set(self.dropped_requests) | set(self.cancelled_requests)
        return [i for i in range(self.num_requests) if i not in removed]

    @property
    def num_completed(self) -> int:
        """How many requests ran to completion (vs dropped/cancelled)."""
        return len(self.completed_requests())

    @property
    def throughput_per_s(self) -> float:
        """Completed inferences per second (the paper's throughput)."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.num_completed / (self.makespan_ms / 1e3)

    def first_start_ms(self, request: int) -> Optional[float]:
        """When the request's first slice started; None if it never ran."""
        if self.request_first_start_ms:
            return self.request_first_start_ms[request]
        starts = [r.start_ms for r in self.records if r.request == request]
        return min(starts) if starts else None

    def queueing_delay_ms(self, request: int) -> Optional[float]:
        """Wait between arrival and first execution; None if never ran."""
        start = self.first_start_ms(request)
        if start is None:
            return None
        return start - self.request_arrival_ms[request]

    def queueing_delays_ms(self) -> List[Optional[float]]:
        """Per-request queueing delays (None for never-started drops)."""
        return [self.queueing_delay_ms(i) for i in range(self.num_requests)]

    @property
    def mean_queueing_delay_ms(self) -> Optional[float]:
        """Mean wait over requests that started; None if none ever did.

        The tri-state matters: ``0.0`` means every started request was
        served immediately, ``None`` means nothing started at all (an
        all-dropped run has no queueing behaviour to report).
        """
        delays = [d for d in self.queueing_delays_ms() if d is not None]
        return sum(delays) / len(delays) if delays else None

    def request_latency_ms(self, request: int) -> float:
        """Completion latency of one request, from its arrival."""
        return self.request_finish_ms[request] - self.request_arrival_ms[request]

    def mean_latency_ms(self) -> float:
        completed = self.completed_requests()
        return sum(
            self.request_latency_ms(i) for i in completed
        ) / max(1, len(completed))

    def latency_percentile_ms(self, pct: float) -> float:
        """Interpolated completion-latency percentile across requests.

        Uses the shared linear-interpolation definition
        (:func:`repro.util.percentile` with ``method="linear"``,
        numpy's default): p0 is the fastest completed request, p100 the
        slowest, p50 the median.  Dropped/cancelled requests are
        excluded — they have no completion latency.

        Raises:
            ValueError: when ``pct`` is outside [0, 100] or the run
                completed no requests.
        """
        completed = self.completed_requests()
        if not completed:
            raise ValueError(
                "no completed requests: latency percentile undefined"
            )
        latencies = [self.request_latency_ms(i) for i in completed]
        return percentile(latencies, pct, method="linear")

    @property
    def p50_latency_ms(self) -> float:
        return self.latency_percentile_ms(50.0)

    @property
    def p95_latency_ms(self) -> float:
        return self.latency_percentile_ms(95.0)

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_percentile_ms(99.0)

    def utilization(self, processor: str, span: Optional[float] = None) -> float:
        """Busy fraction of one processor over the makespan."""
        span = span if span is not None else self.makespan_ms
        if span <= 0:
            return 0.0
        return self.processor_busy_ms.get(processor, 0.0) / span

    def total_bubble_ms(self) -> float:
        """Idle time of processors between their first and last task."""
        total = 0.0
        by_proc: Dict[str, List[TaskRecord]] = {}
        for rec in self.records:
            by_proc.setdefault(rec.processor, []).append(rec)
        for recs in by_proc.values():
            recs = sorted(recs, key=lambda r: r.start_ms)
            span = recs[-1].finish_ms - recs[0].start_ms
            busy = sum(r.duration_ms for r in recs)
            total += max(0.0, span - busy)
        return total


# ------------------------------------------------------------ the engine


class DiscreteEventEngine:
    """Event-heap simulation of per-request task chains on one SoC.

    The engine is single-use: construct, optionally schedule
    cancellations/preemptions, then :meth:`run` (or drive it
    incrementally with :meth:`step` / :meth:`run_until_ms`).

    Args:
        soc: The platform (contention coupling, memory capacity, DVFS).
        chains: One ordered task chain per request; tasks run strictly
            in chain order, each on its own processor.
        arrivals: Per-request arrival times in ms, an
            :class:`~repro.runtime.arrivals.ArrivalProcess`, or None
            (closed loop: everything arrives at t=0).
        with_contention: Apply dynamic co-execution slowdown.
        enforce_memory: Enforce Constraint 6 (tasks wait for residency).
        trace: Record :class:`TracePoint` samples at event edges.
        processor_offline_ms: Fault injection — processors stop
            accepting *new* tasks at the given times (a running task
            completes); pending tasks bound for an offline unit fall
            back to the best online processor supporting their slice.
        deadline_ms: A scalar (every request) or per-request sequence
            (None entries exempt) of *relative* deadlines: a request
            whose first slice has not started ``deadline_ms`` after its
            arrival is dropped (a ``cancellation`` event with detail
            ``"deadline"``), releasing its pending work.
        record: Feed the observability recorder (span + execution
            metrics); the planner's objective passes False for its
            hundreds of internal probe simulations.
        keep_events: Keep the processed-event log on the result
            (off by default — objective probes run thousands of
            simulations and must not accumulate event objects).
        track_causality: Record per-task :class:`TaskCausality` rows
            and the co-run inflation matrix (on by default; pure
            bookkeeping that never perturbs the step arithmetic).

    Raises:
        ValueError: on arrival-length mismatch, a task whose processor
            is not part of the SoC, or a negative deadline.
        MemoryError: if a single slice alone exceeds the capacity.
    """

    def __init__(
        self,
        soc: SocSpec,
        chains: Sequence[Sequence[ChainTask]],
        arrivals: ArrivalsLike = None,
        with_contention: bool = True,
        enforce_memory: bool = True,
        trace: bool = False,
        processor_offline_ms: Optional[Dict[str, float]] = None,
        deadline_ms: Optional[object] = None,
        record: bool = True,
        keep_events: bool = False,
        track_causality: bool = True,
    ) -> None:
        self._soc = soc
        self._chains = [list(chain) for chain in chains]
        n = len(self._chains)
        self._n = n
        self._arrival_ms = resolve_arrivals(n, arrivals)
        self._with_contention = with_contention
        self._enforce_memory = enforce_memory
        self._trace_enabled = trace
        self._record = record
        self._keep_events = keep_events
        self._offline = dict(processor_offline_ms or {})
        self._deadline_ms = self._resolve_deadlines(deadline_ms)

        proc_names = {p.name for p in soc.processors}
        capacity = soc.memory_capacity_bytes
        for chain in self._chains:
            for task in chain:
                if task.proc.name not in proc_names:
                    raise ValueError(
                        f"task processor {task.proc.name!r} not on "
                        f"SoC {soc.name!r}"
                    )
                if enforce_memory and task.working_set > capacity:
                    raise MemoryError(
                        f"slice of request {task.request} needs "
                        f"{task.working_set / 1e6:.0f} MB alone; capacity "
                        f"is {capacity / 1e6:.0f} MB"
                    )
        self._capacity = capacity
        self._governor = MemoryGovernor(soc)

        # --- mutable simulation state
        self._now = 0.0
        self._next_idx = [0] * n
        self._prev_done = [True] * n
        self._arrived = [False] * n
        self._proc_running: Dict[str, Optional[ChainTask]] = {
            p.name: None for p in soc.processors
        }
        self._request_alloc: Dict[int, float] = {}
        self._allocated: Set[int] = set()  # id(task) with a live arena
        self._used_bytes = 0.0
        self._memory_pressure_events = 0
        self._records: List[TaskRecord] = []
        self._trace_points: List[TracePoint] = []
        self._busy: Dict[str, float] = {p.name: 0.0 for p in soc.processors}
        self._finish: List[float] = [0.0] * n
        self._first_start: List[Optional[float]] = [None] * n
        self._total_tasks = sum(len(c) for c in self._chains)
        self._outstanding = self._total_tasks
        self._completed = 0
        self._dropped: List[int] = []
        self._cancelled: List[int] = []
        self._removed: Set[int] = set()
        self._events: List[Event] = []
        self._events_processed = 0
        self._finished_run = False

        # --- causality bookkeeping (never perturbs the step arithmetic)
        self._track_causality = track_causality
        self._blame: Dict[Tuple[int, int], _BlameState] = {}
        self._causality: List[TaskCausality] = []
        self._corun_inflation: Dict[Tuple[str, str], float] = {}
        # Per processor: (request, index) of the task whose departure
        # (or cancellation) most recently vacated it; None after a
        # preemption (the vacating slice has no finish yet).
        self._last_freed: Dict[str, Optional[Tuple[int, int]]] = {
            p.name: None for p in soc.processors
        }
        # (request, index) of the most recent arena-releasing event.
        self._last_release: Optional[Tuple[int, int]] = None

        # --- the exogenous event heap: (time_ms, seq, kind, payload)
        self._heap: List[Tuple[float, int, str, object]] = []
        self._seq = 0
        for i, arrival in enumerate(self._arrival_ms):
            self._push(arrival, ARRIVAL, i)
        for proc_name, t_ms in self._offline.items():
            self._push(t_ms, RATE_CHANGE, proc_name)
        for i, deadline in enumerate(self._deadline_ms):
            if deadline is not None:
                self._push(
                    self._arrival_ms[i] + deadline, CANCELLATION, (i, "deadline")
                )

    # ------------------------------------------------------ construction

    def _resolve_deadlines(
        self, deadline_ms: Optional[object]
    ) -> List[Optional[float]]:
        if deadline_ms is None:
            return [None] * self._n
        if isinstance(deadline_ms, (int, float)):
            deadlines: List[Optional[float]] = [float(deadline_ms)] * self._n
        else:
            deadlines = [
                None if d is None else float(d)
                for d in deadline_ms  # type: ignore[union-attr]
            ]
            if len(deadlines) != self._n:
                raise ValueError(
                    f"expected {self._n} deadlines, got {len(deadlines)}"
                )
        for d in deadlines:
            if d is not None and d < 0:
                raise ValueError(f"deadline must be >= 0 ms, got {d}")
        return deadlines

    def _push(self, time_ms: float, kind: str, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time_ms, self._seq, kind, payload))

    def _emit(
        self,
        kind: str,
        request: Optional[int] = None,
        processor: Optional[str] = None,
        detail: str = "",
    ) -> None:
        self._events_processed += 1
        if self._keep_events:
            self._events.append(
                Event(
                    time_ms=self._now,
                    kind=kind,
                    request=request,
                    processor=processor,
                    detail=detail,
                )
            )

    # -------------------------------------------------------- public API

    @property
    def now_ms(self) -> float:
        return self._now

    @property
    def done(self) -> bool:
        return self._outstanding <= 0

    def next_event_time_ms(self) -> Optional[float]:
        """Earliest pending exogenous event time (heap peek)."""
        return self._heap[0][0] if self._heap else None

    def schedule_cancellation(self, request: int, at_ms: float) -> None:
        """Cancel a request at ``at_ms`` (removes its remaining work)."""
        self._check_request(request)
        self._push(at_ms, CANCELLATION, (request, "user"))

    def schedule_preemption(self, request: int, at_ms: float) -> None:
        """Preempt the request's running slice at ``at_ms``.

        The slice keeps its progress and re-enters its processor's
        ready set (FIFO by request id, like any other ready head); a
        no-op when the request has nothing running at that time.
        """
        self._check_request(request)
        self._push(at_ms, PREEMPTION, request)

    def _check_request(self, request: int) -> None:
        if not 0 <= request < self._n:
            raise ValueError(
                f"request {request} out of range [0, {self._n})"
            )

    def run(self) -> ExecutionResult:
        """Run the simulation to completion and build the result."""
        if self._finished_run:
            raise RuntimeError("engine instances are single-use")
        # The span covers exactly the event loop's wall time; the
        # context manager closes it on the RuntimeError raise paths too.
        with (
            obs.span(
                "execute",
                requests=self._n,
                tasks=self._total_tasks,
                contention=self._with_contention,
            )
            if self._record
            else obs.NULL_SPAN
        ) as _span:
            while self._outstanding > 0:
                self._step()
            _span.set(
                makespan_ms=self._now,
                memory_pressure=self._memory_pressure_events,
            )
        self._finished_run = True
        if self._record and obs.enabled():
            obs.add("tasks_executed", self._completed)
            obs.add("engine_events_processed", self._events_processed)
            obs.add("memory_pressure_events", self._memory_pressure_events)
            if self._dropped:
                obs.add("deadline_drops", len(self._dropped))
            obs.set_gauge("last_execution_makespan_ms", self._now)
            for rec in self._records:
                if rec.solo_ms > 0:
                    obs.observe("slice_slowdown", rec.slowdown)
        return self.result()

    def run_until_ms(self, until_ms: float) -> None:
        """Advance the simulation until ``now_ms`` reaches ``until_ms``.

        Incremental per-event-window querying: steps run while work
        remains and the clock is below ``until_ms``; the step that
        crosses the boundary completes (events are atomic).
        """
        while self._outstanding > 0 and self._now < until_ms:
            self._step()

    def step(self) -> bool:
        """Process one event window; False when the simulation is done."""
        if self._outstanding <= 0:
            return False
        self._step()
        return self._outstanding > 0

    @property
    def event_log(self) -> List[Event]:
        """The processed-event log so far (``keep_events=True`` only).

        Live view, not a copy: streaming consumers (the timeline and
        SLO folds) read ``event_log[cursor:]`` between ``step()`` calls
        instead of re-snapshotting the whole result each window.
        """
        return self._events

    def result(self) -> ExecutionResult:
        """Snapshot the (possibly still running) simulation state."""
        return ExecutionResult(
            records=list(self._records),
            makespan_ms=self._now,
            request_arrival_ms=list(self._arrival_ms),
            request_finish_ms=list(self._finish),
            trace=list(self._trace_points),
            processor_busy_ms=dict(self._busy),
            memory_pressure_events=self._memory_pressure_events,
            request_first_start_ms=list(self._first_start),
            dropped_requests=tuple(self._dropped),
            cancelled_requests=tuple(self._cancelled),
            events=list(self._events),
            causality=list(self._causality),
            corun_inflation_ms=dict(self._corun_inflation),
        )

    # ---------------------------------------------------- event handlers

    def _pop_due_events(self) -> None:
        """Fire every pending event with ``time <= now + _EPS``.

        ``now`` advances to each popped event's timestamp (it can only
        move forward, by at most ``_EPS``), which is the fix for the
        legacy off-by-epsilon arrival scan: a slice never starts before
        its request's arrival timestamp, so queueing delays are
        non-negative by construction.
        """
        while self._heap and self._heap[0][0] <= self._now + _EPS:
            time_ms, _seq, kind, payload = heapq.heappop(self._heap)
            if time_ms > self._now:
                self._now = time_ms
            if kind == ARRIVAL:
                request = int(payload)  # type: ignore[arg-type]
                self._arrived[request] = True
                if request not in self._removed:
                    # The first slice becomes ready at the arrival
                    # timestamp (not the possibly epsilon-later pop).
                    self._blame_ready(request, self._arrival_ms[request])
                self._emit(ARRIVAL, request=request)
            elif kind == RATE_CHANGE:
                self._emit(
                    RATE_CHANGE,
                    processor=str(payload),
                    detail="offline",
                )
            elif kind == CANCELLATION:
                request, reason = payload  # type: ignore[misc]
                self._fire_cancellation(int(request), str(reason))
            elif kind == PREEMPTION:
                self._fire_preemption(int(payload))  # type: ignore[arg-type]

    def _request_finished(self, request: int) -> bool:
        if self._next_idx[request] < len(self._chains[request]):
            return False
        if not self._prev_done[request]:
            return False  # last slice still running
        return request not in self._removed

    def _fire_cancellation(self, request: int, reason: str) -> None:
        if request in self._removed:
            return
        chain = self._chains[request]
        if self._next_idx[request] >= len(chain) and self._prev_done[request]:
            return  # already finished: nothing to cancel
        if reason == "deadline" and self._first_start[request] is not None:
            return  # started in time: the deadline drop does not fire
        running_proc: Optional[str] = None
        running_task: Optional[ChainTask] = None
        for proc_name, task in self._proc_running.items():
            if task is not None and task.request == request:
                running_proc, running_task = proc_name, task
                break
        # Finalize partial causality before the indices are mutated so
        # the wait/run components still sum to [arrival, cancel].
        trunc_key: Optional[Tuple[int, int]] = None
        if self._track_causality:
            idx = self._next_idx[request]
            if running_task is not None:
                if self._finalize_blame(running_task, idx - 1, truncated=True):
                    trunc_key = (request, idx - 1)
            elif self._prev_done[request] and idx < len(chain):
                if self._finalize_blame(chain[idx], idx, truncated=True):
                    trunc_key = (request, idx)
        pending = len(chain) - self._next_idx[request]
        drained = pending + (1 if running_proc is not None else 0)
        if running_proc is not None:
            self._proc_running[running_proc] = None
            if self._track_causality:
                self._last_freed[running_proc] = trunc_key
        self._next_idx[request] = len(chain)
        self._prev_done[request] = True
        released = self._request_alloc.pop(request, 0.0)
        self._used_bytes -= released
        if self._track_causality and released > 0.0:
            self._last_release = trunc_key
        self._outstanding -= drained
        self._removed.add(request)
        self._finish[request] = self._now
        if reason == "deadline":
            self._dropped.append(request)
        else:
            self._cancelled.append(request)
        self._emit(
            CANCELLATION,
            request=request,
            processor=running_proc,
            detail=reason,
        )

    def _fire_preemption(self, request: int) -> None:
        for proc_name, task in self._proc_running.items():
            if task is None or task.request != request:
                continue
            self._proc_running[proc_name] = None
            # Roll the chain head back; progress lives in remaining_ms
            # and the arena stays allocated (the slice will resume).
            self._next_idx[request] -= 1
            self._prev_done[request] = True
            if self._track_causality:
                # The vacating slice has no finish yet, so a start it
                # enables cannot reference a completed record.
                self._last_freed[proc_name] = None
            self._emit(PREEMPTION, request=request, processor=proc_name)
            return

    # ------------------------------------------------ causality tracking

    def _blame_ready(self, request: int, ready_ms: float) -> None:
        """Open accrual for the request's current head, if any."""
        if not self._track_causality:
            return
        idx = self._next_idx[request]
        if idx >= len(self._chains[request]):
            return
        key = (request, idx)
        if key not in self._blame:
            self._blame[key] = _BlameState(ready_ms)

    def _accrue_waits(self, dt: float) -> None:
        """Integrate wait buckets for every ready-but-waiting head.

        Called once per advancing step with the step's ``dt``: a head
        that is off-processor after having started accrues preemption
        time; otherwise the blocking resource at this instant decides
        the bucket (occupied processor, then memory admission).  The
        residual scheduler bucket needs no accrual — it is computed at
        finalization as ``wait − busy − residency``.
        """
        for i in range(self._n):
            idx = self._next_idx[i]
            if idx >= len(self._chains[i]) or not self._prev_done[i]:
                continue
            if not self._arrived[i] or i in self._removed:
                continue
            head = self._chains[i][idx]
            state = self._blame.get((i, idx))
            if state is None:
                continue
            if head.start_ms is not None:
                state.preempted_ms += dt
            elif self._proc_running[head.proc.name] is not None:
                state.busy_wait_ms += dt
                state.last_block = "processor"
            elif self._enforce_memory:
                admit = (
                    head.working_set
                    if id(head) not in self._allocated
                    else 0.0
                )
                if self._used_bytes + admit > self._capacity:
                    state.residency_wait_ms += dt
                    state.last_block = "memory"

    def _accrue_corun_inflation(
        self, running: List[ChainTask], rates: Dict[int, float], dt: float
    ) -> None:
        """Attribute each slice's contention inflation to its co-runners.

        Over a step of wall time ``dt`` a slice running at rate
        ``1 + s`` makes ``dt / (1 + s)`` of solo progress, so
        ``dt − dt / rate`` is pure inflation; it is split equally among
        the workload-bearing co-runners (Eq. 1's slowdown is not
        decomposable per co-runner, so the equal split is the
        documented convention).  Keys are directional:
        ``(suffering processor, co-runner processor)``.
        """
        for task in running:
            rate = rates[id(task)]
            if rate <= 1.0:
                continue
            others = [
                t for t in running if t is not task and t.workload is not None
            ]
            if not others:
                continue
            share = (dt - dt / rate) / len(others)
            a = task.proc.name
            for other in others:
                pair = (a, other.proc.name)
                self._corun_inflation[pair] = (
                    self._corun_inflation.get(pair, 0.0) + share
                )

    def _finalize_blame(
        self, task: ChainTask, position: int, truncated: bool
    ) -> bool:
        """Freeze the head's accrual into a :class:`TaskCausality` row."""
        state = self._blame.pop((task.request, position), None)
        if state is None:
            return False
        end = self._now
        if state.start_ms is not None:
            wait = state.start_ms - state.ready_ms
            executed = task.solo_ms
            if truncated:
                executed = task.solo_ms - max(task.remaining_ms, 0.0)
        else:
            wait = end - state.ready_ms
            executed = 0.0
        scheduler = wait - state.busy_wait_ms - state.residency_wait_ms
        self._causality.append(
            TaskCausality(
                request=task.request,
                stage=task.stage,
                index=position,
                processor=task.proc.name,
                cause=state.cause or CAUSE_UNSTARTED,
                enabled_by=state.enabled_by,
                ready_ms=state.ready_ms,
                start_ms=state.start_ms,
                finish_ms=end,
                solo_ms=task.solo_ms,
                executed_solo_ms=executed,
                processor_busy_wait_ms=state.busy_wait_ms,
                residency_wait_ms=state.residency_wait_ms,
                scheduler_wait_ms=scheduler,
                preempted_ms=state.preempted_ms,
                truncated=truncated,
            )
        )
        return True

    # --------------------------------------------------- scheduling core

    def _is_offline(self, proc_name: str) -> bool:
        return (
            proc_name in self._offline
            and self._now >= self._offline[proc_name] - _EPS
        )

    def _reassign_offline_heads(self) -> None:
        """Fall back pending tasks whose processor has gone offline.

        Reassignment is earliest-finish-time greedy across the online
        units, seeded with each unit's current backlog, so a burst of
        displaced work spreads over the remaining silicon instead of
        piling onto the single fastest survivor.
        """
        backlog: Dict[str, float] = {}
        for proc in self._soc.processors:
            running = self._proc_running[proc.name]
            backlog[proc.name] = (
                running.remaining_ms if running is not None else 0.0
            )
        for i in range(self._n):
            idx = self._next_idx[i]
            if idx >= len(self._chains[i]):
                continue
            task = self._chains[i][idx]
            if not self._is_offline(task.proc.name):
                backlog[task.proc.name] = (
                    backlog.get(task.proc.name, 0.0) + task.remaining_ms
                )
                continue
            candidates = []
            for proc in self._soc.processors:
                if self._is_offline(proc.name):
                    continue
                if task.workload is not None:
                    solo = task.workload.profile.exec_ms(
                        proc, task.workload.start, task.workload.end
                    )
                    if solo == float("inf"):
                        continue
                else:
                    solo = task.solo_ms  # no profile: keep the estimate
                candidates.append((backlog[proc.name] + solo, solo, proc))
            if not candidates:
                raise RuntimeError(
                    f"request {task.request}: no online processor can run "
                    f"its slice after {task.proc.name!r} went offline"
                )
            _, solo, proc = min(candidates, key=lambda c: c[0])
            backlog[proc.name] += solo
            task.proc = proc
            task.solo_ms = solo
            task.remaining_ms = solo
            if task.workload is not None:
                task.workload = SliceWorkload(
                    profile=task.workload.profile,
                    proc=proc,
                    start=task.workload.start,
                    end=task.workload.end,
                )

    def _ready_task_for(self, proc_name: str) -> Optional[ChainTask]:
        if self._is_offline(proc_name):
            return None
        best: Optional[ChainTask] = None
        for i in range(self._n):
            idx = self._next_idx[i]
            if idx >= len(self._chains[i]) or not self._prev_done[i]:
                continue
            task = self._chains[i][idx]
            if task.proc.name != proc_name:
                continue
            if not self._arrived[i]:
                continue
            if best is None or task.request < best.request:
                best = task
        return best

    def _start_task(
        self, task: ChainTask, proc_name: str, forced: bool = False
    ) -> None:
        fresh = task.start_ms is None
        if task.start_ms is None:
            task.start_ms = self._now  # a resumed slice keeps its start
        if self._track_causality and fresh:
            position = self._next_idx[task.request]
            state = self._blame.get((task.request, position))
            if state is None:  # defensive: readiness should have opened it
                state = _BlameState(self._now)
                self._blame[(task.request, position)] = state
            state.start_ms = self._now
            if forced:
                state.cause = CAUSE_FORCED
            elif state.last_block == "processor":
                state.cause = CAUSE_PROCESSOR_FREED
                state.enabled_by = self._last_freed.get(proc_name)
            elif state.last_block == "memory":
                state.cause = CAUSE_RESIDENCY_DRAIN
                state.enabled_by = self._last_release
            elif position > 0:
                state.cause = CAUSE_PREDECESSOR
                state.enabled_by = (task.request, position - 1)
            else:
                state.cause = CAUSE_ARRIVAL
        self._proc_running[proc_name] = task
        if id(task) not in self._allocated:
            self._allocated.add(id(task))
            self._used_bytes += task.working_set
            self._request_alloc[task.request] = (
                self._request_alloc.get(task.request, 0.0) + task.working_set
            )
        if self._first_start[task.request] is None:
            self._first_start[task.request] = self._now
        self._next_idx[task.request] += 1
        self._prev_done[task.request] = False
        self._emit(TASK_READY, request=task.request, processor=proc_name)

    def _try_start(self) -> bool:
        """Start whatever fits; True if any ready task is memory-blocked."""
        blocked = False
        for proc in self._soc.processors:
            if self._proc_running[proc.name] is not None:
                continue
            task = self._ready_task_for(proc.name)
            if task is None:
                continue
            admit = task.working_set if id(task) not in self._allocated else 0.0
            if self._enforce_memory and self._used_bytes + admit > self._capacity:
                blocked = True
                continue  # waits for residency to drain
            self._start_task(task, proc.name)
        return blocked

    def _force_start_blocked(self) -> bool:
        """Overcommit one memory-blocked task to break a residency wedge.

        With hold-until-request-completion residency, tight capacities
        can deadlock (every in-flight request waits for memory another
        holds).  A real device pages in this regime; we model that as a
        forced start and count it as a memory-pressure event.
        """
        for proc in self._soc.processors:
            if self._proc_running[proc.name] is not None:
                continue
            task = self._ready_task_for(proc.name)
            if task is None:
                continue
            self._start_task(task, proc.name, forced=True)
            self._memory_pressure_events += 1
            return True
        return False

    def _record_trace(self) -> None:
        if not self._trace_enabled:
            return
        demands = []
        names = []
        for proc in self._soc.processors:
            task = self._proc_running[proc.name]
            if task is None or task.workload is None:
                continue
            names.append(proc.name)
            demands.append(
                MemoryDemand(
                    processor=proc.kind,
                    bandwidth_gbps=task.workload.profile.traffic_rate_gbps(
                        task.workload.proc,
                        task.workload.start,
                        task.workload.end,
                    ),
                    footprint_bytes=task.working_set,
                )
            )
        self._trace_points.append(
            TracePoint(
                time_ms=self._now,
                bandwidth_demand_gbps=sum(d.bandwidth_gbps for d in demands),
                memory_freq_mhz=self._governor.select_frequency(demands),
                used_bytes=self._used_bytes,
                active_processors=tuple(names),
            )
        )

    # ------------------------------------------------------ the main step

    def _step(self) -> None:
        self._pop_due_events()
        if self._outstanding <= 0:
            return  # a cancellation drained the remaining work
        if self._offline:
            self._reassign_offline_heads()
        memory_blocked = self._try_start()
        running = [t for t in self._proc_running.values() if t is not None]
        if not running and memory_blocked:
            if self._force_start_blocked():
                running = [
                    t for t in self._proc_running.values() if t is not None
                ]
        self._record_trace()
        if not running:
            next_ms = self.next_event_time_ms()
            if next_ms is None:
                raise RuntimeError(
                    "simulation wedged: no running task and no pending event"
                )
            self._now = next_ms
            return

        rates: Dict[int, float] = {}
        for task in running:
            slowdown = 0.0
            if self._with_contention and task.workload is not None:
                others = [
                    t.workload
                    for t in running
                    if t is not task and t.workload is not None
                ]
                slowdown = slowdown_fraction(self._soc, task.workload, others)
            rates[id(task)] = 1.0 + slowdown

        dt = min(task.remaining_ms * rates[id(task)] for task in running)
        next_ms = self.next_event_time_ms()
        if next_ms is not None and next_ms > self._now + _EPS:
            dt = min(dt, next_ms - self._now)
        dt = max(dt, _EPS)

        if self._track_causality:
            self._accrue_waits(dt)
            if self._with_contention:
                self._accrue_corun_inflation(running, rates, dt)

        for task in running:
            task.remaining_ms -= dt / rates[id(task)]
            self._busy[task.proc.name] += dt
        self._now += dt

        for proc in self._soc.processors:
            task = self._proc_running[proc.name]
            if task is not None and task.remaining_ms <= _EPS * 10:
                self._proc_running[proc.name] = None
                self._prev_done[task.request] = True
                self._finish[task.request] = self._now
                self._completed += 1
                self._outstanding -= 1
                position = self._next_idx[task.request] - 1
                if self._track_causality:
                    self._finalize_blame(task, position, truncated=False)
                    self._last_freed[proc.name] = (task.request, position)
                    # The successor head becomes ready at this exact
                    # departure instant (the tiling invariant).
                    self._blame_ready(task.request, self._now)
                if self._next_idx[task.request] >= len(
                    self._chains[task.request]
                ):
                    # Last stage done: release the request's arenas.
                    released = self._request_alloc.pop(task.request, 0.0)
                    self._used_bytes -= released
                    if self._track_causality and released > 0.0:
                        self._last_release = (task.request, position)
                traffic = 0.0
                if task.workload is not None:
                    traffic = task.workload.profile.traffic_bytes(
                        task.workload.proc,
                        task.workload.start,
                        task.workload.end,
                    )
                self._records.append(
                    TaskRecord(
                        request=task.request,
                        stage=task.stage,
                        processor=proc.name,
                        start_ms=task.start_ms or 0.0,
                        finish_ms=self._now,
                        solo_ms=task.solo_ms,
                        traffic_bytes=traffic,
                    )
                )
                self._emit(
                    DEPARTURE, request=task.request, processor=proc.name
                )
        self._record_trace()
