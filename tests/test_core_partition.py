"""Tests for the horizontal DP partitioner (Algorithm 1)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    make_slice_cost,
    min_makespan_partition,
    min_makespan_partition_fast,
    partition_model,
)
from repro.hardware.soc import get_soc
from repro.models.zoo import MODEL_NAMES, get_model
from repro.profiling.profiler import ModelProfile, SocProfiler


def brute_force_makespan(n, k, cost):
    """Enumerate all partitions with empty slices allowed."""
    best = math.inf
    # place k-1 dividers (with repetition) among positions 0..n
    for cuts in itertools.combinations_with_replacement(range(n + 1), k - 1):
        bounds = [0, *cuts, n]
        worst = 0.0
        for stage in range(k):
            lo, hi = bounds[stage], bounds[stage + 1]
            if lo < hi:
                worst = max(worst, cost(stage, lo, hi - 1))
        best = min(best, worst)
    return best


def additive_cost(per_stage_layer):
    def cost(k, i, j):
        return sum(per_stage_layer[k][i : j + 1])

    return cost


class TestReferenceDP:
    def test_single_stage(self):
        per = [[1.0, 2.0, 3.0]]
        makespan, slices = min_makespan_partition(3, 1, additive_cost(per))
        assert makespan == 6.0
        assert slices == [(0, 2)]

    def test_two_identical_stages_balance(self):
        per = [[1.0] * 4, [1.0] * 4]
        makespan, slices = min_makespan_partition(4, 2, additive_cost(per))
        assert makespan == 2.0
        assert slices == [(0, 1), (2, 3)]

    def test_empty_stage_allowed_when_one_dominates(self):
        # Stage 0 is 100x faster: everything should go there.
        per = [[0.01] * 4, [1.0] * 4]
        makespan, slices = min_makespan_partition(4, 2, additive_cost(per))
        assert slices == [(0, 3), None]
        assert makespan == pytest.approx(0.04)

    def test_infeasible_layer_forces_fallback(self):
        per = [[1.0] * 4, [1.0] * 4]

        def cost(k, i, j):
            if k == 0 and any(t == 2 for t in range(i, j + 1)):
                return math.inf
            return additive_cost(per)(k, i, j)

        makespan, slices = min_makespan_partition(4, 2, cost)
        # layer 2 must live on stage 1.
        assert slices[1] is not None
        start, end = slices[1]
        assert start <= 2 <= end

    def test_totally_infeasible_raises(self):
        def cost(k, i, j):
            return math.inf

        with pytest.raises(ValueError):
            min_makespan_partition(3, 2, cost)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            min_makespan_partition(0, 2, lambda k, i, j: 1.0)
        with pytest.raises(ValueError):
            min_makespan_partition(3, 0, lambda k, i, j: 1.0)

    @given(
        st.integers(1, 7),
        st.integers(1, 4),
        st.integers(0, 10_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_brute_force(self, n, k, seed):
        import random

        rng = random.Random(seed)
        per = [[rng.uniform(0.1, 5.0) for _ in range(n)] for _ in range(k)]
        cost = additive_cost(per)
        expected = brute_force_makespan(n, k, cost)
        got, slices = min_makespan_partition(n, k, cost)
        assert got == pytest.approx(expected)
        # Returned slices achieve the claimed makespan.
        achieved = max(
            (cost(s, lo, hi) for s, sl in enumerate(slices) if sl for lo, hi in [sl]),
            default=0.0,
        )
        assert achieved == pytest.approx(got)


class TestFastDP:
    @given(st.integers(1, 10), st.integers(1, 4), st.integers(0, 10_000))
    @settings(max_examples=120, deadline=None)
    def test_fast_matches_reference_on_monotone_costs(self, n, k, seed):
        import random

        rng = random.Random(seed)
        per = [[rng.uniform(0.1, 5.0) for _ in range(n)] for _ in range(k)]
        cost = additive_cost(per)
        ref, _ = min_makespan_partition(n, k, cost)
        fast, _ = min_makespan_partition_fast(n, k, cost)
        assert fast == pytest.approx(ref)

    def test_fast_with_infeasible_suffix(self):
        per = [[1.0] * 5, [1.0] * 5]

        def cost(k, i, j):
            if k == 0 and j >= 3:
                return math.inf
            return additive_cost(per)(k, i, j)

        ref, _ = min_makespan_partition(5, 2, cost)
        fast, _ = min_makespan_partition_fast(5, 2, cost)
        assert fast == pytest.approx(ref)


class TestPartitionModel:
    @pytest.fixture(scope="class")
    def kirin(self):
        return get_soc("kirin990")

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_makespan_never_exceeds_best_solo(self, kirin, name):
        profile = ModelProfile(get_model(name), kirin)
        result = partition_model(profile, kirin.processors)
        best_solo = min(
            profile.whole_model_ms(p)
            for p in kirin.processors
            if profile.feasible(p, 0, profile.model.num_layers - 1)
        )
        assert result.makespan_ms <= best_solo + 1e-9

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_slices_are_contiguous_cover(self, kirin, name):
        profile = ModelProfile(get_model(name), kirin)
        result = partition_model(profile, kirin.processors)
        expected = 0
        for slc in result.slices:
            if slc is None:
                continue
            start, end = slc
            assert start == expected
            expected = end + 1
        assert expected == profile.model.num_layers

    def test_bert_avoids_npu_entirely(self, kirin):
        profile = ModelProfile(get_model("bert"), kirin)
        result = partition_model(profile, kirin.processors)
        npu_stage = [
            k for k, p in enumerate(kirin.processors) if p.name == "npu"
        ][0]
        assert result.slices[npu_stage] is None

    def test_stage_times_consistent_with_makespan(self, kirin):
        profile = ModelProfile(get_model("vgg16"), kirin)
        result = partition_model(profile, kirin.processors)
        assert max(result.stage_times_ms) == pytest.approx(result.makespan_ms)
        assert result.total_time_ms() >= result.makespan_ms

    def test_occupied_stages(self, kirin):
        profile = ModelProfile(get_model("vit"), kirin)
        result = partition_model(profile, kirin.processors)
        for k in result.occupied_stages():
            assert result.slices[k] is not None

    def test_empty_processor_list_rejected(self, kirin):
        profile = ModelProfile(get_model("vit"), kirin)
        with pytest.raises(ValueError):
            partition_model(profile, [])

    def test_slice_cost_callback_excludes_copy_when_asked(self, kirin):
        profile = ModelProfile(get_model("resnet50"), kirin)
        with_copy = make_slice_cost(profile, kirin.processors, include_copy=True)
        without = make_slice_cost(profile, kirin.processors, include_copy=False)
        assert with_copy(0, 0, 5) >= without(0, 0, 5)


class TestFastDPWithInfeasibleLayers:
    """Fast solver exactness when some (stage, layer) pairs are
    INFEASIBLE — additive costs with per-stage unsupported layers stay
    monotone (a superset slice still contains the bad layer), so the
    binary-search DP must stay exact, including the all-infeasible
    ValueError path."""

    @given(st.integers(1, 9), st.integers(1, 4), st.integers(0, 10_000))
    @settings(max_examples=150, deadline=None)
    def test_fast_matches_reference_with_unsupported_layers(
        self, n, k, seed
    ):
        import random

        rng = random.Random(seed)
        per = [[rng.uniform(0.1, 5.0) for _ in range(n)] for _ in range(k)]
        # Each stage refuses a random subset of layers (NPU-style).
        unsupported = [
            {ly for ly in range(n) if rng.random() < 0.25} for _ in range(k)
        ]
        base = additive_cost(per)

        def cost(stage, i, j):
            if any(ly in unsupported[stage] for ly in range(i, j + 1)):
                return math.inf
            return base(stage, i, j)

        try:
            ref, ref_slices = min_makespan_partition(n, k, cost)
        except ValueError:
            with pytest.raises(ValueError):
                min_makespan_partition_fast(n, k, cost)
            return
        fast, fast_slices = min_makespan_partition_fast(n, k, cost)
        assert fast == pytest.approx(ref)
        # Fast slices must be feasible and achieve the same makespan.
        achieved = max(
            (
                cost(s, lo, hi)
                for s, sl in enumerate(fast_slices)
                if sl
                for lo, hi in [sl]
            ),
            default=0.0,
        )
        assert achieved == pytest.approx(ref)

    @pytest.mark.parametrize("name", ["bert", "vit", "resnet50"])
    def test_fast_matches_exact_on_copyfree_zoo_costs(self, name):
        # bert carries NPU-unsupported layers on kirin990, so this
        # exercises the INFEASIBLE path on a real profile.
        soc = get_soc("kirin990")
        profile = ModelProfile(get_model(name), soc)
        cost = make_slice_cost(profile, soc.processors, include_copy=False)
        n = profile.model.num_layers
        k = len(soc.processors)
        ref, _ = min_makespan_partition(n, k, cost)
        fast, _ = min_makespan_partition_fast(n, k, cost)
        assert fast == pytest.approx(ref)


class TestDpCellAccounting:
    def test_counter_matches_solver_issued_calls_exactly(self):
        """``dp_cells_evaluated`` must count only slice costs the DP
        solver asked for — not the post-solve stage-time recompute (the
        old code inflated the counter by one per occupied stage)."""
        from repro import obs

        soc = get_soc("kirin990")
        profile = ModelProfile(get_model("resnet50"), soc)
        n = profile.model.num_layers
        k = len(soc.processors)
        calls = 0
        base = make_slice_cost(profile, soc.processors)

        def counting(stage, i, j):
            nonlocal calls
            calls += 1
            return base(stage, i, j)

        min_makespan_partition(n, k, counting)
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            result = partition_model(profile, soc.processors)
            counted = rec.metrics.counter("dp_cells_evaluated").value
        assert counted == calls
        # The recompute-free counter is still attached to a solved plan.
        assert len(result.occupied_stages()) >= 1
