"""Fig. 8: ablation studies of the vertical optimization.

(a) Hetero2Pipe vs exhaustive search, simulated annealing and the
    No-C/T variant over random combinations, sorted by latency — the
    paper finds H2P within ~4 % of the exhaustive optimum and ahead of
    annealing at far lower planning cost.
(b) Component ablation: average latency when contention mitigation and
    tail-bubble optimization are removed one by one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.annealing import AnnealingConfig, anneal_plan
from ..baselines.exhaustive import exhaustive_plan
from ..core.planner import Hetero2PipePlanner, PlannerConfig
from ..hardware.soc import SocSpec, get_soc
from ..profiling.profiler import SocProfiler
from ..runtime.executor import execute_plan
from ..workloads.generator import WorkloadSpec, sample_combinations
from .common import format_table, geomean


@dataclass
class AblationPoint:
    """One workload's latency under each vertical strategy."""

    spec: WorkloadSpec
    latency_ms: Dict[str, float]


def run_strategies(
    soc: Optional[SocSpec] = None,
    num_combinations: int = 100,
    max_models: int = 5,
    seed: int = 7,
) -> List[AblationPoint]:
    """Fig. 8(a): H2P vs exhaustive vs annealing vs No-C/T.

    Workloads are capped at ``max_models`` requests so the exhaustive
    grid stays tractable, mirroring the paper's small-instance study.
    """
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    planner = Hetero2PipePlanner(soc)
    planner_no_ct = Hetero2PipePlanner(soc, PlannerConfig.no_contention_or_tail())
    specs = sample_combinations(
        count=num_combinations, min_size=3, max_size=max_models, seed=seed
    )
    points: List[AblationPoint] = []
    for spec in specs:
        models = spec.models()
        h2p = execute_plan(planner.plan(models).plan).makespan_ms
        no_ct = execute_plan(planner_no_ct.plan(models).plan).makespan_ms
        ex_plan, _ = exhaustive_plan(soc, models, profiler)
        exhaustive = execute_plan(ex_plan).makespan_ms
        sa_plan, _ = anneal_plan(
            soc, models, profiler, AnnealingConfig(steps=250, seed=spec.index)
        )
        annealing = execute_plan(sa_plan).makespan_ms
        points.append(
            AblationPoint(
                spec=spec,
                latency_ms={
                    "h2p": h2p,
                    "no_ct": no_ct,
                    "exhaustive": exhaustive,
                    "annealing": annealing,
                },
            )
        )
    points.sort(key=lambda p: p.latency_ms["h2p"])
    return points


def optimality_gap(points: Sequence[AblationPoint]) -> float:
    """Mean relative gap of H2P to the exhaustive reference."""
    gaps = [
        max(0.0, p.latency_ms["h2p"] / p.latency_ms["exhaustive"] - 1.0)
        for p in points
    ]
    return sum(gaps) / len(gaps)


@dataclass(frozen=True)
class ComponentAblation:
    """Fig. 8(b): average latency per configuration."""

    full_ms: float
    no_contention_ms: float
    no_tail_ms: float
    no_both_ms: float


def run_components(
    soc: Optional[SocSpec] = None,
    num_combinations: int = 100,
    seed: int = 7,
) -> ComponentAblation:
    """Fig. 8(b): remove mitigation and tail optimization one by one."""
    soc = soc or get_soc("kirin990")
    planners = {
        "full": Hetero2PipePlanner(soc),
        "no_contention": Hetero2PipePlanner(
            soc, PlannerConfig(enable_mitigation=False)
        ),
        "no_tail": Hetero2PipePlanner(
            soc, PlannerConfig(enable_tail_optimization=False)
        ),
        "no_both": Hetero2PipePlanner(soc, PlannerConfig.no_contention_or_tail()),
    }
    specs = sample_combinations(count=num_combinations, seed=seed)
    sums = {key: 0.0 for key in planners}
    for spec in specs:
        models = spec.models()
        for key, planner in planners.items():
            sums[key] += execute_plan(planner.plan(models).plan).makespan_ms
    n = len(specs)
    return ComponentAblation(
        full_ms=sums["full"] / n,
        no_contention_ms=sums["no_contention"] / n,
        no_tail_ms=sums["no_tail"] / n,
        no_both_ms=sums["no_both"] / n,
    )


def render_strategies(points: Sequence[AblationPoint]) -> str:
    headers = ["rank", "h2p", "exhaustive", "annealing", "no_ct"]
    body = [
        [
            i,
            p.latency_ms["h2p"],
            p.latency_ms["exhaustive"],
            p.latency_ms["annealing"],
            p.latency_ms["no_ct"],
        ]
        for i, p in enumerate(points)
    ]
    table = format_table(headers, body)
    gap = optimality_gap(points)
    return f"{table}\nmean gap to exhaustive: {gap * 100:.1f}%"


def render_components(ablation: ComponentAblation) -> str:
    headers = ["configuration", "mean_latency_ms"]
    body = [
        ["full", ablation.full_ms],
        ["no contention mitigation", ablation.no_contention_ms],
        ["no tail optimization", ablation.no_tail_ms],
        ["no both (No C/T)", ablation.no_both_ms],
    ]
    return format_table(headers, body)


def main(num_combinations: int = 20) -> str:
    points = run_strategies(num_combinations=num_combinations)
    components = run_components(num_combinations=num_combinations)
    return (
        "Fig. 8(a) vertical strategies (ms, sorted by H2P):\n"
        + render_strategies(points)
        + "\n\nFig. 8(b) component ablation:\n"
        + render_components(components)
    )


if __name__ == "__main__":
    print(main())
