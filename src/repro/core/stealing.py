"""Vertical alignment by work stealing (Algorithm 3) and tail optimization.

After horizontal partitioning (per-model optimal, Algorithm 1) and
contention-aware re-ordering (Algorithm 2), stage times of neighbouring
requests are still mutually misaligned: stage ``k`` of the critical
request co-runs with stage ``k - delta`` of the request ``delta``
positions later, and any mismatch becomes a pipeline bubble (Eq. 3).

Within each contention window the algorithm:

1. identifies the *critical path* — the request with the largest total
   stage time;
2. *steals work* between adjacent stages of every other request in the
   window, moving boundary layers so that each of its stages approaches
   the diagonally-aligned stage time of the critical request (Eq. 11's
   absolute-deviation objective, driven to a local minimum by greedy
   single-layer boundary moves in both directions);
3. slides the window by K and repeats.

A final *tail optimization* exploits that inference (unlike training)
may freely re-allocate the draining workload: the last request's
placement is chosen by exhaustive search over the K single-processor
options plus its current partition ("the search space is only K").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .. import obs
from ..hardware.processor import ProcessorSpec
from ..runtime.schedule import async_makespan_ms, plan_bubbles_ms, plan_makespan_ms
from .plan import PipelinePlan, StageAssignment

#: A plan-level objective the descents probe: smaller is better.  The
#: planner passes a memoizing :class:`~repro.core.objective.ObjectiveCache`
#: here so repeated probes of identical configurations skip the
#: event-driven re-simulation.
PlanObjective = Callable[[PipelinePlan], float]

#: Stop greedy alignment when the objective improves less than this (ms).
_EPSILON_MS = 1e-9

#: Cap on boundary moves per request alignment, as a safety bound.
_MAX_MOVES_PER_REQUEST = 512


def move_boundary_layer(
    assignment: StageAssignment,
    from_stage: int,
    to_stage: int,
    processors: Sequence[ProcessorSpec],
) -> bool:
    """Move one boundary layer between *adjacent* stages, if feasible.

    Moving right (``to_stage == from_stage + 1``) transfers the last
    layer of ``from_stage``; moving left transfers the first.  The move
    is rejected (returns False) when the source stage is empty, the
    destination processor does not support the layer, or the stages are
    not adjacent.

    Slices stay contiguous by construction: only boundary layers move,
    and an emptied or newly-occupied stage preserves the layer order.
    """
    if abs(to_stage - from_stage) != 1:
        return False
    if not 0 <= from_stage < assignment.num_stages:
        return False
    if not 0 <= to_stage < assignment.num_stages:
        return False
    src = assignment.slices[from_stage]
    if src is None:
        return False
    start, end = src
    layer_idx = end if to_stage > from_stage else start
    if not assignment.profile.feasible(
        processors[to_stage], layer_idx, layer_idx
    ):
        return False

    dst = assignment.slices[to_stage]
    if to_stage > from_stage:
        new_src = None if start > end - 1 else (start, end - 1)
        new_dst = (end, end) if dst is None else (end, dst[1])
        if dst is not None and dst[0] != end + 1:
            return False
    else:
        new_src = None if start + 1 > end else (start + 1, end)
        new_dst = (start, start) if dst is None else (dst[0], start)
        if dst is not None and dst[1] != start - 1:
            return False

    assignment.slices[from_stage] = new_src
    assignment.slices[to_stage] = new_dst
    return True


def _alignment_objective(
    assignment: StageAssignment,
    targets: Sequence[Optional[float]],
    processors: Sequence[ProcessorSpec],
) -> float:
    """One-sided Eq. 11 deviation: excess over the aligned critical time.

    A stage running *under* its diagonally co-running critical stage is
    hidden (the column waits for the critical path anyway); only the
    excess ``max(0, T_s - target_s)`` stalls the pipeline and becomes a
    bubble.  Penalizing the absolute deviation instead would inflate
    fast requests (e.g. an NPU-resident ViT) up to the critical path's
    stage times, increasing both work and contention for zero bubble
    gain, so the hinge is the faithful reading of "till T - T -> 0":
    stealing stops exactly when the excess reaches zero.
    """
    total = 0.0
    for s, target in enumerate(targets):
        if target is None:
            continue
        total += max(0.0, assignment.stage_time_ms(s, processors) - target)
    return total


def align_to_targets(
    assignment: StageAssignment,
    targets: Sequence[Optional[float]],
    processors: Sequence[ProcessorSpec],
    request: Optional[int] = None,
) -> int:
    """Greedily steal boundary layers until no move improves Eq. 11.

    Args:
        request: Execution position of this request, used only to tag
            the :class:`~repro.obs.events.LayerStolen` provenance events;
            when None no events are emitted (moves are still counted in
            the ``steal_moves`` metric).

    Returns:
        The number of boundary moves applied.
    """
    moves = 0
    current = _alignment_objective(assignment, targets, processors)
    while moves < _MAX_MOVES_PER_REQUEST:
        best_gain = _EPSILON_MS
        best_move: Optional[Tuple[int, int]] = None
        for s in range(assignment.num_stages - 1):
            for frm, to in ((s, s + 1), (s + 1, s)):
                trial = assignment.copy()
                if not move_boundary_layer(trial, frm, to, processors):
                    continue
                value = _alignment_objective(trial, targets, processors)
                gain = current - value
                if gain > best_gain:
                    best_gain = gain
                    best_move = (frm, to)
        if best_move is None:
            break
        frm, to = best_move
        src = assignment.slices[frm]
        assert src is not None  # the trial move above succeeded
        layer = src[1] if to > frm else src[0]
        move_boundary_layer(assignment, frm, to, processors)
        current -= best_gain
        moves += 1
        obs.add("steal_moves")
        if request is not None and obs.enabled():
            obs.emit(
                obs.LayerStolen(
                    request=request,
                    from_stage=frm,
                    to_stage=to,
                    layer=layer,
                    phase="window-steal",
                    gain_ms=best_gain,
                )
            )
    return moves


def _critical_index(
    plan: PipelinePlan, window: Sequence[int]
) -> int:
    """Request (global index) with the largest total stage time."""
    def total(i: int) -> float:
        return plan.assignments[i].total_time_ms(plan.processors)

    return max(window, key=total)


def steal_within_window(plan: PipelinePlan, window: Sequence[int]) -> int:
    """Phase 1 of Algorithm 3 for one contention window.

    Aligns every non-critical request's stages to the diagonally
    co-running stage of the critical request.  Returns the number of
    boundary moves applied.
    """
    if not window:
        return 0
    critical = _critical_index(plan, window)
    critical_times = plan.assignments[critical].stage_times_ms(plan.processors)
    depth = plan.depth
    moves = 0
    for i in window:
        if i == critical:
            continue
        delta = i - critical
        targets: List[Optional[float]] = []
        for s in range(depth):
            aligned = s + delta
            targets.append(
                critical_times[aligned] if 0 <= aligned < depth else None
            )
        moves += align_to_targets(
            plan.assignments[i], targets, plan.processors, request=i
        )
    return moves


def work_steal(plan: PipelinePlan) -> int:
    """Phase 1 of Algorithm 3 over the whole sequence (sliding CW by K).

    Returns:
        Total boundary moves applied.
    """
    depth = plan.depth
    moves = 0
    u = 0
    with obs.span("plan.steal", requests=plan.num_requests, depth=depth) as sp:
        while u < plan.num_requests:
            window = list(range(u, min(u + depth, plan.num_requests)))
            moves += steal_within_window(plan, window)
            u += depth
        sp.set(moves=moves)
    return moves


def refine_globally(
    plan: PipelinePlan,
    max_moves: int = 128,
    objective: PlanObjective = async_makespan_ms,
) -> int:
    """Greedy boundary-move descent on the true P2 objective.

    Window-local stealing uses the critical path as a proxy; this pass
    then accepts any single boundary move (any request, either
    direction) that strictly reduces the contention-aware asynchronous
    makespan, until a local optimum.  It can only improve the plan, so
    Hetero2Pipe never regresses below the horizontal-only solution.

    Returns:
        Number of accepted moves.
    """
    moves = 0
    with obs.span("plan.refine_global", requests=plan.num_requests) as sp:
        current = objective(plan)
        while moves < max_moves:
            best_gain = _EPSILON_MS
            best: Optional[Tuple[int, int, int]] = None
            for i, assignment in enumerate(plan.assignments):
                for s in range(plan.depth - 1):
                    for frm, to in ((s, s + 1), (s + 1, s)):
                        saved = list(assignment.slices)
                        if not move_boundary_layer(
                            assignment, frm, to, plan.processors
                        ):
                            continue
                        value = objective(plan)
                        assignment.slices = saved
                        gain = current - value
                        if gain > best_gain:
                            best_gain = gain
                            best = (i, frm, to)
            if best is None:
                break
            i, frm, to = best
            src = plan.assignments[i].slices[frm]
            assert src is not None  # the trial move above succeeded
            layer = src[1] if to > frm else src[0]
            move_boundary_layer(plan.assignments[i], frm, to, plan.processors)
            current -= best_gain
            moves += 1
            obs.add("steal_moves")
            if obs.enabled():
                obs.emit(
                    obs.LayerStolen(
                        request=i,
                        from_stage=frm,
                        to_stage=to,
                        layer=layer,
                        phase="global-refine",
                        gain_ms=best_gain,
                    )
                )
        sp.set(moves=moves, makespan_ms=current)
    return moves


def refine_placements(
    plan: PipelinePlan,
    max_sweeps: int = 4,
    objective: PlanObjective = async_makespan_ms,
) -> int:
    """Per-request placement local search on the async makespan.

    For every request, in reverse order, try each single-processor
    placement (the K-sized search space the paper's tail optimization
    enumerates) and keep the best.  Sweeps repeat until a full pass
    changes nothing.  This lets fast accelerator-friendly requests leave
    the shared pipeline entirely — e.g. three NPU-resident CNNs run
    back-to-back on the NPU while a fallback-bound BERT pipelines across
    CPU and GPU.

    Returns:
        Number of placement changes applied.
    """
    changes = 0
    with obs.span("plan.placements", requests=plan.num_requests) as sp:
        current = objective(plan)
        for _ in range(max_sweeps):
            changed = False
            for i in range(plan.num_requests - 1, -1, -1):
                original = plan.assignments[i]
                best_assignment = original
                best_cost = current
                for stage in range(plan.depth):
                    candidate = single_processor_assignment(
                        original, stage, plan.processors
                    )
                    if candidate is None or candidate.slices == original.slices:
                        continue
                    plan.assignments[i] = candidate
                    cost = objective(plan)
                    if cost < best_cost - _EPSILON_MS:
                        best_cost = cost
                        best_assignment = candidate
                    plan.assignments[i] = original
                if best_assignment is not original:
                    plan.assignments[i] = best_assignment
                    obs.add("placement_changes")
                    if obs.enabled():
                        obs.emit(
                            obs.PlacementChanged(
                                request=i,
                                slices_before=tuple(original.slices),
                                slices_after=tuple(best_assignment.slices),
                                makespan_before_ms=current,
                                makespan_after_ms=best_cost,
                            )
                        )
                    current = best_cost
                    changes += 1
                    changed = True
            if not changed:
                break
        sp.set(changes=changes, makespan_ms=current)
    return changes


def single_processor_assignment(
    assignment: StageAssignment,
    stage: int,
    processors: Sequence[ProcessorSpec],
) -> Optional[StageAssignment]:
    """The whole request on one stage, or None if infeasible there."""
    n = assignment.profile.model.num_layers
    if not assignment.profile.feasible(processors[stage], 0, n - 1):
        return None
    slices: List[Optional[Tuple[int, int]]] = [None] * len(processors)
    slices[stage] = (0, n - 1)
    return StageAssignment(profile=assignment.profile, slices=slices)


def optimize_tail(
    plan: PipelinePlan, objective: PlanObjective = async_makespan_ms
) -> bool:
    """Phase 2: exhaustive tail re-allocation of the final request.

    Tries each of the K single-processor placements for the last request
    and keeps whichever (including the current partition) minimizes the
    contention-aware synchronized makespan.

    Returns:
        True when the tail placement changed.
    """
    if plan.num_requests == 0:
        return False
    last = plan.num_requests - 1
    current = plan.assignments[last]
    best_assignment = current
    before_cost = objective(plan)
    best_cost = before_cost
    for stage in range(plan.depth):
        candidate = single_processor_assignment(current, stage, plan.processors)
        if candidate is None:
            continue
        plan.assignments[last] = candidate
        cost = objective(plan)
        if cost < best_cost - _EPSILON_MS:
            best_cost = cost
            best_assignment = candidate
        plan.assignments[last] = current
    if best_assignment is not current:
        plan.assignments[last] = best_assignment
        obs.add("tail_replacements")
        if obs.enabled():
            obs.emit(
                obs.TailReplaced(
                    request=last,
                    slices_before=tuple(current.slices),
                    slices_after=tuple(best_assignment.slices),
                    makespan_before_ms=before_cost,
                    makespan_after_ms=best_cost,
                )
            )
        return True
    return False


def vertical_alignment(
    plan: PipelinePlan,
    enable_tail_optimization: bool = True,
    objective: PlanObjective = async_makespan_ms,
) -> Tuple[int, bool]:
    """Run Algorithm 3 in place.

    Phase 1 (always): window-local work stealing plus the global
    boundary-move descent on the bubble objective.  Phase 2 (gated by
    ``enable_tail_optimization``, the "T" of the paper's No-C/T
    ablation): the per-request placement local search and the exhaustive
    tail re-allocation — the "re-allocating workloads by local search"
    step whose search space is only K per request.

    Args:
        objective: Plan-level cost oracle for every probe; the planner
            passes its :class:`~repro.core.objective.ObjectiveCache` so
            repeated probes of identical configurations are free.

    Returns:
        ``(total_moves, tail_changed)`` where ``total_moves`` counts
        boundary moves plus placement changes.
    """
    with obs.span(
        "plan.vertical", tail_optimization=enable_tail_optimization
    ) as sp:
        moves = work_steal(plan)
        moves += refine_globally(plan, objective=objective)
        tail_changed = False
        if enable_tail_optimization:
            moves += refine_placements(plan, objective=objective)
            moves += refine_globally(plan, objective=objective)
            tail_changed = optimize_tail(plan, objective=objective)
        sp.set(moves=moves, tail_changed=tail_changed)
    return moves, tail_changed
