"""``repro.lint`` — the project's static-analysis subsystem.

Three cooperating checkers, all reporting uniform :class:`Finding`\\ s:

* an **AST rule engine** (:mod:`repro.lint.engine`) running the custom
  rules in :mod:`repro.lint.rules` — wall-clock bans in simulator
  paths, float-equality bans in scheduling math, frozen-dataclass
  mutation, unit-suffix naming, and ``INFEASIBLE``-sentinel arithmetic;
* a **dataflow layer** (:mod:`repro.lint.flow`: CFGs, the unit
  lattice, abstract interpretation) backing the H2P11x unit-dimension
  rules and the H2P12x concurrency/determinism rules;
* an **import-layering checker** (rule ``H2P201``) enforcing the
  DESIGN.md package architecture as a DAG;
* a **plan-invariant linter** (:mod:`repro.lint.plan_invariants`) that
  lifts :func:`repro.core.validate.validate_plan` into a batch sweep
  over every zoo model x SoC x planner-config combination;
* a **baseline ratchet** (:mod:`repro.lint.baseline`): committed
  findings are tolerated, new ones fail, stale entries demand
  regeneration.

Run it as ``hetero2pipe lint`` or ``python -m repro.lint``; see
``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
``# lint: disable=CODE`` suppression syntax.
"""

from __future__ import annotations

from .baseline import (
    BASELINE_SCHEMA,
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import (
    Finding,
    LintRule,
    RULE_REGISTRY,
    all_rules,
    collect_pragmas,
    get_rule,
    lint_file,
    lint_paths,
    register_rule,
)
from .reporters import render_json, render_sarif, render_text

# Importing the rule modules registers every rule with the engine.
from . import rules as _rules  # noqa: F401  (import-for-side-effect)

__all__ = [
    "BASELINE_SCHEMA",
    "BaselineResult",
    "Finding",
    "LintRule",
    "RULE_REGISTRY",
    "all_rules",
    "apply_baseline",
    "collect_pragmas",
    "get_rule",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
