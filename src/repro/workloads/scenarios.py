"""Named application scenarios: realistic multi-DNN request mixes.

The paper motivates multi-DNN inference with concrete applications
(scene understanding, continuous vision).  This module defines a small
catalogue of such applications as reproducible workload scenarios —
each a model mix plus an arrival pattern — used by the examples and the
scenario experiment.  Scenario mixes only use the ten evaluation models
so they run without registering the extended zoo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..models.ir import ModelGraph
from ..models.zoo import get_model
from .generator import arrival_times_ms


@dataclass(frozen=True)
class Scenario:
    """One named application workload."""

    name: str
    description: str
    model_names: Tuple[str, ...]
    interval_ms: float  # inter-arrival time of the request stream
    repeats: int = 1    # how many times the mix loops per episode

    def models(self) -> List[ModelGraph]:
        return [
            get_model(name)
            for _ in range(self.repeats)
            for name in self.model_names
        ]

    def arrivals(self, jitter: float = 0.0, seed: int = 0) -> List[float]:
        return arrival_times_ms(
            len(self.model_names) * self.repeats,
            self.interval_ms,
            jitter=jitter,
            seed=seed,
        )

    @property
    def num_requests(self) -> int:
        return len(self.model_names) * self.repeats


#: The scenario catalogue.
SCENARIOS: Dict[str, Scenario] = {
    "scene_understanding": Scenario(
        name="scene_understanding",
        description=(
            "The paper's motivating app: detection, recognition and "
            "captioning over each captured scene."
        ),
        model_names=("yolov4", "resnet50", "squeezenet", "vit", "bert"),
        interval_ms=120.0,
    ),
    "smart_camera": Scenario(
        name="smart_camera",
        description=(
            "Continuous classification of video frames with periodic "
            "heavier analytics — a lightweight-dominated stream."
        ),
        model_names=(
            "mobilenetv2", "mobilenetv2", "mobilenetv2", "resnet50",
            "mobilenetv2", "mobilenetv2", "mobilenetv2", "inceptionv4",
        ),
        interval_ms=40.0,
    ),
    "ar_assistant": Scenario(
        name="ar_assistant",
        description=(
            "An AR overlay: per-frame detection and depth-style CNN, "
            "with language grounding on demand."
        ),
        model_names=("yolov4", "googlenet", "bert", "yolov4", "googlenet"),
        interval_ms=80.0,
    ),
    "video_conference": Scenario(
        name="video_conference",
        description=(
            "Background segmentation plus face/expression analysis and "
            "live transcription, every frame group."
        ),
        model_names=("mobilenetv2", "resnet50", "squeezenet", "bert"),
        interval_ms=70.0,
        repeats=2,
    ),
    "photo_batch": Scenario(
        name="photo_batch",
        description=(
            "Offline gallery processing: everything arrives at once; "
            "throughput is all that matters."
        ),
        model_names=(
            "inceptionv4", "resnet50", "vit", "squeezenet", "googlenet",
            "alexnet", "vgg16",
        ),
        interval_ms=1e-6,
    ),
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name.

    Raises:
        KeyError: for unknown scenario names.
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name]


def all_scenarios() -> List[Scenario]:
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]
