"""Fig. 9: memory frequency and footprint under pipeline execution.

The paper traces the Kirin 990's memory-controller frequency and the
available system memory while pipelines of growing depth execute,
grouping models by working-set size: large (BERT, ViT, YOLOv4; over
300 MB), medium (InceptionV4, ResNet50, AlexNet; 100-300 MB) and
lightweight (SqueezeNet, MobileNetV2, GoogLeNet; under 100 MB).

Observed shape to reproduce:

* single-stage NPU execution leaves the memory frequency low;
* any CPU/GPU involvement pins the controller to its maximum state;
* deeper pipelines of larger models drain available memory from the
  ~2.5 GB initial headroom down toward ~0.5 GB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.planner import Hetero2PipePlanner
from ..hardware.soc import SocSpec, get_soc
from ..models.zoo import LARGE_MODELS, LIGHTWEIGHT_MODELS, MEDIUM_MODELS, get_model
from ..runtime.executor import TracePoint, execute_plan
from .common import format_table


@dataclass(frozen=True)
class MemoryTrace:
    """One pipeline configuration's memory-subsystem trace."""

    label: str
    capacity_bytes: float
    trace: Tuple[TracePoint, ...]

    @property
    def max_freq_mhz(self) -> int:
        return max((t.memory_freq_mhz for t in self.trace), default=0)

    @property
    def min_available_bytes(self) -> float:
        used = max((t.used_bytes for t in self.trace), default=0.0)
        return self.capacity_bytes - used

    def frequency_series(self) -> List[Tuple[float, int]]:
        return [(t.time_ms, t.memory_freq_mhz) for t in self.trace]

    def available_series(self) -> List[Tuple[float, float]]:
        return [
            (t.time_ms, self.capacity_bytes - t.used_bytes) for t in self.trace
        ]


#: The pipeline configurations traced in Fig. 9.
DEFAULT_CONFIGS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("npu_only_lightweight", ("mobilenetv2",)),
    ("two_stage_medium", MEDIUM_MODELS),
    ("three_stage_large", LARGE_MODELS),
    ("mixed_all_tiers", LIGHTWEIGHT_MODELS + MEDIUM_MODELS + LARGE_MODELS),
)


def run(
    soc: Optional[SocSpec] = None,
    configs: Sequence[Tuple[str, Sequence[str]]] = DEFAULT_CONFIGS,
) -> List[MemoryTrace]:
    """Trace each pipeline configuration."""
    soc = soc or get_soc("kirin990")
    planner = Hetero2PipePlanner(soc)
    traces: List[MemoryTrace] = []
    for label, names in configs:
        models = [get_model(n) for n in names]
        report = planner.plan(models)
        result = execute_plan(report.plan, trace=True)
        traces.append(
            MemoryTrace(
                label=label,
                capacity_bytes=soc.memory_capacity_bytes,
                trace=tuple(result.trace),
            )
        )
    return traces


def render(traces: Sequence[MemoryTrace]) -> str:
    headers = [
        "configuration",
        "peak_freq_mhz",
        "min_available_mb",
        "samples",
    ]
    body = [
        [
            t.label,
            t.max_freq_mhz,
            t.min_available_bytes / 1e6,
            len(t.trace),
        ]
        for t in traces
    ]
    return format_table(headers, body)


def render_traces(traces: Sequence[MemoryTrace]) -> str:
    """Fig. 9's two trace panels per configuration, in terminal form."""
    from ..analysis.charts import step_series

    panels = []
    for trace in traces:
        if not trace.trace:
            continue
        freq = step_series(
            trace.frequency_series(), width=50, height=6,
            label=f"[{trace.label}] memory freq MHz",
        )
        avail = step_series(
            [(t, a / 1e6) for t, a in trace.available_series()],
            width=50,
            height=6,
            label=f"[{trace.label}] available MB",
        )
        panels.append(freq + "\n" + avail)
    return "\n\n".join(panels)


def main() -> str:
    traces = run()
    return render(traces) + "\n\n" + render_traces(traces)


if __name__ == "__main__":
    print(main())
