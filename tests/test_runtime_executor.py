"""Tests for the event-driven pipeline executor."""

import pytest

from repro.core.planner import Hetero2PipePlanner
from repro.core.partition import partition_model
from repro.core.plan import PipelinePlan, StageAssignment
from repro.baselines.mnn_serial import plan_mnn_serial
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler
from repro.profiling.slowdown import SliceWorkload
from repro.runtime.executor import (
    ARENA_OVERHEAD_FACTOR,
    ChainTask,
    execute_plan,
    plan_to_chains,
    simulate_chains,
)


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


def make_plan(profiler, kirin, names):
    return PipelinePlan(
        soc=kirin,
        processors=tuple(kirin.processors),
        assignments=[
            StageAssignment(
                profile=profiler.profile(get_model(n)),
                slices=list(
                    partition_model(
                        profiler.profile(get_model(n)), kirin.processors
                    ).slices
                ),
            )
            for n in names
        ],
    )


def simple_chain(kirin, profiler, name, proc, request=0):
    profile = profiler.profile(get_model(name))
    n = profile.model.num_layers
    return [
        ChainTask(
            request=request,
            proc=proc,
            solo_ms=profile.whole_model_ms(proc),
            workload=SliceWorkload(profile, proc, 0, n - 1),
            working_set=profile.working_set_bytes(0, n - 1),
        )
    ]


class TestPrecedenceAndOrdering:
    def test_stages_execute_in_order(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert"])
        result = execute_plan(plan)
        records = sorted(
            (r for r in result.records if r.request == 0),
            key=lambda r: r.stage,
        )
        for earlier, later in zip(records, records[1:]):
            assert later.start_ms >= earlier.finish_ms - 1e-6

    def test_single_processor_serializes(self, profiler, kirin):
        plan = plan_mnn_serial(kirin, [get_model("resnet50")] * 3, profiler)
        result = execute_plan(plan)
        recs = sorted(result.records, key=lambda r: r.start_ms)
        for earlier, later in zip(recs, recs[1:]):
            assert later.start_ms >= earlier.finish_ms - 1e-6

    def test_fifo_request_order_per_processor(self, profiler, kirin):
        plan = plan_mnn_serial(
            kirin, [get_model("squeezenet")] * 4, profiler
        )
        result = execute_plan(plan)
        recs = sorted(result.records, key=lambda r: r.start_ms)
        assert [r.request for r in recs] == [0, 1, 2, 3]

    def test_arrivals_delay_start(self, profiler, kirin):
        plan = plan_mnn_serial(kirin, [get_model("squeezenet")] * 2, profiler)
        result = execute_plan(plan, arrivals=[0.0, 500.0])
        second = [r for r in result.records if r.request == 1][0]
        assert second.start_ms >= 500.0

    def test_arrival_length_mismatch(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit"])
        with pytest.raises(ValueError):
            execute_plan(plan, arrivals=[0.0, 1.0])


class TestContention:
    def test_contention_slows_execution(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert", "yolov4", "vgg16"])
        with_c = execute_plan(plan, with_contention=True).makespan_ms
        without = execute_plan(plan, with_contention=False).makespan_ms
        assert with_c > without

    def test_solo_execution_matches_profile(self, profiler, kirin):
        chain = simple_chain(kirin, profiler, "resnet50", kirin.cpu_big)
        result = simulate_chains(kirin, [chain])
        assert result.makespan_ms == pytest.approx(chain[0].solo_ms, rel=1e-6)

    def test_observed_slowdown_recorded(self, profiler, kirin):
        chains = [
            simple_chain(kirin, profiler, "bert", kirin.cpu_big, 0),
            simple_chain(kirin, profiler, "vgg16", kirin.gpu, 1),
        ]
        result = simulate_chains(kirin, chains)
        slowdowns = [r.slowdown for r in result.records]
        assert any(s > 0.02 for s in slowdowns)


class TestMemory:
    def test_capacity_violation_raises(self, profiler, kirin):
        profile = profiler.profile(get_model("bert"))
        n = profile.model.num_layers
        huge = ChainTask(
            request=0,
            proc=kirin.cpu_big,
            solo_ms=1.0,
            workload=None,
            working_set=kirin.memory_capacity_bytes * 2,
        )
        with pytest.raises(MemoryError):
            simulate_chains(kirin, [[huge]])

    def test_memory_blocking_serializes(self, profiler, kirin):
        # Two tasks on different processors whose combined working sets
        # exceed capacity must not overlap.
        half = kirin.memory_capacity_bytes * 0.6
        profile = profiler.profile(get_model("squeezenet"))
        n = profile.model.num_layers

        def task(request, proc):
            return ChainTask(
                request=request,
                proc=proc,
                solo_ms=10.0,
                workload=SliceWorkload(profile, proc, 0, n - 1),
                working_set=half,
            )

        chains = [[task(0, kirin.cpu_big)], [task(1, kirin.gpu)]]
        result = simulate_chains(kirin, chains)
        recs = sorted(result.records, key=lambda r: r.start_ms)
        assert recs[1].start_ms >= recs[0].finish_ms - 1e-6

    def test_pressure_fallback_counts_events(self, profiler, kirin):
        # A single request whose two stages each need >50% capacity;
        # arena residency holds stage 1's memory, so stage 2 only starts
        # via the pressure fallback.
        profile = profiler.profile(get_model("squeezenet"))
        n = profile.model.num_layers
        big = kirin.memory_capacity_bytes * 0.6
        chain = [
            ChainTask(0, kirin.cpu_big, 5.0,
                      SliceWorkload(profile, kirin.cpu_big, 0, n - 1), big),
            ChainTask(0, kirin.gpu, 5.0,
                      SliceWorkload(profile, kirin.gpu, 0, n - 1), big,
                      stage=1),
        ]
        result = simulate_chains(kirin, [chain])
        assert result.memory_pressure_events >= 1
        assert result.makespan_ms > 0

    def test_memory_not_enforced_when_disabled(self, profiler, kirin):
        profile = profiler.profile(get_model("squeezenet"))
        n = profile.model.num_layers
        big = kirin.memory_capacity_bytes * 2
        chain = [
            ChainTask(0, kirin.cpu_big, 5.0,
                      SliceWorkload(profile, kirin.cpu_big, 0, n - 1), big)
        ]
        result = simulate_chains(kirin, [chain], enforce_memory=False)
        assert result.makespan_ms > 0


class TestMetricsAndTrace:
    def test_throughput_definition(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50"])
        result = execute_plan(plan)
        assert result.throughput_per_s == pytest.approx(
            2 / (result.makespan_ms / 1e3)
        )

    def test_utilizations_bounded(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert", "vit", "yolov4"])
        result = execute_plan(plan)
        for proc in kirin.processors:
            assert 0.0 <= result.utilization(proc.name) <= 1.0 + 1e-9

    def test_trace_collected_when_enabled(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50"])
        result = execute_plan(plan, trace=True)
        assert len(result.trace) >= 2
        times = [t.time_ms for t in result.trace]
        assert times == sorted(times)

    def test_trace_empty_when_disabled(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit"])
        assert execute_plan(plan, trace=False).trace == []

    def test_npu_only_trace_keeps_low_memory_freq(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["mobilenetv2"])
        # mobilenet collapses onto the NPU; governor stays at the floor.
        result = execute_plan(plan, trace=True)
        npu_points = [
            t for t in result.trace if t.active_processors == ("npu",)
        ]
        for point in npu_points:
            assert point.memory_freq_mhz == kirin.memory_freq_mhz[0]

    def test_plan_to_chains_round_trip(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert", "vit"])
        chains = plan_to_chains(plan)
        assert len(chains) == 2
        for chain, assignment in zip(chains, plan.assignments):
            occupied = [s for s in assignment.slices if s is not None]
            assert len(chain) == len(occupied)
            for task in chain:
                assert task.working_set >= ARENA_OVERHEAD_FACTOR

    def test_request_latency(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50"])
        result = execute_plan(plan, arrivals=[0.0, 10.0])
        assert result.request_latency_ms(1) == pytest.approx(
            result.request_finish_ms[1] - 10.0
        )

    def test_mean_latency(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50"])
        result = execute_plan(plan)
        expected = sum(
            result.request_latency_ms(i) for i in range(2)
        ) / 2
        assert result.mean_latency_ms() == pytest.approx(expected)

    def test_latency_percentiles_interpolate(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50", "bert"])
        result = execute_plan(plan)
        latencies = sorted(
            result.request_latency_ms(i) for i in range(3)
        )
        # Linear interpolation over the sorted sample, numpy-style:
        # p50 of 3 samples is the middle one, p100/p0 are the extremes.
        assert result.p50_latency_ms == pytest.approx(latencies[1])
        assert result.latency_percentile_ms(0.0) == pytest.approx(
            latencies[0]
        )
        assert result.latency_percentile_ms(100.0) == pytest.approx(
            latencies[-1]
        )
        # p75 of 3 samples: rank 1.5 -> halfway between samples 1 and 2.
        assert result.latency_percentile_ms(75.0) == pytest.approx(
            (latencies[1] + latencies[2]) / 2
        )

    def test_latency_percentiles_ordered(self, profiler, kirin):
        plan = make_plan(
            profiler, kirin, ["vit", "resnet50", "bert", "yolov4"]
        )
        result = execute_plan(plan)
        assert (
            result.p50_latency_ms
            <= result.p95_latency_ms
            <= result.p99_latency_ms
            <= result.makespan_ms
        )

    def test_single_request_percentiles_degenerate(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit"])
        result = execute_plan(plan)
        only = result.request_latency_ms(0)
        assert result.p50_latency_ms == pytest.approx(only)
        assert result.p99_latency_ms == pytest.approx(only)

    def test_latency_percentile_validation(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit"])
        result = execute_plan(plan)
        with pytest.raises(ValueError):
            result.latency_percentile_ms(-1.0)
        with pytest.raises(ValueError):
            result.latency_percentile_ms(100.5)

    def test_unknown_processor_rejected(self, profiler, kirin):
        from repro.hardware.processor import make_gpu

        foreign = make_gpu(name="foreign_gpu")
        chain = [ChainTask(0, foreign, 1.0, None, 0.0)]
        with pytest.raises(ValueError):
            simulate_chains(kirin, [chain])
