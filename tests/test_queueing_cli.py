"""Tests for the queueing analysis and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.runtime.queueing import heterogeneous_queueing, serial_queueing
from repro.workloads.generator import arrival_times_ms


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


class TestQueueing:
    def test_serial_delays_accumulate(self, kirin):
        models = [get_model("resnet50")] * 6
        arrivals = arrival_times_ms(6, 30.0)
        report = serial_queueing(kirin, models, arrivals)
        delays = report.queueing_delay_ms
        # ResNet50 takes ~70 ms on CPU big but arrives every 30 ms.
        assert delays[-1] > delays[0]
        assert delays[-1] > 100.0

    def test_heterogeneous_reduces_backlog(self, kirin):
        models = [get_model("resnet50")] * 6
        arrivals = arrival_times_ms(6, 30.0)
        serial = serial_queueing(kirin, models, arrivals)
        hetero = heterogeneous_queueing(kirin, models, arrivals)
        assert (
            hetero.mean_queueing_delay_ms < serial.mean_queueing_delay_ms
        )

    def test_completion_latency_positive(self, kirin):
        models = [get_model("googlenet")] * 3
        arrivals = arrival_times_ms(3, 50.0)
        report = serial_queueing(kirin, models, arrivals)
        assert all(l > 0 for l in report.completion_latency_ms)

    def test_delays_nonnegative(self, kirin):
        models = [get_model("googlenet")] * 4
        arrivals = arrival_times_ms(4, 200.0)
        report = serial_queueing(kirin, models, arrivals)
        assert all(d >= -1e-6 for d in report.queueing_delay_ms)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "kirin990" in out

    def test_run_known_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Hetero2Pipe" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_plan_command(self, capsys):
        code = main(
            ["plan", "--soc", "kirin990", "--models", "vit,resnet50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "throughput" in out

    def test_plan_no_ct_flag(self, capsys):
        assert (
            main(
                [
                    "plan",
                    "--soc",
                    "snapdragon870",
                    "--models",
                    "squeezenet,googlenet",
                    "--no-ct",
                ]
            )
            == 0
        )

    def test_plan_empty_models(self, capsys):
        assert main(["plan", "--models", " "]) == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliExtensions:
    def test_plan_with_gantt_and_energy(self, capsys):
        code = main(
            ["plan", "--models", "vit,resnet50", "--gantt", "--energy"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "mJ" in out

    def test_plan_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        code = main(["plan", "--models", "vit", "--trace", str(trace)])
        assert code == 0
        import json

        assert json.loads(trace.read_text())["traceEvents"]

    def test_stream_command(self, capsys):
        code = main(
            [
                "stream",
                "--models",
                "squeezenet,squeezenet,resnet50",
                "--window",
                "2",
                "--interval",
                "25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "windows" in out
        assert "mean request latency" in out

    def test_stream_coalesce(self, capsys):
        code = main(
            [
                "stream",
                "--models",
                "mobilenetv2,mobilenetv2,mobilenetv2",
                "--coalesce",
            ]
        )
        assert code == 0

    def test_stream_empty_models(self, capsys):
        assert main(["stream", "--models", " "]) == 2

    def test_export_model(self, capsys, tmp_path):
        path = tmp_path / "model.json"
        assert main(["export-model", "bert", str(path)]) == 0
        from repro.models.serialization import load_model

        assert load_model(str(path)).name == "bert"

    def test_export_unknown_model(self, capsys, tmp_path):
        path = tmp_path / "model.json"
        assert main(["export-model", "nope", str(path)]) == 2

    def test_calibrate_command(self, capsys, tmp_path):
        import json

        targets = tmp_path / "targets.json"
        targets.write_text(
            json.dumps(
                [
                    {
                        "model": "resnet50",
                        "processor": "cpu_big",
                        "latency_ms": 55.0,
                    }
                ]
            )
        )
        assert main(["calibrate", "--targets", str(targets)]) == 0
        out = capsys.readouterr().out
        assert "throughput scale" in out
