"""Fig. 13: batched-latency growth rate of lightweight models.

On mobile processors with limited on-chip memory, batched execution time
grows almost linearly with batch size; the figure plots the *rate of
change* of latency as the batch grows — a near-flat series per
processor — confirming the affine model used to align lightweight and
heavyweight stage times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.soc import SocSpec, get_soc
from ..models.zoo import get_model
from ..profiling.profiler import SocProfiler
from ..workloads.batching import batch_latency_model, latency_growth_rates
from .common import format_table

DEFAULT_MODELS = ("mobilenetv2", "squeezenet")
DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class BatchingRow:
    """One (model, processor) affine model and its growth-rate series."""

    model: str
    processor: str
    fixed_ms: float
    marginal_ms: float
    growth_rates: Tuple[float, ...]


def run(
    soc: Optional[SocSpec] = None,
    model_names: Sequence[str] = DEFAULT_MODELS,
    batch_sizes: Sequence[int] = DEFAULT_BATCHES,
) -> List[BatchingRow]:
    """Fit the batching model for each lightweight model and processor."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    rows: List[BatchingRow] = []
    for name in model_names:
        profile = profiler.profile(get_model(name))
        for proc in soc.processors:
            try:
                affine = batch_latency_model(profile, proc)
            except ValueError:
                continue  # model unsupported on this unit
            rates = latency_growth_rates(profile, proc, batch_sizes)
            rows.append(
                BatchingRow(
                    model=name,
                    processor=proc.name,
                    fixed_ms=affine.fixed_ms,
                    marginal_ms=affine.marginal_ms,
                    growth_rates=tuple(rates),
                )
            )
    return rows


def render(rows: Sequence[BatchingRow]) -> str:
    headers = ["model", "processor", "fixed_ms", "marginal_ms", "rate_spread"]
    body = []
    for r in rows:
        spread = max(r.growth_rates) - min(r.growth_rates)
        body.append([r.model, r.processor, r.fixed_ms, r.marginal_ms, spread])
    return format_table(headers, body)


def main() -> str:
    return render(run())


if __name__ == "__main__":
    print(main())
