"""Planner hot-path caching: memoized objective and plan lookups.

Every probe the planner's vertical phase makes — a trial boundary move
in the stealing descent, a candidate placement in the tail search, the
arrival-vs-mitigated comparison — is answered by a *full* event-driven
re-simulation (:func:`repro.runtime.schedule.async_makespan_ms`, which
delegates to ``execute_plan``).  A five-model plan runs ~400 of these
silent simulations; a twenty-model plan runs thousands.  The greedy
descents re-visit identical configurations constantly (every rejected
neighbour is re-probed on the next iteration, the committed plan is
re-scored at the end), so the simulations are heavily redundant.

This module removes the redundancy without weakening the search:

* :func:`plan_fingerprint` — a cheap, exact identity for a
  :class:`~repro.core.plan.PipelinePlan` configuration: the SoC,
  the processor order, the request order and every request's
  ``(model, slices)`` assignment.  Two plans with equal fingerprints
  have byte-identical simulated makespans, because the simulation is a
  deterministic function of exactly those inputs.
* :class:`ObjectiveCache` — memoizes any plan-level objective (by
  default :func:`~repro.runtime.schedule.async_makespan_ms`) under that
  fingerprint, in a bounded LRU.  Cached probes return the *identical*
  float the simulation produced, so every accept/reject comparison in
  the descent is unchanged and cached vs uncached planners emit
  byte-identical plans.
* :class:`LRUCache` — the bounded mapping both caches above and the
  planner's front-door plan cache build on, with hit/miss/eviction
  accounting that works even when the observability recorder is off.

Cache-effectiveness counters flow through :mod:`repro.obs`
(``objective_cache_hits`` / ``objective_cache_misses``; the planner
adds ``plan_cache_hits`` / ``plan_cache_misses``) and surface in
``hetero2pipe stats``.  See ``docs/PERFORMANCE.md`` for the fingerprint
scheme and the invalidation rules.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Generic, Optional, Tuple, TypeVar

from .. import obs
from ..runtime.schedule import async_makespan_ms

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .plan import PipelinePlan

K = TypeVar("K")
V = TypeVar("V")

#: A plan configuration identity: hashable, equality == same simulation.
Fingerprint = Tuple[object, ...]

#: Default bound on memoized objective evaluations.  A twenty-request
#: descent probes a few thousand distinct configurations; 16384 keeps
#: every probe of even large plans resident while bounding memory to a
#: few MB of small tuples and floats.
DEFAULT_OBJECTIVE_CACHE_SIZE = 16384


class LRUCache(Generic[K, V]):
    """A bounded least-recently-used mapping with hit/miss accounting.

    The accounting is plain instance state (not ``repro.obs`` metrics)
    so benchmarks and tests can read effectiveness with the recorder
    off; callers that want the counters in the metrics registry add
    them at their own call sites.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"LRU maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> Optional[V]:
        """The cached value, refreshed as most-recent; None on a miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh a value, evicting the oldest entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (accounting is preserved)."""
        self._data.clear()


def plan_fingerprint(
    plan: "PipelinePlan", with_contention: bool = True
) -> Fingerprint:
    """Exact configuration identity of a plan for objective memoization.

    Captures everything the deterministic simulator reads: the SoC, the
    pipeline's processor order, the committed request order and each
    request's ``(model name, per-stage slices)`` assignment, plus the
    contention toggle.  Model *names* stand in for profiles — the same
    convention :class:`~repro.profiling.profiler.SocProfiler` keys its
    cache on — so a fingerprint is only meaningful within one
    planner/profiler scope (see docs/PERFORMANCE.md, invalidation).
    """
    return (
        plan.soc.name,
        tuple(p.name for p in plan.processors),
        plan.order,
        tuple(
            (a.model_name, tuple(a.slices)) for a in plan.assignments
        ),
        with_contention,
    )


class ObjectiveCache:
    """Memoizes a plan objective under :func:`plan_fingerprint`.

    Drop-in callable for :func:`~repro.runtime.schedule.async_makespan_ms`
    anywhere the planner probes a configuration::

        objective = ObjectiveCache()
        cost = objective(plan)            # simulates, memoizes
        cost = objective(plan)            # pure lookup, identical float

    The cache is sound because the simulation is a deterministic pure
    function of the fingerprint; a hit returns the exact float a fresh
    simulation would, so greedy accept/reject decisions — and therefore
    the final plan — are unchanged.  Scope the cache to one
    planner/profiler pair: profiles are keyed by model name, so a cache
    must never outlive the profiler whose costs it memoized.

    Args:
        objective: The underlying plan-level objective.
        maxsize: LRU bound on memoized fingerprints.
    """

    def __init__(
        self,
        objective: Callable[..., float] = async_makespan_ms,
        maxsize: int = DEFAULT_OBJECTIVE_CACHE_SIZE,
    ) -> None:
        self._objective = objective
        self._cache: LRUCache[Fingerprint, float] = LRUCache(maxsize)

    @property
    def hits(self) -> int:
        """Probes answered from the cache (no simulation ran)."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Probes that ran the underlying simulation."""
        return self._cache.misses

    @property
    def evictions(self) -> int:
        return self._cache.evictions

    def __len__(self) -> int:
        return len(self._cache)

    def __call__(
        self, plan: "PipelinePlan", with_contention: bool = True
    ) -> float:
        key = plan_fingerprint(plan, with_contention)
        cached = self._cache.get(key)
        if cached is not None:
            obs.add("objective_cache_hits")
            return cached
        obs.add("objective_cache_misses")
        # The span makes every real re-simulation attributable: the
        # self-profiler (repro.obs.prof) folds these into the
        # ``objective`` phase, separating simulation cost from the
        # stealing/tail search that issues the probes.  Cache hits stay
        # span-free — they are dictionary lookups, not simulations.
        with obs.span("plan.objective", requests=plan.num_requests) as sp:
            value = self._objective(plan, with_contention)
            sp.set(makespan_ms=value)
        self._cache.put(key, value)
        return value

    def clear(self) -> None:
        self._cache.clear()
