#!/usr/bin/env python3
"""The paper's motivating application: a scene-understanding stack.

The introduction sketches a mobile app combining object detection
(YOLO), face/age/gender recognition (compact CNNs) and scene-to-text
captioning (a ViT encoder feeding a language model).  This example
builds that request mix from the zoo, plans it with Hetero2Pipe and each
baseline, and prints a small leaderboard plus per-processor utilization
for the winning plan.

Run:
    python examples/scene_understanding.py
"""

from repro import Hetero2PipePlanner, PlannerConfig, execute_plan, get_model, get_soc
from repro.baselines import execute_band, plan_mnn_serial, plan_pipe_it
from repro.profiling import SocProfiler

#: The app's request mix per scene: detector, two recognition CNNs,
#: captioning encoder + language model.
SCENE_REQUESTS = (
    "yolov4",       # object detection
    "resnet50",     # face embedding (FaceNet-class backbone)
    "squeezenet",   # age/gender head (compact CNN)
    "vit",          # caption image encoder
    "bert",         # caption language model
)


def main() -> None:
    soc = get_soc("kirin990")
    profiler = SocProfiler(soc)
    models = [get_model(name) for name in SCENE_REQUESTS]

    schemes = {}
    schemes["MNN (serial CPU)"] = execute_plan(
        plan_mnn_serial(soc, models, profiler)
    )
    schemes["Pipe-it (CPU pipeline)"] = execute_plan(
        plan_pipe_it(soc, models, profiler)
    )
    schemes["Band (greedy NPU fallback)"] = execute_band(soc, models, profiler)
    no_ct = Hetero2PipePlanner(soc, PlannerConfig.no_contention_or_tail())
    schemes["Hetero2Pipe (No C/T)"] = execute_plan(no_ct.plan(models).plan)
    planner = Hetero2PipePlanner(soc)
    h2p_report = planner.plan(models)
    schemes["Hetero2Pipe (full)"] = execute_plan(h2p_report.plan)

    print(f"scene-understanding stack on {soc.name} "
          f"({len(models)} concurrent requests)\n")
    best = min(schemes.values(), key=lambda r: r.makespan_ms)
    width = max(len(k) for k in schemes)
    for name, result in sorted(schemes.items(), key=lambda kv: kv[1].makespan_ms):
        marker = "  <- best" if result is best else ""
        print(f"  {name:<{width}s}  {result.makespan_ms:8.1f} ms   "
              f"{result.throughput_per_s:5.1f} req/s{marker}")

    h2p = schemes["Hetero2Pipe (full)"]
    print("\nHetero2Pipe processor utilization over the run:")
    for proc in soc.processors:
        bar = "#" * int(h2p.utilization(proc.name) * 40)
        print(f"  {proc.name:10s} {h2p.utilization(proc.name) * 100:5.1f}% {bar}")

    scores = {s.model_name: s for s in h2p_report.scores}
    print("\ncontention classification (Eq. 1 ridge estimator):")
    for name in SCENE_REQUESTS:
        label = "HIGH" if scores[name].is_high else "low"
        print(f"  {name:12s} intensity={scores[name].intensity:6.3f}  [{label}]")


if __name__ == "__main__":
    main()
