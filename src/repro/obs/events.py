"""Typed decision-provenance events emitted by the planner stages.

Each event is an immutable record of one decision the planner *committed
to*: which slices Algorithm 1 chose, which Low request Algorithm 2
relocated, which boundary layer Algorithm 3 stole, how the draining tail
was re-placed.  Together, replayed in order, they reconstruct the final
:class:`~repro.core.plan.PipelinePlan` (see
:func:`repro.obs.provenance.reconstruct_plan`) — so a plan can be
*explained* end to end instead of reverse-engineered from its slices.

Conventions:

* ``request`` on :class:`SliceChosen` / :class:`RequestRelocated` is the
  *original arrival index*; on post-ordering events (:class:`LayerStolen`,
  :class:`PlacementChanged`, :class:`TailReplaced`) it is the *execution
  position* in the committed order (the index :class:`OrderCommitted`
  maps back to arrival indices).
* Slices are per-stage ``(start, end)`` inclusive layer bounds, ``None``
  for an empty stage — the same shape ``StageAssignment.slices`` uses.

This module is a data-only leaf: no clocks, no planner imports.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar, Dict, Optional, Tuple

#: One stage's inclusive layer bounds (or None for an empty stage).
Slice = Optional[Tuple[int, int]]
Slices = Tuple[Slice, ...]


@dataclass(frozen=True)
class ProvenanceEvent:
    """Base class: every event carries a ``kind`` discriminator."""

    kind: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, object]:
        doc = asdict(self)
        doc["kind"] = self.kind
        return doc


@dataclass(frozen=True)
class SliceChosen(ProvenanceEvent):
    """Algorithm 1 committed a horizontal partition for one request.

    Attributes:
        request: Original arrival index.
        model: Model name (display identity of the request).
        slices: The chosen per-stage slices.
        stage_times_ms: Per-stage cost (exec + boundary copy).
        makespan_ms: The DP's min-max objective for this request alone.
    """

    kind: ClassVar[str] = "slice_chosen"

    request: int
    model: str
    slices: Slices
    stage_times_ms: Tuple[float, ...]
    makespan_ms: float


@dataclass(frozen=True)
class RequestRelocated(ProvenanceEvent):
    """Algorithm 2 moved a Low request between two conflicting Highs.

    Attributes:
        request: Original arrival index of the relocated (Low) request.
        source_position: Its position before the move.
        target_position: Its position after the move.
        displacement: ``|target - source|`` (the Eq. 10 cost).
    """

    kind: ClassVar[str] = "request_relocated"

    request: int
    source_position: int
    target_position: int
    displacement: int


@dataclass(frozen=True)
class OrderCommitted(ProvenanceEvent):
    """The planner chose between the arrival and the mitigated order.

    Attributes:
        order: Execution position -> original arrival index.
        arrival_makespan_ms: Contention-aware makespan of the arrival
            order after its own vertical phase.
        chosen_makespan_ms: Makespan of the committed order.
        mitigated: True when the Algorithm 2 re-ordering won.
    """

    kind: ClassVar[str] = "order_committed"

    order: Tuple[int, ...]
    arrival_makespan_ms: float
    chosen_makespan_ms: float
    mitigated: bool


@dataclass(frozen=True)
class LayerStolen(ProvenanceEvent):
    """Algorithm 3 moved one boundary layer between adjacent stages.

    Attributes:
        request: Execution position of the donor/recipient request.
        from_stage: Stage the layer left.
        to_stage: Adjacent stage the layer joined.
        layer: The moved layer's index in the model.
        phase: ``"window-steal"`` (phase 1 critical-path alignment) or
            ``"global-refine"`` (the descent on the async makespan).
        gain_ms: Objective improvement this single move bought.
    """

    kind: ClassVar[str] = "layer_stolen"

    request: int
    from_stage: int
    to_stage: int
    layer: int
    phase: str
    gain_ms: float


@dataclass(frozen=True)
class PlacementChanged(ProvenanceEvent):
    """The per-request placement search moved a request wholesale.

    Attributes:
        request: Execution position.
        slices_before: Partition before the change.
        slices_after: The committed single-processor placement.
        makespan_before_ms: Plan makespan before the change.
        makespan_after_ms: Plan makespan after the change.
    """

    kind: ClassVar[str] = "placement_changed"

    request: int
    slices_before: Slices
    slices_after: Slices
    makespan_before_ms: float
    makespan_after_ms: float


@dataclass(frozen=True)
class TailReplaced(ProvenanceEvent):
    """Phase 2 re-allocated the draining tail request.

    Same fields as :class:`PlacementChanged`; kept as its own type
    because the paper singles the tail out ("the search space is only
    K") and the explain report calls it out separately.
    """

    kind: ClassVar[str] = "tail_replaced"

    request: int
    slices_before: Slices
    slices_after: Slices
    makespan_before_ms: float
    makespan_after_ms: float


@dataclass(frozen=True)
class DriftDetected(ProvenanceEvent):
    """A streaming drift detector fired on prediction residuals.

    Unlike the planner events above, this event is emitted by the
    *accuracy* side of observability (:mod:`repro.obs.drift`): the
    planner's predictions for one processor or model have been drifting
    away from executed reality for long enough that a detector tripped.
    Consumers (``StreamingPlanner``, the ``drift-guard`` CI job) treat
    it as a replan/re-profile trigger.

    Attributes:
        scope: What drifted — ``"processor"`` or ``"model"``.
        key: The drifting processor/model name.
        detector: ``"ewma"`` or ``"cusum"``.
        statistic: The detector statistic at the moment it fired.
        threshold: The firing threshold the statistic exceeded.
        samples: Residual samples this key had consumed when it fired.
        window: Streaming window index (-1 outside a windowed run).
    """

    kind: ClassVar[str] = "drift_detected"

    scope: str
    key: str
    detector: str
    statistic: float
    threshold: float
    samples: int
    window: int = -1


@dataclass(frozen=True)
class SloBurnAlert(ProvenanceEvent):
    """A per-class SLO error budget is burning too fast.

    Emitted by :class:`repro.obs.slo.SloEvaluator` when both the fast
    and the slow trailing-window burn rates exceed the threshold (the
    standard multi-window burn-rate alert: the fast window gives low
    detection latency, the slow window filters transient blips).
    Edge-triggered: one alert per excursion, re-armed when the
    condition clears.

    Attributes:
        class_name: The SLO class that is burning budget.
        window: Index of the tumbling window whose close fired it.
        time_ms: Simulated time of that window boundary.
        fast_burn: Burn rate over the trailing fast-window span.
        slow_burn: Burn rate over the trailing slow-window span.
        threshold: The burn-rate threshold both sides exceeded.
        fast_windows: Trailing windows in the fast view.
        slow_windows: Trailing windows in the slow view.
        objective_frac: The class's attainment objective (e.g. 0.95).
        deadline_ms: The class's latency deadline target.
        budget_remaining_frac: Whole-run error budget left (can go
            negative once the budget is exhausted).
    """

    kind: ClassVar[str] = "slo_burn_alert"

    class_name: str
    window: int
    time_ms: float
    fast_burn: float
    slow_burn: float
    threshold: float
    fast_windows: int
    slow_windows: int
    objective_frac: float
    deadline_ms: float
    budget_remaining_frac: float


@dataclass(frozen=True)
class TimelineDiagnostic(ProvenanceEvent):
    """A timeline self-check failed — the fold disagrees with itself.

    Emitted by :class:`repro.obs.timeline.TimelineAggregator` when an
    internal consistency identity (today only Little's law, ``L = λW``)
    is violated beyond float tolerance.  Over a complete horizon the
    identity is exact, so this firing means the fold dropped or
    double-counted state — a telemetry bug, not a workload property.

    Attributes:
        check: The identity that failed (``"littles_law"``).
        observed: The directly folded side (time-average occupancy L).
        expected: The independently derived side (λ · W).
        relative_gap_frac: ``|observed - expected|`` over their scale.
        tolerance_frac: The tolerance the gap exceeded.
        time_ms: Horizon end when the check ran.
    """

    kind: ClassVar[str] = "timeline_diagnostic"

    check: str
    observed: float
    expected: float
    relative_gap_frac: float
    tolerance_frac: float
    time_ms: float


#: kind string -> event class, for deserialization and filtering.
EVENT_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        SliceChosen,
        RequestRelocated,
        OrderCommitted,
        LayerStolen,
        PlacementChanged,
        TailReplaced,
        DriftDetected,
        SloBurnAlert,
        TimelineDiagnostic,
    )
}


def _tuplify(value: object) -> object:
    """JSON arrays back to the tuples the frozen events carry."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def event_from_dict(doc: Dict[str, object]) -> ProvenanceEvent:
    """Rebuild an event from its :meth:`ProvenanceEvent.to_dict` form.

    Raises:
        KeyError: on a missing or unknown ``kind``.
    """
    kind = doc["kind"]
    cls = EVENT_KINDS[str(kind)]
    kwargs = {k: _tuplify(v) for k, v in doc.items() if k != "kind"}
    return cls(**kwargs)  # type: ignore[no-any-return]
