"""H2P121/H2P122 — determinism readiness for simulator/planner paths.

DESIGN.md promises bit-for-bit reproducible experiments, and the
pipeline-partitioning guarantees this repo computes (Archer et al.,
PAPERS.md) are only as trustworthy as the deterministic simulation
they are computed over. Two bug classes break that silently:

* **H2P121 — unseeded randomness.** ``np.random.default_rng()`` /
  ``random.Random()`` constructed without an injected seed, or any use
  of the process-global RNGs (``random.random()``,
  ``np.random.rand()``, ``random.seed()``...), makes a run
  unreproducible — and, worse for the coming event-driven executor
  refactor, makes two "identical" simulations diverge. Constructing an
  RNG *with* an argument is fine (the seed is injectable); the global
  RNG never is. Scope: ``core``, ``runtime``, ``workloads``,
  ``baselines`` — every package that feeds the simulator.

* **H2P122 — module-level mutable state written from functions.**
  A library function that mutates a module-global container (appends
  to a module list, writes a module dict, declares ``global``) couples
  independent simulations run in one process — exactly what the
  fleet-scale / multi-tenant serving items on the ROADMAP will do.
  Module-level initialization (registry population at import time) is
  untouched; only *function bodies* writing module state flag. Scope:
  ``core`` and ``runtime``, the two packages the planner re-enters.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import Finding, LintContext, LintRule, register_rule

#: Packages (second dotted component) swept for unseeded randomness.
RNG_PACKAGES = ("core", "runtime", "workloads", "baselines")

#: Packages swept for module-state writes.
MODULE_STATE_PACKAGES = ("core", "runtime")

#: Attributes of the ``random`` module that use the process-global RNG.
_GLOBAL_RANDOM_ATTRS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
        "getrandbits",
    }
)

#: Attributes of ``numpy.random`` that use the process-global RNG.
_GLOBAL_NP_RANDOM_ATTRS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "uniform",
        "normal",
        "poisson",
        "exponential",
        "shuffle",
        "permutation",
        "seed",
    }
)

#: Container mutators whose receiver being a module global flags.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)

#: Module-level value shapes that count as mutable containers.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


def _rng_scope(ctx: LintContext, packages: Tuple[str, ...]) -> bool:
    parts = ctx.package_parts
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] in packages


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    names.add(alias.asname or "numpy")
    return names


def _random_aliases(tree: ast.Module) -> Tuple[Set[str], Dict[str, str]]:
    """(names bound to the random module, from-imported attr aliases)."""
    modules = set()
    attrs: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    modules.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                attrs[alias.asname or alias.name] = alias.name
    return modules, attrs


@register_rule
class UnseededRandomnessRule(LintRule):
    code = "H2P121"
    name = "no-unseeded-randomness-in-simulator"
    rationale = (
        "an RNG constructed without an injected seed (or any use of the "
        "process-global RNG) makes simulations unreproducible and "
        "un-shardable; pass seed= from the caller"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        if not _rng_scope(ctx, RNG_PACKAGES):
            return
        numpy_names = _numpy_aliases(tree)
        random_modules, random_attrs = _random_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._classify(
                node, numpy_names, random_modules, random_attrs
            )
            if message is not None:
                yield self.finding(ctx, node, message)

    def _classify(
        self,
        call: ast.Call,
        numpy_names: Set[str],
        random_modules: Set[str],
        random_attrs: Dict[str, str],
    ) -> Optional[str]:
        func = call.func
        has_args = bool(call.args or call.keywords)
        if isinstance(func, ast.Attribute):
            base = func.value
            # np.random.<attr> — default_rng() bare, or the global RNG.
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in numpy_names
            ):
                if func.attr == "default_rng":
                    if not has_args:
                        return (
                            "np.random.default_rng() without a seed; "
                            "inject the seed from the caller "
                            "(default_rng(seed))"
                        )
                    return None
                if func.attr in _GLOBAL_NP_RANDOM_ATTRS:
                    return (
                        f"np.random.{func.attr}() uses the process-global "
                        "RNG; construct np.random.default_rng(seed) and "
                        "thread it through"
                    )
                return None
            # random.<attr> on the stdlib module.
            if (
                isinstance(base, ast.Name)
                and base.id in random_modules
            ):
                if func.attr == "Random" and not has_args:
                    return (
                        "random.Random() without a seed; pass the seed "
                        "explicitly"
                    )
                if func.attr in _GLOBAL_RANDOM_ATTRS:
                    return (
                        f"random.{func.attr}() uses the process-global "
                        "RNG; construct random.Random(seed) and thread "
                        "it through"
                    )
            return None
        if isinstance(func, ast.Name):
            origin = random_attrs.get(func.id)
            if origin == "Random" and not has_args:
                return "random.Random() without a seed; pass the seed explicitly"
            if origin in _GLOBAL_RANDOM_ATTRS:
                return (
                    f"random.{origin}() uses the process-global RNG; "
                    "construct random.Random(seed) and thread it through"
                )
        return None


def _module_level_mutables(tree: ast.Module) -> Set[str]:
    """Names bound at module level to an obviously mutable container."""
    mutables: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        if value is None:
            continue
        if not _is_mutable_container(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables.add(target.id)
    return mutables


def _is_mutable_container(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        return name in _MUTABLE_FACTORIES
    return False


@register_rule
class ModuleStateWriteRule(LintRule):
    code = "H2P122"
    name = "no-module-state-writes-from-functions"
    rationale = (
        "a library function mutating a module-global container couples "
        "every simulation sharing the process; keep state instance-scoped "
        "(the PR 3 cache lesson) so planning stays shardable"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        if not _rng_scope(ctx, MODULE_STATE_PACKAGES):
            return
        mutables = _module_level_mutables(tree)
        # ast.walk(fn) descends into nested defs, and the outer loop
        # visits those same nested defs again — dedupe by location.
        seen: Set[Tuple[int, int, str]] = set()
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for finding in self._check_function(node, mutables, ctx):
                key = (finding.line, finding.col, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding

    def _check_function(
        self,
        fn: ast.AST,
        mutables: Set[str],
        ctx: LintContext,
    ) -> Iterator[Finding]:
        # Names the function rebinds locally shadow the module globals —
        # unless a ``global`` statement says otherwise.
        declared_global: Set[str] = set()
        for node in ast.walk(fn):  # type: ignore[arg-type]
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                yield self.finding(
                    ctx,
                    node,
                    f"'global {', '.join(node.names)}' write from a library "
                    "function: module-level state couples independent "
                    "simulations; make it instance state or pass it in",
                )
        local_bindings = _locally_bound_names(fn) - declared_global
        for node in ast.walk(fn):  # type: ignore[arg-type]
            target_name = _mutated_module_global(node, mutables)
            if target_name is not None and target_name not in local_bindings:
                yield self.finding(
                    ctx,
                    node,
                    f"function mutates module-level container "
                    f"{target_name!r}; module state couples independent "
                    "simulations — make it instance state or pass it in",
                )


def _locally_bound_names(fn: ast.AST) -> Set[str]:
    """Names assigned/bound anywhere in the function (incl. params)."""
    bound: Set[str] = set()
    args = fn.args  # type: ignore[attr-defined]
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(arg.arg)
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    for node in ast.walk(fn):  # type: ignore[arg-type]
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name) and not isinstance(
                        name_node.ctx, ast.Load
                    ):
                        bound.add(name_node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            bound.add(name_node.id)
    return bound


def _mutated_module_global(
    node: ast.AST, mutables: Set[str]
) -> Optional[str]:
    """Name of the module global ``node`` mutates, if any."""
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in mutables
        ):
            return func.value.id
    elif isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in mutables
            ):
                return target.value.id
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in mutables
            ):
                return target.value.id
    return None
