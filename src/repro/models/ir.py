"""Layer-level intermediate representation of DNN inference graphs.

Hetero2Pipe partitions a model along its *layer sequence* (Definition 1 in
the paper: a K-way partition of contiguous layer slices).  This module
provides the minimal IR the planner needs: an ordered list of layers, each
carrying the operator type, the compute cost (FLOPs), the memory traffic
(bytes of weights + activations read/written) and the size of the output
tensor that must cross a slice boundary.

The IR is deliberately sequential.  Branching architectures (GoogLeNet
inception blocks, ResNet residual connections, YOLO routes) are linearized
block-by-block, which is exactly the coarse-grained slicing granularity the
paper adopts ("we consider a coarse-grained model slicing strategy of K
slices", Sec. IV).  Each :class:`Layer` may therefore represent a fused
block whose internal parallelism never crosses a pipeline stage boundary.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Tuple


class OpType(enum.Enum):
    """Operator categories relevant to placement and contention modelling.

    The set mirrors the operator families discussed in the paper:
    convolutions (good data locality), large matrix multiplications
    (memory-bound, Observation 2), depthwise convolutions (low arithmetic
    intensity), attention / normalization blocks (Transformer-specific) and
    a handful of glue operators.  ``MISH`` and ``GELU`` exist as first-class
    members because their (un)availability on the NPU drives the operator
    fallback behaviour of YOLOv4 and BERT reported in Fig. 1.
    """

    CONV = "conv"
    DEPTHWISE_CONV = "depthwise_conv"
    POINTWISE_CONV = "pointwise_conv"
    FULLY_CONNECTED = "fully_connected"
    MATMUL = "matmul"
    ATTENTION = "attention"
    MASKED_ATTENTION = "masked_attention"
    LAYER_NORM = "layer_norm"
    BATCH_NORM = "batch_norm"
    POOL = "pool"
    RELU = "relu"
    GELU = "gelu"
    MISH = "mish"
    SOFTMAX = "softmax"
    CONCAT = "concat"
    ADD = "add"
    EMBEDDING = "embedding"
    UPSAMPLE = "upsample"
    FLATTEN = "flatten"


#: Operators implemented by the (simulated) NPU.  Anything outside this set
#: forces the slice containing it to fall back to CPU/GPU.  The set is
#: chosen so that exactly the models the paper reports as erroring on the
#: NPU contain unsupported operators, while the CNNs and ViT run fully
#: accelerated: YOLOv4 fails via Mish and route-upsample; BERT fails via
#: the embedding gather *and* the masked attention inside every encoder
#: block (sequence masking needs integer/gather ops the HiAI-generation
#: NPUs lack — ViT's unmasked attention converts fine).
NPU_SUPPORTED_OPS = frozenset(
    {
        OpType.CONV,
        OpType.DEPTHWISE_CONV,
        OpType.POINTWISE_CONV,
        OpType.FULLY_CONNECTED,
        OpType.MATMUL,
        OpType.ATTENTION,
        OpType.LAYER_NORM,
        OpType.BATCH_NORM,
        OpType.POOL,
        OpType.RELU,
        OpType.GELU,
        OpType.SOFTMAX,
        OpType.CONCAT,
        OpType.ADD,
        OpType.FLATTEN,
    }
)


@dataclass(frozen=True)
class Layer:
    """One schedulable unit of a model.

    Attributes:
        name: Human-readable identifier, unique within its model.
        op: Operator category (drives NPU support and contention footprint).
        flops: Floating-point operations for one inference at batch 1.
        weight_bytes: Parameter bytes that must be resident to execute.
        activation_bytes: Bytes of input+output activations touched.
        output_bytes: Size of the output tensor; this is what crosses a
            pipeline-stage boundary and incurs memory-copy cost (the
            ``T^c`` term of Eq. 2).
        output_shape: Logical shape of the output tensor (documentation /
            debugging aid; the planner only uses ``output_bytes``).
    """

    name: str
    op: OpType
    flops: float
    weight_bytes: float
    activation_bytes: float
    output_bytes: float
    output_shape: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"layer {self.name!r}: flops must be >= 0")
        if self.weight_bytes < 0 or self.activation_bytes < 0:
            raise ValueError(f"layer {self.name!r}: byte counts must be >= 0")
        if self.output_bytes < 0:
            raise ValueError(f"layer {self.name!r}: output_bytes must be >= 0")

    @property
    def memory_bytes(self) -> float:
        """Total bus traffic of executing the layer once (weights + acts)."""
        return self.weight_bytes + self.activation_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of memory traffic.

        Low arithmetic intensity marks a memory-bound layer — the quantity
        behind Observations 2 and 3 (large MatMuls and, surprisingly,
        SqueezeNet-style fire modules are memory-bound).
        """
        if self.memory_bytes == 0:
            return math.inf if self.flops > 0 else 0.0
        return self.flops / self.memory_bytes

    def npu_supported(self) -> bool:
        """Whether the simulated NPU implements this operator."""
        return self.op in NPU_SUPPORTED_OPS


@dataclass(frozen=True)
class ModelGraph:
    """An ordered, immutable sequence of layers plus model-level metadata.

    ``family`` tags the broad architecture class ("cnn", "transformer",
    "detector"); experiments use it to group models the way the paper's
    figures do.
    """

    name: str
    layers: Tuple[Layer, ...]
    family: str = "cnn"
    input_bytes: float = 0.0

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} must have at least one layer")
        seen = set()
        for layer in self.layers:
            if layer.name in seen:
                raise ValueError(
                    f"model {self.name!r}: duplicate layer name {layer.name!r}"
                )
            seen.add(layer.name)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> Layer:
        return self.layers[index]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_flops(self) -> float:
        return sum(layer.flops for layer in self.layers)

    @property
    def total_weight_bytes(self) -> float:
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def total_memory_bytes(self) -> float:
        return sum(layer.memory_bytes for layer in self.layers)

    @property
    def arithmetic_intensity(self) -> float:
        """Whole-model FLOPs per byte — the model's roofline position."""
        total_bytes = self.total_memory_bytes
        if total_bytes == 0:
            return math.inf if self.total_flops > 0 else 0.0
        return self.total_flops / total_bytes

    def npu_supported(self) -> bool:
        """True when *every* layer runs on the NPU without fallback."""
        return all(layer.npu_supported() for layer in self.layers)

    def unsupported_layers(self) -> Tuple[int, ...]:
        """Indices of layers the NPU cannot execute."""
        return tuple(
            i for i, layer in enumerate(self.layers) if not layer.npu_supported()
        )

    def slice_layers(self, start: int, end: int) -> Tuple[Layer, ...]:
        """Layers of the inclusive slice ``[start, end]``.

        Raises:
            IndexError: if the slice bounds are out of range or inverted.
        """
        self._check_slice(start, end)
        return self.layers[start : end + 1]

    def slice_flops(self, start: int, end: int) -> float:
        self._check_slice(start, end)
        return sum(layer.flops for layer in self.layers[start : end + 1])

    def slice_memory_bytes(self, start: int, end: int) -> float:
        self._check_slice(start, end)
        return sum(layer.memory_bytes for layer in self.layers[start : end + 1])

    def slice_weight_bytes(self, start: int, end: int) -> float:
        self._check_slice(start, end)
        return sum(layer.weight_bytes for layer in self.layers[start : end + 1])

    def boundary_bytes(self, end: int) -> float:
        """Bytes that must be copied when a slice ends at layer ``end``.

        This is the output tensor of ``layers[end]`` when the slice is
        interior, and zero at the model tail (the final result is consumed
        in place).
        """
        if not 0 <= end < len(self.layers):
            raise IndexError(f"layer index {end} out of range for {self.name!r}")
        if end == len(self.layers) - 1:
            return 0.0
        return self.layers[end].output_bytes

    def _check_slice(self, start: int, end: int) -> None:
        if not 0 <= start <= end < len(self.layers):
            raise IndexError(
                f"invalid slice [{start}, {end}] for model {self.name!r} "
                f"with {len(self.layers)} layers"
            )


def linearize(models: Iterable[ModelGraph]) -> Tuple[Layer, ...]:
    """Concatenate the layer sequences of several models (utility)."""
    out = []
    for model in models:
        out.extend(model.layers)
    return tuple(out)


def validate_partition(model: ModelGraph, cut_points: Sequence[int]) -> None:
    """Validate a K-way partition expressed as sorted interior cut points.

    A partition ``[c1, ..., c_{K-1}]`` splits the model into slices
    ``[0, c1-1], [c1, c2-1], ..., [c_{K-1}, n-1]`` (Definition 1).

    Raises:
        ValueError: if cut points are out of range, unsorted or duplicated.
    """
    n = model.num_layers
    prev = 0
    for cut in cut_points:
        if not 0 < cut < n:
            raise ValueError(
                f"cut point {cut} out of range (0, {n}) for model {model.name!r}"
            )
        if cut <= prev and prev != 0:
            raise ValueError(f"cut points must be strictly increasing: {cut_points}")
        if prev == 0 and cut == 0:
            raise ValueError("cut point cannot be zero")
        prev = cut
    cuts = list(cut_points)
    if cuts != sorted(set(cuts)):
        raise ValueError(f"cut points must be strictly increasing: {cut_points}")
