"""Per-class SLO attainment and multi-window error-budget burn rates.

Hetero2Pipe's whole point is meeting latency targets for concurrent DNN
streams, so the serving-side question is not "what was the p95" but
"is each request class still inside its objective, and if not, how fast
is it burning the error budget?".  This module answers it in the
standard SRE shape:

* An :class:`SloSpec` names a class and states its target — requests
  should complete within ``deadline_ms`` of arrival, and at least
  ``objective_frac`` of them must (the rest is the *error budget*).
* An :class:`SloEvaluator` is a second event tap next to the timeline
  fold: it classifies every terminal request event as *good* (completed
  in time) or *bad* (late completion, deadline drop, cancellation) into
  the same tumbling windows, then evaluates **multi-window burn rates**.
  The burn rate over a span is ``bad_frac / (1 - objective_frac)`` —
  burn 1.0 spends the budget exactly at the sustainable pace, burn ``k``
  spends it ``k`` times too fast.  An alert needs *both* a fast trailing
  window (low detection latency) and a slow trailing window (blip
  filter) above the threshold, and it is edge-triggered: one typed
  :class:`~repro.obs.events.SloBurnAlert` per excursion, re-armed when
  the condition clears.  Alerts go through the provenance recorder, so
  they serialize, replay and diff like every planner decision.

Like the timeline fold this is a duck-typed obs leaf: it consumes
engine events by attribute, never by import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .events import SloBurnAlert
from .recorder import emit, enabled

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps obs a leaf
    from ..runtime.engine import Event

#: Default multi-window configuration: alert when both the last
#: 1 window and the last 12 windows burn faster than 2x sustainable.
DEFAULT_FAST_WINDOWS = 1
DEFAULT_SLOW_WINDOWS = 12
DEFAULT_BURN_THRESHOLD = 2.0


@dataclass(frozen=True)
class SloSpec:
    """One request class's service-level objective.

    Attributes:
        name: Class name (e.g. the model name, or ``"default"``).
        deadline_ms: Completion-latency target, measured from arrival.
        objective_frac: Required fraction of requests meeting the
            deadline (0 < objective < 1; ``1 - objective_frac`` is the
            error budget).
    """

    name: str
    deadline_ms: float
    objective_frac: float = 0.95

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError(
                f"SLO deadline must be > 0 ms, got {self.deadline_ms}"
            )
        if not 0.0 < self.objective_frac < 1.0:
            raise ValueError(
                "SLO objective must be in (0, 1) so the error budget "
                f"is non-empty, got {self.objective_frac}"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "deadline_ms": self.deadline_ms,
            "objective_frac": self.objective_frac,
        }


@dataclass
class _ClassState:
    """Mutable per-class fold state (windowed good/bad counts)."""

    spec: SloSpec
    window_good: int = 0
    window_bad: int = 0
    good_total: int = 0
    bad_total: int = 0
    history: List[Tuple[int, int]] = field(default_factory=list)
    alerting: bool = False
    alerts: List[SloBurnAlert] = field(default_factory=list)


@dataclass(frozen=True)
class SloWindowReport:
    """One class's view of one closed tumbling window."""

    class_name: str
    window: int
    end_ms: float
    good: int
    bad: int
    fast_burn: float
    slow_burn: float
    alert_fired: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "class_name": self.class_name,
            "window": self.window,
            "end_ms": self.end_ms,
            "good": self.good,
            "bad": self.bad,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "alert_fired": self.alert_fired,
        }


class SloEvaluator:
    """Fold terminal request events into per-class burn-rate windows.

    Feed every engine event to :meth:`observe` (same stream the
    timeline fold consumes); windows close lock-step with the timeline
    at multiples of ``window_ms``.  Each close evaluates the fast/slow
    trailing burn rates per class and may emit an
    :class:`~repro.obs.events.SloBurnAlert`.

    Args:
        request_specs: Per-request resolved SLO spec, indexed by
            request id (how arrivals map to classes is the caller's
            policy — the CLI maps by model name).
        stages_per_request: Chain length per request, to recognise the
            final departure.
        window_ms: Tumbling window width (keep equal to the timeline's).
        fast_windows / slow_windows: Trailing spans, in windows, of the
            two burn-rate views (``fast <= slow``).
        burn_threshold: Both views must exceed this to alert.

    Raises:
        ValueError: on empty specs, a non-positive window, or a
            fast/slow misconfiguration.
    """

    def __init__(
        self,
        request_specs: Sequence[SloSpec],
        stages_per_request: Sequence[int],
        window_ms: float,
        fast_windows: int = DEFAULT_FAST_WINDOWS,
        slow_windows: int = DEFAULT_SLOW_WINDOWS,
        burn_threshold: float = DEFAULT_BURN_THRESHOLD,
    ) -> None:
        if not request_specs:
            raise ValueError("need at least one request spec")
        if len(request_specs) != len(stages_per_request):
            raise ValueError(
                f"{len(request_specs)} specs for "
                f"{len(stages_per_request)} requests"
            )
        if window_ms <= 0:
            raise ValueError(f"window must be > 0 ms, got {window_ms}")
        if not 1 <= fast_windows <= slow_windows:
            raise ValueError(
                "need 1 <= fast_windows <= slow_windows, got "
                f"fast={fast_windows} slow={slow_windows}"
            )
        if burn_threshold <= 0:
            raise ValueError(
                f"burn threshold must be > 0, got {burn_threshold}"
            )
        self._request_specs = tuple(request_specs)
        self._stages = list(stages_per_request)
        self._window_ms = float(window_ms)
        self.fast_windows = fast_windows
        self.slow_windows = slow_windows
        self.burn_threshold = burn_threshold

        self._classes: Dict[str, _ClassState] = {}
        for spec in request_specs:
            state = self._classes.get(spec.name)
            if state is None:
                self._classes[spec.name] = _ClassState(spec)
            elif state.spec != spec:
                raise ValueError(
                    f"conflicting specs for class {spec.name!r}: "
                    f"{state.spec} vs {spec}"
                )

        self._arrival_ms: Dict[int, float] = {}
        self._departures_seen: Dict[int, int] = {}
        self._now_ms = 0.0
        self._window_index = 0
        self._window_start_ms = 0.0
        self._finished = False
        self.window_reports: List[SloWindowReport] = []

    # ------------------------------------------------------- public API

    @property
    def window_ms(self) -> float:
        return self._window_ms

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._classes))

    @property
    def alerts(self) -> List[SloBurnAlert]:
        """All alerts fired so far, in firing order."""
        fired: List[SloBurnAlert] = []
        for state in self._classes.values():
            fired.extend(state.alerts)
        fired.sort(key=lambda alert: (alert.window, alert.class_name))
        return fired

    def observe(self, event: "Event") -> List[SloWindowReport]:
        """Fold one event; returns per-class reports for any windows
        the stream just crossed (may fire alerts as a side effect)."""
        if self._finished:
            raise RuntimeError("evaluator already finished")
        t = event.time_ms
        closed = self._advance(max(t, self._now_ms))
        self._apply(event)
        return closed

    def observe_many(self, events: Sequence["Event"]) -> List[SloWindowReport]:
        closed: List[SloWindowReport] = []
        for event in events:
            closed.extend(self.observe(event))
        return closed

    def finish(self, now_ms: Optional[float] = None) -> List[SloWindowReport]:
        """Close the final partial window; still-in-flight requests at
        the horizon count as *bad* (they did not meet their deadline
        inside the observed run)."""
        if self._finished:
            return []
        end_ms = self._now_ms if now_ms is None else max(now_ms, self._now_ms)
        closed = self._advance(end_ms)
        leftover = bool(self._arrival_ms)
        for request in sorted(self._arrival_ms):
            spec = self._spec_for(request)
            if spec is not None:
                self._record(spec.name, good=False)
        self._arrival_ms.clear()
        if end_ms > self._window_start_ms + 1e-12 or leftover or not closed:
            closed.extend(self._close_window(end_ms))
        self._finished = True
        return closed

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Whole-run per-class attainment and budget, for the JSON doc."""
        out: Dict[str, Dict[str, object]] = {}
        for name in self.class_names:
            state = self._classes[name]
            total = state.good_total + state.bad_total
            attainment = state.good_total / total if total else None
            out[name] = {
                "spec": state.spec.to_dict(),
                "requests": total,
                "good": state.good_total,
                "bad": state.bad_total,
                "attainment_frac": attainment,
                "budget_remaining_frac": self._budget_remaining(state),
                "alerts": len(state.alerts),
            }
        return out

    # ------------------------------------------------------ fold internals

    def _spec_for(self, request: Optional[int]) -> Optional[SloSpec]:
        if request is None or not 0 <= request < len(self._request_specs):
            return None
        return self._request_specs[request]

    def _record(self, class_name: str, good: bool) -> None:
        state = self._classes[class_name]
        if good:
            state.window_good += 1
            state.good_total += 1
        else:
            state.window_bad += 1
            state.bad_total += 1

    def _budget_remaining(self, state: _ClassState) -> Optional[float]:
        total = state.good_total + state.bad_total
        if total == 0:
            return None
        budget = 1.0 - state.spec.objective_frac
        spent = state.bad_total / total
        return (budget - spent) / budget

    def _advance(self, t: float) -> List[SloWindowReport]:
        closed: List[SloWindowReport] = []
        while t >= self._window_start_ms + self._window_ms:
            boundary = self._window_start_ms + self._window_ms
            closed.extend(self._close_window(boundary))
        self._now_ms = max(self._now_ms, t)
        return closed

    def _burn(self, state: _ClassState, trailing: int) -> float:
        good = bad = 0
        for g, b in state.history[-trailing:]:
            good += g
            bad += b
        total = good + bad
        if total == 0:
            return 0.0
        bad_frac = bad / total
        return bad_frac / (1.0 - state.spec.objective_frac)

    def _close_window(self, end_ms: float) -> List[SloWindowReport]:
        reports: List[SloWindowReport] = []
        for name in self.class_names:
            state = self._classes[name]
            state.history.append((state.window_good, state.window_bad))
            fast_burn = self._burn(state, self.fast_windows)
            slow_burn = self._burn(state, self.slow_windows)
            firing = (
                fast_burn > self.burn_threshold
                and slow_burn > self.burn_threshold
            )
            fired = False
            if firing and not state.alerting:
                fired = True
                budget = self._budget_remaining(state)
                alert = SloBurnAlert(
                    class_name=name,
                    window=self._window_index,
                    time_ms=end_ms,
                    fast_burn=fast_burn,
                    slow_burn=slow_burn,
                    threshold=self.burn_threshold,
                    fast_windows=self.fast_windows,
                    slow_windows=self.slow_windows,
                    objective_frac=state.spec.objective_frac,
                    deadline_ms=state.spec.deadline_ms,
                    budget_remaining_frac=(
                        budget if budget is not None else 1.0
                    ),
                )
                state.alerts.append(alert)
                if enabled():
                    emit(alert)
            state.alerting = firing
            reports.append(
                SloWindowReport(
                    class_name=name,
                    window=self._window_index,
                    end_ms=end_ms,
                    good=state.window_good,
                    bad=state.window_bad,
                    fast_burn=fast_burn,
                    slow_burn=slow_burn,
                    alert_fired=fired,
                )
            )
            state.window_good = 0
            state.window_bad = 0
        self._window_index += 1
        self._window_start_ms = end_ms
        self._now_ms = max(self._now_ms, end_ms)
        self.window_reports.extend(reports)
        return reports

    def _apply(self, event: "Event") -> None:
        kind = event.kind
        request = event.request
        spec = self._spec_for(request)
        if kind == "arrival":
            if spec is not None:
                assert request is not None
                self._arrival_ms[request] = event.time_ms
        elif kind == "departure":
            if spec is None or request is None:
                return
            seen = self._departures_seen.get(request, 0) + 1
            self._departures_seen[request] = seen
            if seen < self._stages[request]:
                return
            arrival = self._arrival_ms.pop(request, None)
            if arrival is None:
                return
            latency_ms = event.time_ms - arrival
            self._record(spec.name, good=latency_ms <= spec.deadline_ms)
        elif kind == "cancellation":
            if spec is None or request is None:
                return
            if self._arrival_ms.pop(request, None) is not None:
                self._record(spec.name, good=False)


def parse_class_specs(
    text: str, default_objective: float = 0.95
) -> Dict[str, SloSpec]:
    """Parse the CLI ``--classes`` grammar into specs.

    Grammar: comma-separated ``NAME=DEADLINE_MS[:OBJECTIVE]`` entries;
    ``*`` as NAME is the wildcard class applied to models without an
    explicit entry.  Example: ``"resnet50=80:0.99,*=120:0.95"``.

    Raises:
        ValueError: on malformed entries or duplicate names.
    """
    specs: Dict[str, SloSpec] = {}
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ValueError(
                f"bad --classes entry {entry!r}: expected "
                "NAME=DEADLINE_MS[:OBJECTIVE]"
            )
        name, _, rhs = entry.partition("=")
        name = name.strip()
        if not name:
            raise ValueError(f"bad --classes entry {entry!r}: empty name")
        if name in specs:
            raise ValueError(f"duplicate --classes entry for {name!r}")
        deadline_text, _, objective_text = rhs.partition(":")
        try:
            deadline_ms = float(deadline_text)
            objective = (
                float(objective_text)
                if objective_text
                else default_objective
            )
        except ValueError:
            raise ValueError(
                f"bad --classes entry {entry!r}: expected "
                "NAME=DEADLINE_MS[:OBJECTIVE]"
            ) from None
        specs[name] = SloSpec(
            name=name, deadline_ms=deadline_ms, objective_frac=objective
        )
    if not specs:
        raise ValueError("--classes parsed to no specs")
    return specs


def resolve_request_specs(
    model_names: Sequence[str], specs: Dict[str, SloSpec]
) -> List[SloSpec]:
    """Map each request's model name to its SLO spec.

    A request's class is its model's explicit entry, else the ``*``
    wildcard.  The returned specs carry the *model* name as the class
    name when matched through the wildcard, so per-class reporting
    stays per-model.

    Raises:
        KeyError: when a model has no entry and no wildcard exists.
    """
    resolved: List[SloSpec] = []
    wildcard = specs.get("*")
    for model in model_names:
        spec = specs.get(model)
        if spec is None:
            if wildcard is None:
                raise KeyError(
                    f"no SLO class for model {model!r} and no '*' wildcard"
                )
            spec = SloSpec(
                name=model,
                deadline_ms=wildcard.deadline_ms,
                objective_frac=wildcard.objective_frac,
            )
        resolved.append(spec)
    return resolved
