"""Band baseline: greedy subgraph-to-processor mapping with NPU fallback.

Band (Jeong et al., MobiSys 2022) coordinates multi-DNN inference by
splitting each model into subgraphs at operator-support boundaries and
greedily dispatching every subgraph to the processor giving the earliest
estimated finish, falling back from the NPU whenever an operator is
unsupported.  It is the paper's strongest comparator ("a competitive
SOTA scheme that orchestrates the fastest NPU on-board") — but it has
no pipeline planning, no contention model and no bubble optimization,
which is where Hetero2Pipe's extra ~5 % comes from.

The greedy planner here uses contention-*free* solo estimates for its
earliest-finish-time decisions (Band does not model co-execution
slowdown); the resulting mapping is then evaluated on the same
contention-aware simulator as every other scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.latency import copy_latency_ms
from ..profiling.profiler import INFEASIBLE, ModelProfile, SocProfiler
from ..profiling.slowdown import SliceWorkload
from ..runtime.executor import (
    ARENA_OVERHEAD_FACTOR,
    ChainTask,
    ExecutionResult,
    simulate_chains,
)


@dataclass(frozen=True)
class Segment:
    """A maximal run of layers with uniform NPU supportability."""

    start: int
    end: int
    npu_supported: bool


def segment_by_npu_support(model: ModelGraph) -> List[Segment]:
    """Split a model at NPU operator-support boundaries.

    Fully supported models yield one segment; YOLOv4/BERT alternate
    supported and fallback segments.
    """
    segments: List[Segment] = []
    start = 0
    current = model.layers[0].npu_supported()
    for i in range(1, model.num_layers):
        supported = model.layers[i].npu_supported()
        if supported != current:
            segments.append(Segment(start, i - 1, current))
            start, current = i, supported
    segments.append(Segment(start, model.num_layers - 1, current))
    return segments


@dataclass
class BandMapping:
    """Chosen processor per segment of every request."""

    chains: List[List[ChainTask]]
    choices: List[List[str]]  # processor names, aligned with segments


def plan_band(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: Optional[SocProfiler] = None,
) -> BandMapping:
    """Greedy earliest-finish-time mapping of all requests' segments.

    Requests are considered in arrival order; each segment goes to the
    processor minimizing ``max(processor_available, predecessor_done)
    + solo_time + copy`` among processors supporting it.

    Raises:
        ValueError: for an empty request sequence.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    profiler = profiler or SocProfiler(soc)
    available: Dict[str, float] = {p.name: 0.0 for p in soc.processors}
    chains: List[List[ChainTask]] = []
    choices: List[List[str]] = []

    for req, model in enumerate(models):
        profile = profiler.profile(model)
        segments = segment_by_npu_support(model)
        chain: List[ChainTask] = []
        picks: List[str] = []
        prev_finish = 0.0
        prev_proc: Optional[ProcessorSpec] = None
        for seg in segments:
            best_proc: Optional[ProcessorSpec] = None
            best_finish = float("inf")
            best_time = 0.0
            for proc in soc.processors:
                solo = profile.exec_ms(proc, seg.start, seg.end)
                if solo == INFEASIBLE:
                    continue
                copy_in = (
                    0.0
                    if prev_proc is None or prev_proc.name == proc.name
                    else copy_latency_ms(
                        profile.model.boundary_bytes(max(seg.start - 1, 0))
                        if seg.start > 0
                        else 0.0,
                        prev_proc,
                        proc,
                    )
                )
                start = max(available[proc.name], prev_finish)
                finish = start + copy_in + solo
                if finish < best_finish:
                    best_finish = finish
                    best_proc = proc
                    best_time = copy_in + solo
            if best_proc is None:
                raise ValueError(
                    f"segment [{seg.start}, {seg.end}] of {model.name!r} "
                    "is unplaceable on this SoC"
                )
            available[best_proc.name] = best_finish
            prev_finish = best_finish
            prev_proc = best_proc
            picks.append(best_proc.name)
            chain.append(
                ChainTask(
                    request=req,
                    proc=best_proc,
                    solo_ms=best_time,
                    workload=SliceWorkload(
                        profile=profile,
                        proc=best_proc,
                        start=seg.start,
                        end=seg.end,
                    ),
                    working_set=ARENA_OVERHEAD_FACTOR
                    * profile.working_set_bytes(seg.start, seg.end),
                )
            )
        chains.append(chain)
        choices.append(picks)
    return BandMapping(chains=chains, choices=choices)


def execute_band(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: Optional[SocProfiler] = None,
    arrivals: Optional[Sequence[float]] = None,
    with_contention: bool = True,
) -> ExecutionResult:
    """Plan with Band's greedy policy and run on the shared simulator."""
    mapping = plan_band(soc, models, profiler)
    return simulate_chains(
        soc,
        mapping.chains,
        arrivals=arrivals,
        with_contention=with_contention,
    )


def plan_band_contention_aware(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: Optional[SocProfiler] = None,
    pressure_gain: float = 0.5,
) -> BandMapping:
    """What-if ablation: Band's EFT with contention-inflated estimates.

    Band's published design ignores co-execution slowdown; this variant
    inflates each candidate processor's estimated time by the pressure
    the *already-placed* load on other processors would exert on it,
    using the same Observation-1 solo-intensity proxy Hetero2Pipe uses.
    Comparing it against plain Band isolates how much of Hetero2Pipe's
    edge comes from contention awareness vs pipeline planning.

    Raises:
        ValueError: for an empty request sequence.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    profiler = profiler or SocProfiler(soc)
    available: Dict[str, float] = {p.name: 0.0 for p in soc.processors}
    # Aggregate solo intensity of the load already queued per processor.
    queued_intensity: Dict[str, float] = {p.name: 0.0 for p in soc.processors}
    chains: List[List[ChainTask]] = []
    choices: List[List[str]] = []

    for req, model in enumerate(models):
        profile = profiler.profile(model)
        segments = segment_by_npu_support(model)
        chain: List[ChainTask] = []
        picks: List[str] = []
        prev_finish = 0.0
        prev_proc: Optional[ProcessorSpec] = None
        for seg in segments:
            best_proc: Optional[ProcessorSpec] = None
            best_finish = float("inf")
            best_time = 0.0
            for proc in soc.processors:
                solo = profile.exec_ms(proc, seg.start, seg.end)
                if solo == INFEASIBLE:
                    continue
                pressure = sum(
                    soc.coupling_factor(proc.kind, other.kind)
                    * queued_intensity[other.name]
                    for other in soc.processors
                    if other.name != proc.name
                )
                inflated = solo * (1.0 + pressure_gain * pressure)
                start = max(available[proc.name], prev_finish)
                finish = start + inflated
                if finish < best_finish:
                    best_finish = finish
                    best_proc = proc
                    best_time = solo
            if best_proc is None:
                raise ValueError(
                    f"segment [{seg.start}, {seg.end}] of {model.name!r} "
                    "is unplaceable on this SoC"
                )
            available[best_proc.name] = best_finish
            rate = profile.traffic_rate_gbps(best_proc, seg.start, seg.end)
            queued_intensity[best_proc.name] += rate / 10.0 / max(
                1, len(models)
            )
            prev_finish = best_finish
            prev_proc = best_proc
            picks.append(best_proc.name)
            chain.append(
                ChainTask(
                    request=req,
                    proc=best_proc,
                    solo_ms=best_time,
                    workload=SliceWorkload(
                        profile=profile,
                        proc=best_proc,
                        start=seg.start,
                        end=seg.end,
                    ),
                    working_set=ARENA_OVERHEAD_FACTOR
                    * profile.working_set_bytes(seg.start, seg.end),
                )
            )
        chains.append(chain)
        choices.append(picks)
    return BandMapping(chains=chains, choices=choices)
