"""Tests of the ten-model zoo: architecture-level sanity checks."""

import pytest

from repro.models.ir import OpType
from repro.models.zoo import (
    LARGE_MODELS,
    LIGHTWEIGHT_MODELS,
    MEDIUM_MODELS,
    MODEL_BUILDERS,
    MODEL_NAMES,
    all_models,
    get_model,
)

#: (name, min GFLOPs, max GFLOPs, min params MB fp16, max params MB fp16)
EXPECTED_SCALE = {
    "alexnet": (1.0, 4.0, 100, 150),
    "vgg16": (25, 40, 250, 300),
    "googlenet": (2, 5, 10, 30),
    "inceptionv4": (18, 35, 80, 130),
    "resnet50": (6, 11, 40, 60),
    "yolov4": (30, 70, 50, 80),
    "mobilenetv2": (0.4, 1.0, 5, 10),
    "squeezenet": (0.8, 2.5, 1.5, 4),
    "bert": (15, 30, 180, 260),
    "vit": (25, 45, 140, 200),
}


class TestRegistry:
    def test_ten_models(self):
        assert len(MODEL_NAMES) == 10
        # Extended models may have been registered by other tests; the
        # evaluation set must always be resolvable.
        assert set(MODEL_NAMES) <= set(MODEL_BUILDERS)

    def test_get_model_case_insensitive(self):
        assert get_model("BERT").name == "bert"

    def test_get_model_unknown(self):
        with pytest.raises(KeyError):
            get_model("resnet152")

    def test_get_model_is_cached(self):
        assert get_model("vgg16") is get_model("vgg16")

    def test_all_models_order(self):
        assert tuple(m.name for m in all_models()) == MODEL_NAMES

    def test_tier_groups_partition_models(self):
        tiers = set(LIGHTWEIGHT_MODELS) | set(MEDIUM_MODELS) | set(LARGE_MODELS)
        assert len(tiers) == 9  # one model (vgg16) is outside the Fig. 9 tiers
        assert tiers <= set(MODEL_NAMES)


class TestScale:
    @pytest.mark.parametrize("name", sorted(EXPECTED_SCALE))
    def test_flops_in_published_range(self, name):
        lo, hi, _, _ = EXPECTED_SCALE[name]
        gflops = get_model(name).total_flops / 1e9
        assert lo <= gflops <= hi, f"{name}: {gflops:.2f} GFLOPs"

    @pytest.mark.parametrize("name", sorted(EXPECTED_SCALE))
    def test_weights_in_published_range(self, name):
        _, _, lo, hi = EXPECTED_SCALE[name]
        mb = get_model(name).total_weight_bytes / 1e6
        assert lo <= mb <= hi, f"{name}: {mb:.1f} MB"

    def test_vit_roughly_70x_squeezenet(self):
        # Table II/Obs. 3: ViT is ~70x SqueezeNet by size.
        ratio = (
            get_model("vit").total_weight_bytes
            / get_model("squeezenet").total_weight_bytes
        )
        assert 40 <= ratio <= 100


class TestNpuSupport:
    def test_exactly_yolo_and_bert_unsupported(self):
        unsupported = {m.name for m in all_models() if not m.npu_supported()}
        assert unsupported == {"yolov4", "bert"}

    def test_bert_has_no_npu_runnable_encoder(self):
        bert = get_model("bert")
        ops = {layer.op for layer in bert.layers}
        assert OpType.MASKED_ATTENTION in ops
        assert OpType.EMBEDDING in ops
        # every encoder block individually unsupported
        for layer in bert.layers:
            if layer.op == OpType.MASKED_ATTENTION:
                assert not layer.npu_supported()

    def test_vit_fully_supported(self):
        assert get_model("vit").npu_supported()

    def test_yolo_unsupported_via_mish_and_upsample(self):
        yolo = get_model("yolov4")
        ops = {yolo.layers[i].op for i in yolo.unsupported_layers()}
        assert OpType.MISH in ops
        assert OpType.UPSAMPLE in ops


class TestStructure:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_layer_costs_positive(self, name):
        model = get_model(name)
        for layer in model.layers:
            assert layer.flops >= 0
            assert layer.memory_bytes > 0

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_interior_boundaries_positive(self, name):
        model = get_model(name)
        for i in range(model.num_layers - 1):
            assert model.boundary_bytes(i) > 0

    def test_transformers_are_block_granular(self):
        # One fused layer per encoder block keeps slicing coarse.
        assert get_model("bert").num_layers == 14
        assert get_model("vit").num_layers == 14

    def test_squeezenet_memory_bound_vs_vgg(self):
        # Observation 3: SqueezeNet's fire modules have low arithmetic
        # intensity relative to dense conv stacks.
        assert (
            get_model("squeezenet").arithmetic_intensity
            < get_model("vgg16").arithmetic_intensity
        )
