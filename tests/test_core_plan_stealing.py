"""Tests for plan structures and Algorithm 3 (work stealing + tail)."""

import pytest

from repro.core.partition import partition_model
from repro.core.plan import PipelinePlan, StageAssignment
from repro.core.stealing import (
    align_to_targets,
    move_boundary_layer,
    optimize_tail,
    refine_globally,
    refine_placements,
    single_processor_assignment,
    vertical_alignment,
    work_steal,
)
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler
from repro.runtime.schedule import async_makespan_ms, plan_bubbles_ms


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


def make_assignment(profiler, kirin, name):
    profile = profiler.profile(get_model(name))
    partition = partition_model(profile, kirin.processors)
    return StageAssignment(profile=profile, slices=list(partition.slices))


def make_plan(profiler, kirin, names):
    return PipelinePlan(
        soc=kirin,
        processors=tuple(kirin.processors),
        assignments=[make_assignment(profiler, kirin, n) for n in names],
    )


class TestStageAssignment:
    def test_validation_accepts_dp_output(self, profiler, kirin):
        make_assignment(profiler, kirin, "vgg16").validate()

    def test_gap_rejected(self, profiler, kirin):
        profile = profiler.profile(get_model("vgg16"))
        n = profile.model.num_layers
        with pytest.raises(ValueError):
            StageAssignment(profile=profile, slices=[(0, 2), (4, n - 1), None, None])

    def test_incomplete_cover_rejected(self, profiler, kirin):
        profile = profiler.profile(get_model("vgg16"))
        with pytest.raises(ValueError):
            StageAssignment(profile=profile, slices=[(0, 2), None, None, None])

    def test_stage_times_zero_for_empty(self, profiler, kirin):
        assignment = make_assignment(profiler, kirin, "vit")
        times = assignment.stage_times_ms(kirin.processors)
        for k, slc in enumerate(assignment.slices):
            if slc is None:
                assert times[k] == 0.0
            else:
                assert times[k] > 0.0

    def test_copy_is_independent(self, profiler, kirin):
        a = make_assignment(profiler, kirin, "vit")
        b = a.copy()
        b.slices[0] = None
        assert a.slices[0] is not None or a.slices != b.slices

    def test_working_set_positive(self, profiler, kirin):
        assert make_assignment(profiler, kirin, "bert").working_set_bytes() > 0


class TestPipelinePlan:
    def test_default_order_identity(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50"])
        assert plan.order == (0, 1)

    def test_order_length_checked(self, profiler, kirin):
        with pytest.raises(ValueError):
            PipelinePlan(
                soc=kirin,
                processors=tuple(kirin.processors),
                assignments=[make_assignment(profiler, kirin, "vit")],
                order=(0, 1),
            )

    def test_stage_time_matrix_shape(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50", "bert"])
        matrix = plan.stage_time_matrix()
        assert len(matrix) == 3
        assert all(len(row) == plan.depth for row in matrix)

    def test_validate_passes_for_dp_plans(self, profiler, kirin):
        make_plan(profiler, kirin, ["yolov4", "bert", "squeezenet"]).validate()


class TestBoundaryMoves:
    def test_move_right_into_empty_stage(self, profiler, kirin):
        base = make_assignment(profiler, kirin, "vit")
        assignment = single_processor_assignment(base, 0, kirin.processors)
        assert assignment is not None
        # Whole model on stage 0; stage 1 is empty and NPU-compatible.
        assert move_boundary_layer(assignment, 0, 1, kirin.processors)
        assignment.validate()
        assert assignment.slices[1] is not None

    def test_move_from_empty_stage_fails(self, profiler, kirin):
        assignment = make_assignment(profiler, kirin, "vit")
        empty = [k for k, s in enumerate(assignment.slices) if s is None][0]
        target = empty + 1 if empty + 1 < len(kirin.processors) else empty - 1
        assert not move_boundary_layer(assignment, empty, target, kirin.processors)

    def test_non_adjacent_move_rejected(self, profiler, kirin):
        assignment = make_assignment(profiler, kirin, "vgg16")
        assert not move_boundary_layer(assignment, 0, 2, kirin.processors)

    def test_npu_feasibility_respected(self, profiler, kirin):
        # BERT avoids the NPU; moving its first CPU layer left toward the
        # NPU stage must be rejected (embedding / masked attention).
        assignment = make_assignment(profiler, kirin, "bert")
        npu_stage = [
            k for k, p in enumerate(kirin.processors) if p.name == "npu"
        ][0]
        first_occupied = min(
            k for k, s in enumerate(assignment.slices) if s is not None
        )
        if first_occupied == npu_stage + 1:
            assert not move_boundary_layer(
                assignment, first_occupied, npu_stage, kirin.processors
            )

    def test_moves_preserve_cover(self, profiler, kirin):
        assignment = make_assignment(profiler, kirin, "resnet50")
        for _ in range(10):
            for s in range(len(kirin.processors) - 1):
                move_boundary_layer(assignment, s, s + 1, kirin.processors)
                assignment.validate()
                move_boundary_layer(assignment, s + 1, s, kirin.processors)
                assignment.validate()


class TestAlignment:
    def test_align_reduces_excess(self, profiler, kirin):
        assignment = make_assignment(profiler, kirin, "vgg16")
        times = assignment.stage_times_ms(kirin.processors)
        # Target half the current largest stage everywhere.
        target = max(times) / 2
        targets = [target] * len(times)
        before = sum(max(0.0, t - target) for t in times)
        align_to_targets(assignment, targets, kirin.processors)
        after = sum(
            max(0.0, t - target)
            for t in assignment.stage_times_ms(kirin.processors)
        )
        assert after <= before
        assignment.validate()

    def test_align_with_no_targets_is_noop(self, profiler, kirin):
        assignment = make_assignment(profiler, kirin, "vgg16")
        before = list(assignment.slices)
        moves = align_to_targets(
            assignment, [None] * len(kirin.processors), kirin.processors
        )
        assert moves == 0
        assert list(assignment.slices) == before


class TestVerticalAlignment:
    def test_work_steal_keeps_plans_valid(self, profiler, kirin):
        plan = make_plan(
            profiler, kirin, ["bert", "vit", "squeezenet", "yolov4", "resnet50"]
        )
        work_steal(plan)
        plan.validate()

    def test_refine_globally_never_worsens(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert", "yolov4", "vgg16"])
        before = async_makespan_ms(plan)
        refine_globally(plan)
        assert async_makespan_ms(plan) <= before + 1e-6
        plan.validate()

    def test_refine_placements_never_worsens(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50", "googlenet"])
        before = async_makespan_ms(plan)
        refine_placements(plan)
        assert async_makespan_ms(plan) <= before + 1e-6
        plan.validate()

    def test_optimize_tail_never_worsens(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert", "squeezenet"])
        before = async_makespan_ms(plan)
        optimize_tail(plan)
        assert async_makespan_ms(plan) <= before + 1e-6

    def test_single_processor_assignment_infeasible_stage(self, profiler, kirin):
        assignment = make_assignment(profiler, kirin, "bert")
        npu_stage = [
            k for k, p in enumerate(kirin.processors) if p.name == "npu"
        ][0]
        assert (
            single_processor_assignment(assignment, npu_stage, kirin.processors)
            is None
        )

    def test_single_processor_assignment_valid(self, profiler, kirin):
        assignment = make_assignment(profiler, kirin, "vit")
        single = single_processor_assignment(assignment, 1, kirin.processors)
        assert single is not None
        single.validate()
        occupied = [k for k, s in enumerate(single.slices) if s is not None]
        assert occupied == [1]

    def test_vertical_alignment_full(self, profiler, kirin):
        plan = make_plan(
            profiler, kirin, ["yolov4", "bert", "squeezenet", "vit"]
        )
        before = async_makespan_ms(plan)
        moves, _tail = vertical_alignment(plan)
        after = async_makespan_ms(plan)
        assert after <= before + 1e-6
        plan.validate()

    def test_vertical_alignment_reduces_bubbles_overall(self, profiler, kirin):
        plan = make_plan(
            profiler, kirin, ["bert", "yolov4", "vgg16", "inceptionv4"]
        )
        before = async_makespan_ms(plan)
        vertical_alignment(plan)
        assert async_makespan_ms(plan) < before
