"""Column-synchronous pipeline timetable and bubble accounting (Eq. 3).

The paper reasons about the pipeline in *diagonals*: the j-th concurrent
workload set ``M_j`` contains stage ``k`` of request ``i`` for all
``i + k = j`` (j ranges over ``0 .. |M| + K - 2``).  In the synchronized
view, diagonal ``j`` takes ``max`` of its member stage times, and every
faster member idles for the difference — the *pipeline bubble*

    |B_j| = sum_{cells in M_j} ( max_cell T  -  T_cell ).

This module computes that timetable, optionally inflating each cell with
the co-execution slowdown induced by the other members of its diagonal
(the ``T^co`` term of Eq. 2), and exposes the totals the planner's
vertical phase minimizes.  The event-driven executor
(:mod:`repro.runtime.executor`) refines this with true asynchronous
start times; Property 1's linearity makes the synchronous totals a
faithful optimization proxy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from .. import obs
from ..profiling.slowdown import SliceWorkload, slowdown_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..core.plan import PipelinePlan


@dataclass(frozen=True)
class DiagonalCell:
    """One executing slice within a diagonal."""

    request: int
    stage: int
    solo_ms: float
    co_ms: float


@dataclass(frozen=True)
class DiagonalColumn:
    """One synchronized execution step of the pipeline."""

    index: int
    cells: Tuple[DiagonalCell, ...]

    @property
    def duration_ms(self) -> float:
        """The step lasts as long as its slowest member."""
        active = [c.co_ms for c in self.cells if c.co_ms > 0]
        return max(active) if active else 0.0

    @property
    def bubble_ms(self) -> float:
        """Eq. 3: summed idle time of the faster members."""
        duration = self.duration_ms
        return sum(duration - c.co_ms for c in self.cells if c.co_ms > 0)


@dataclass(frozen=True)
class SynchronousSchedule:
    """Full column-synchronous timetable of a plan."""

    columns: Tuple[DiagonalColumn, ...]

    @property
    def makespan_ms(self) -> float:
        return sum(col.duration_ms for col in self.columns)

    @property
    def total_bubble_ms(self) -> float:
        return sum(col.bubble_ms for col in self.columns)

    def bubbles_per_column(self) -> List[float]:
        return [col.bubble_ms for col in self.columns]


def _diagonal_members(
    plan: "PipelinePlan", diagonal: int
) -> List[Tuple[int, int]]:
    """(request, stage) pairs with ``request + stage == diagonal``."""
    members = []
    for i in range(plan.num_requests):
        k = diagonal - i
        if 0 <= k < plan.depth:
            members.append((i, k))
    return members


def build_schedule(
    plan: "PipelinePlan", with_contention: bool = True
) -> SynchronousSchedule:
    """Compute the synchronized timetable of a plan.

    Args:
        plan: The pipeline plan to evaluate.
        with_contention: Inflate each cell by the slowdown induced by
            the co-running members of its diagonal (Eq. 2's ``T^co``).

    Returns:
        The :class:`SynchronousSchedule` with per-column durations and
        bubbles.
    """
    stage_times = plan.stage_time_matrix()
    num_columns = plan.num_requests + plan.depth - 1
    columns: List[DiagonalColumn] = []

    for j in range(num_columns):
        members = _diagonal_members(plan, j)
        workloads: List[Optional[SliceWorkload]] = []
        for (i, k) in members:
            slc = plan.assignments[i].slices[k]
            if slc is None:
                workloads.append(None)
            else:
                workloads.append(
                    SliceWorkload(
                        profile=plan.assignments[i].profile,
                        proc=plan.processors[k],
                        start=slc[0],
                        end=slc[1],
                    )
                )
        cells: List[DiagonalCell] = []
        for idx, (i, k) in enumerate(members):
            solo = stage_times[i][k]
            if workloads[idx] is None or solo <= 0:
                cells.append(DiagonalCell(i, k, 0.0, 0.0))
                continue
            co = solo
            if with_contention:
                others = [w for w in workloads if w is not None and w is not workloads[idx]]
                co = solo * (
                    1.0
                    + slowdown_fraction(plan.soc, workloads[idx], others)
                )
            cells.append(DiagonalCell(i, k, solo, co))
        columns.append(DiagonalColumn(index=j, cells=tuple(cells)))
    return SynchronousSchedule(columns=tuple(columns))


def plan_makespan_ms(plan: "PipelinePlan", with_contention: bool = True) -> float:
    """Shortcut: synchronized makespan of a plan."""
    return build_schedule(plan, with_contention).makespan_ms


def plan_bubbles_ms(plan: "PipelinePlan", with_contention: bool = True) -> float:
    """Shortcut: total bubble time (P2 objective, Eq. 5)."""
    return build_schedule(plan, with_contention).total_bubble_ms


def async_makespan_ms(plan: "PipelinePlan", with_contention: bool = True) -> float:
    """Asynchronous (event-driven) makespan of a plan.

    The synchronized-column model over-serializes: it forces every
    request to march one stage per column even when its processor is
    free.  The planner's vertical phase therefore optimizes this
    asynchronous makespan — the same quantity the evaluation simulator
    reports — computed without the memory-capacity gate so that search
    intermediates never trip Constraint 6 (the final plan is always
    re-validated with enforcement on).

    Each call is a full silent re-simulation (``objective_evaluations``
    counts them).  This function is a deterministic pure function of the
    plan configuration, which is what makes
    :class:`repro.core.objective.ObjectiveCache` — the planner's
    memoization layer in front of it — exact rather than approximate.
    """
    from .executor import execute_plan  # local import: avoid cycle

    obs.add("objective_evaluations")
    return execute_plan(
        plan,
        with_contention=with_contention,
        enforce_memory=False,
        record=False,
    ).makespan_ms


def tail_bubble_ms(plan: "PipelinePlan", with_contention: bool = True) -> float:
    """Bubbles of the draining tail (final K-1 columns).

    These are the bubbles the paper's tail optimization targets —
    inference pipelines, unlike training, may freely re-allocate the
    draining workload.
    """
    schedule = build_schedule(plan, with_contention)
    tail = schedule.columns[max(0, len(schedule.columns) - (plan.depth - 1)) :]
    return sum(col.bubble_ms for col in tail)
