"""Event-driven pipeline execution simulator.

The synchronized-column timetable (:mod:`repro.runtime.schedule`) is the
planner's optimization proxy; this module is the *evaluation* substrate:
a continuous-time, piecewise-constant-rate simulation of workloads
actually executing on the SoC.

The core entry point is :func:`simulate_chains`: each request is a
*chain* of tasks (slice, processor) executed in order.  Chains built
from a :class:`~repro.core.plan.PipelinePlan` give the Hetero2Pipe
semantics (stage k on processor k); baselines such as Band build their
own chains with arbitrary per-segment processor choices and are measured
by the identical machinery.

Semantics:

* A chain's next task becomes ready when its previous task finishes
  (precedence, Eq. 8) and the request has arrived; each processor runs
  its ready tasks FIFO in request order.
* While a set of slices co-runs, each progresses at rate
  ``1 / (1 + slowdown)`` with the slowdown recomputed from the live
  co-runner set whenever it changes — the dynamic form of Eq. 2's
  ``T^co``.
* A slice's working set is resident while it executes; a task cannot
  start if it would push residency beyond the physical capacity
  (Constraint 6) and instead waits for memory to drain.
* Every event edge is sampled into a trace of bandwidth demand, memory
  use and the DVFS memory frequency the governor would select (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..hardware.memory import MemoryDemand, MemoryGovernor
from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..profiling.slowdown import SliceWorkload, slowdown_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..core.plan import PipelinePlan

_EPS = 1e-9

#: MNN-style runtime arenas (weight buffers, pre-allocated tensor pools,
#: backend scratch space) occupy a multiple of the raw working set.
ARENA_OVERHEAD_FACTOR = 3.0


@dataclass
class ChainTask:
    """One schedulable unit: a slice bound to a specific processor."""

    request: int
    proc: ProcessorSpec
    solo_ms: float
    workload: Optional[SliceWorkload]
    working_set: float
    stage: int = 0
    remaining_ms: float = 0.0
    start_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.solo_ms < 0:
            raise ValueError("solo_ms must be >= 0")
        self.remaining_ms = self.solo_ms


@dataclass(frozen=True)
class TaskRecord:
    """Completed execution of one slice."""

    request: int
    stage: int
    processor: str
    start_ms: float
    finish_ms: float
    solo_ms: float
    traffic_bytes: float = 0.0

    @property
    def duration_ms(self) -> float:
        return self.finish_ms - self.start_ms

    @property
    def slowdown(self) -> float:
        """Observed average slowdown vs the solo time."""
        if self.solo_ms <= 0:
            return 0.0
        return self.duration_ms / self.solo_ms - 1.0


@dataclass(frozen=True)
class TracePoint:
    """One sample of the shared-memory subsystem state."""

    time_ms: float
    bandwidth_demand_gbps: float
    memory_freq_mhz: int
    used_bytes: float
    active_processors: Tuple[str, ...]


@dataclass
class ExecutionResult:
    """Everything the experiments read off one simulated run."""

    records: List[TaskRecord]
    makespan_ms: float
    request_arrival_ms: List[float]
    request_finish_ms: List[float]
    trace: List[TracePoint]
    processor_busy_ms: Dict[str, float]
    memory_pressure_events: int = 0

    @property
    def num_requests(self) -> int:
        return len(self.request_finish_ms)

    @property
    def throughput_per_s(self) -> float:
        """Completed inferences per second (the paper's throughput)."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.num_requests / (self.makespan_ms / 1e3)

    def request_latency_ms(self, request: int) -> float:
        """Completion latency of one request, from its arrival."""
        return self.request_finish_ms[request] - self.request_arrival_ms[request]

    def mean_latency_ms(self) -> float:
        return sum(
            self.request_latency_ms(i) for i in range(self.num_requests)
        ) / max(1, self.num_requests)

    def latency_percentile_ms(self, pct: float) -> float:
        """Interpolated completion-latency percentile across requests.

        Uses the linear-interpolation definition (numpy's default): p0
        is the fastest request, p100 the slowest, p50 the median.

        Raises:
            ValueError: when ``pct`` is outside [0, 100] or the run has
                no requests.
        """
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if self.num_requests == 0:
            raise ValueError("no requests: latency percentile undefined")
        latencies = sorted(
            self.request_latency_ms(i) for i in range(self.num_requests)
        )
        rank = (pct / 100.0) * (len(latencies) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(latencies) - 1)
        frac = rank - lo
        return latencies[lo] * (1.0 - frac) + latencies[hi] * frac

    @property
    def p50_latency_ms(self) -> float:
        return self.latency_percentile_ms(50.0)

    @property
    def p95_latency_ms(self) -> float:
        return self.latency_percentile_ms(95.0)

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_percentile_ms(99.0)

    def utilization(self, processor: str, span: Optional[float] = None) -> float:
        """Busy fraction of one processor over the makespan."""
        span = span if span is not None else self.makespan_ms
        if span <= 0:
            return 0.0
        return self.processor_busy_ms.get(processor, 0.0) / span

    def total_bubble_ms(self) -> float:
        """Idle time of processors between their first and last task."""
        total = 0.0
        by_proc: Dict[str, List[TaskRecord]] = {}
        for rec in self.records:
            by_proc.setdefault(rec.processor, []).append(rec)
        for recs in by_proc.values():
            recs = sorted(recs, key=lambda r: r.start_ms)
            span = recs[-1].finish_ms - recs[0].start_ms
            busy = sum(r.duration_ms for r in recs)
            total += max(0.0, span - busy)
        return total


def simulate_chains(
    soc: SocSpec,
    chains: Sequence[Sequence[ChainTask]],
    arrivals: Optional[Sequence[float]] = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    trace: bool = False,
    processor_offline_ms: Optional[Dict[str, float]] = None,
    record: bool = True,
) -> ExecutionResult:
    """Simulate per-request task chains on one SoC.

    Args:
        soc: The platform (contention coupling, memory capacity, DVFS).
        chains: One ordered task chain per request; tasks run strictly
            in chain order, each on its own processor.
        arrivals: Per-request arrival times in ms (default: all zero).
        with_contention: Apply dynamic co-execution slowdown.
        enforce_memory: Enforce Constraint 6 (tasks wait for residency).
        trace: Record :class:`TracePoint` samples at event edges.
        processor_offline_ms: Fault injection — processors stop
            accepting *new* tasks at the given times (a running task
            completes); pending tasks bound for an offline unit fall
            back to the best online processor supporting their slice.
        record: Feed the observability recorder (span + execution
            metrics).  The planner's objective function re-simulates
            candidate plans hundreds of times per plan; those internal
            evaluations pass False so ``tasks_executed`` and the
            ``execute`` span describe only real executions.

    Returns:
        The :class:`ExecutionResult`.

    Raises:
        ValueError: on arrival-length mismatch or a task whose processor
            is not part of the SoC.
        MemoryError: if a single slice alone exceeds the capacity.
        RuntimeError: if the simulation wedges — for valid fault-free
            inputs this cannot happen; with faults it signals that a
            task has no online processor able to run it.
    """
    n = len(chains)
    if arrivals is None:
        arrivals = [0.0] * n
    if len(arrivals) != n:
        raise ValueError(f"expected {n} arrival times, got {len(arrivals)}")
    proc_names = {p.name for p in soc.processors}
    capacity = soc.memory_capacity_bytes
    for chain in chains:
        for task in chain:
            if task.proc.name not in proc_names:
                raise ValueError(
                    f"task processor {task.proc.name!r} not on SoC {soc.name!r}"
                )
            if enforce_memory and task.working_set > capacity:
                raise MemoryError(
                    f"slice of request {task.request} needs "
                    f"{task.working_set / 1e6:.0f} MB alone; capacity is "
                    f"{capacity / 1e6:.0f} MB"
                )

    governor = MemoryGovernor(soc)
    next_idx = [0] * n
    prev_done = [True] * n
    proc_running: Dict[str, Optional[ChainTask]] = {
        p.name: None for p in soc.processors
    }
    # Residency follows MNN's arena behaviour: each slice's working set
    # is allocated when the slice starts and the request's accumulated
    # arenas are released only when its *last* stage completes.
    request_alloc: Dict[int, float] = {}
    used_bytes = 0.0
    memory_pressure_events = 0
    now = 0.0
    records: List[TaskRecord] = []
    trace_points: List[TracePoint] = []
    busy: Dict[str, float] = {p.name: 0.0 for p in soc.processors}
    finish: List[float] = [0.0] * n
    total_tasks = sum(len(c) for c in chains)
    completed = 0
    offline = dict(processor_offline_ms or {})

    def is_offline(proc_name: str) -> bool:
        return proc_name in offline and now >= offline[proc_name] - _EPS

    def reassign_offline_heads() -> None:
        """Fall back pending tasks whose processor has gone offline.

        Reassignment is earliest-finish-time greedy across the online
        units, seeded with each unit's current backlog, so a burst of
        displaced work spreads over the remaining silicon instead of
        piling onto the single fastest survivor.
        """
        backlog: Dict[str, float] = {}
        for proc in soc.processors:
            running = proc_running[proc.name]
            backlog[proc.name] = (
                running.remaining_ms if running is not None else 0.0
            )
        for i in range(n):
            idx = next_idx[i]
            if idx >= len(chains[i]):
                continue
            task = chains[i][idx]
            if not is_offline(task.proc.name):
                backlog[task.proc.name] = (
                    backlog.get(task.proc.name, 0.0) + task.remaining_ms
                )
                continue
            candidates = []
            for proc in soc.processors:
                if is_offline(proc.name):
                    continue
                if task.workload is not None:
                    solo = task.workload.profile.exec_ms(
                        proc, task.workload.start, task.workload.end
                    )
                    if solo == float("inf"):
                        continue
                else:
                    solo = task.solo_ms  # no profile: keep the estimate
                candidates.append((backlog[proc.name] + solo, solo, proc))
            if not candidates:
                raise RuntimeError(
                    f"request {task.request}: no online processor can run "
                    f"its slice after {task.proc.name!r} went offline"
                )
            _, solo, proc = min(candidates, key=lambda c: c[0])
            backlog[proc.name] += solo
            task.proc = proc
            task.solo_ms = solo
            task.remaining_ms = solo
            if task.workload is not None:
                task.workload = SliceWorkload(
                    profile=task.workload.profile,
                    proc=proc,
                    start=task.workload.start,
                    end=task.workload.end,
                )

    def ready_task_for(proc_name: str) -> Optional[ChainTask]:
        if is_offline(proc_name):
            return None
        best: Optional[ChainTask] = None
        for i in range(n):
            idx = next_idx[i]
            if idx >= len(chains[i]) or not prev_done[i]:
                continue
            task = chains[i][idx]
            if task.proc.name != proc_name:
                continue
            if arrivals[i] > now + _EPS:
                continue
            if best is None or task.request < best.request:
                best = task
        return best

    def start_task(task: ChainTask, proc_name: str) -> None:
        nonlocal used_bytes
        task.start_ms = now
        proc_running[proc_name] = task
        used_bytes += task.working_set
        request_alloc[task.request] = (
            request_alloc.get(task.request, 0.0) + task.working_set
        )
        next_idx[task.request] += 1
        prev_done[task.request] = False

    def try_start() -> bool:
        """Start whatever fits; True if any ready task is memory-blocked."""
        blocked = False
        for proc in soc.processors:
            if proc_running[proc.name] is not None:
                continue
            task = ready_task_for(proc.name)
            if task is None:
                continue
            if enforce_memory and used_bytes + task.working_set > capacity:
                blocked = True
                continue  # waits for residency to drain
            start_task(task, proc.name)
        return blocked

    def force_start_blocked() -> bool:
        """Overcommit one memory-blocked task to break a residency wedge.

        With hold-until-request-completion residency, tight capacities
        can deadlock (every in-flight request waits for memory another
        holds).  A real device pages in this regime; we model that as a
        forced start and count it as a memory-pressure event.
        """
        nonlocal memory_pressure_events
        for proc in soc.processors:
            if proc_running[proc.name] is not None:
                continue
            task = ready_task_for(proc.name)
            if task is None:
                continue
            start_task(task, proc.name)
            memory_pressure_events += 1
            return True
        return False

    def record_trace() -> None:
        if not trace:
            return
        demands = []
        names = []
        for proc in soc.processors:
            task = proc_running[proc.name]
            if task is None or task.workload is None:
                continue
            names.append(proc.name)
            demands.append(
                MemoryDemand(
                    processor=proc.kind,
                    bandwidth_gbps=task.workload.profile.traffic_rate_gbps(
                        task.workload.proc,
                        task.workload.start,
                        task.workload.end,
                    ),
                    footprint_bytes=task.working_set,
                )
            )
        trace_points.append(
            TracePoint(
                time_ms=now,
                bandwidth_demand_gbps=sum(d.bandwidth_gbps for d in demands),
                memory_freq_mhz=governor.select_frequency(demands),
                used_bytes=used_bytes,
                active_processors=tuple(names),
            )
        )

    # The span covers exactly the event loop's wall time; the context
    # manager closes it on the RuntimeError raise paths too.
    with (
        obs.span(
            "execute",
            requests=n,
            tasks=total_tasks,
            contention=with_contention,
        )
        if record
        else obs.NULL_SPAN
    ) as _span:
        while completed < total_tasks:
            if offline:
                reassign_offline_heads()
            memory_blocked = try_start()
            running = [t for t in proc_running.values() if t is not None]
            if not running and memory_blocked:
                if force_start_blocked():
                    running = [
                        t for t in proc_running.values() if t is not None
                    ]
            record_trace()
            if not running:
                future = [a for a in arrivals if a > now + _EPS]
                if not future:
                    raise RuntimeError(
                        "simulation wedged: no running task and no arrival"
                    )
                now = min(future)
                continue

            rates: Dict[int, float] = {}
            for task in running:
                slowdown = 0.0
                if with_contention and task.workload is not None:
                    others = [
                        t.workload
                        for t in running
                        if t is not task and t.workload is not None
                    ]
                    slowdown = slowdown_fraction(soc, task.workload, others)
                rates[id(task)] = 1.0 + slowdown

            dt = min(task.remaining_ms * rates[id(task)] for task in running)
            future = [a - now for a in arrivals if a > now + _EPS]
            if future:
                dt = min(dt, min(future))
            fault_edges = [
                t - now for t in offline.values() if t > now + _EPS
            ]
            if fault_edges:
                dt = min(dt, min(fault_edges))
            dt = max(dt, _EPS)

            for task in running:
                task.remaining_ms -= dt / rates[id(task)]
                busy[task.proc.name] += dt
            now += dt

            for proc in soc.processors:
                task = proc_running[proc.name]
                if task is not None and task.remaining_ms <= _EPS * 10:
                    proc_running[proc.name] = None
                    prev_done[task.request] = True
                    finish[task.request] = now
                    completed += 1
                    if next_idx[task.request] >= len(chains[task.request]):
                        # Last stage done: release the request's arenas.
                        used_bytes -= request_alloc.pop(task.request, 0.0)
                    traffic = 0.0
                    if task.workload is not None:
                        traffic = task.workload.profile.traffic_bytes(
                            task.workload.proc,
                            task.workload.start,
                            task.workload.end,
                        )
                    records.append(
                        TaskRecord(
                            request=task.request,
                            stage=task.stage,
                            processor=proc.name,
                            start_ms=task.start_ms or 0.0,
                            finish_ms=now,
                            solo_ms=task.solo_ms,
                            traffic_bytes=traffic,
                        )
                    )
            record_trace()
        _span.set(makespan_ms=now, memory_pressure=memory_pressure_events)

    if record and obs.enabled():
        obs.add("tasks_executed", total_tasks)
        obs.add("memory_pressure_events", memory_pressure_events)
        obs.set_gauge("last_execution_makespan_ms", now)
        for record in records:
            if record.solo_ms > 0:
                obs.observe("slice_slowdown", record.slowdown)

    return ExecutionResult(
        records=records,
        makespan_ms=now,
        request_arrival_ms=list(arrivals),
        request_finish_ms=finish,
        trace=trace_points,
        processor_busy_ms=busy,
        memory_pressure_events=memory_pressure_events,
    )


def plan_to_chains(plan: "PipelinePlan") -> List[List[ChainTask]]:
    """Adapt a pipeline plan to the chain representation."""
    chains: List[List[ChainTask]] = []
    for i, assignment in enumerate(plan.assignments):
        chain: List[ChainTask] = []
        for k, slc in enumerate(assignment.slices):
            if slc is None:
                continue
            chain.append(
                ChainTask(
                    request=i,
                    proc=plan.processors[k],
                    solo_ms=assignment.stage_time_ms(k, plan.processors),
                    workload=SliceWorkload(
                        profile=assignment.profile,
                        proc=plan.processors[k],
                        start=slc[0],
                        end=slc[1],
                    ),
                    working_set=ARENA_OVERHEAD_FACTOR
                    * assignment.profile.working_set_bytes(slc[0], slc[1]),
                    stage=k,
                )
            )
        chains.append(chain)
    return chains


def scale_chain_tasks(
    chains: Sequence[Sequence[ChainTask]],
    factors: Dict[str, float],
) -> int:
    """Perturbation injection: scale task solo times per processor.

    Multiplies ``solo_ms`` / ``remaining_ms`` of every not-yet-started
    task bound to a processor in ``factors`` (e.g. ``{"gpu": 1.3}`` is
    a +30% slowdown — thermal throttling, an unplanned co-runner).  The
    planner never sees the perturbation, so the executed run diverges
    from its prediction — the scenario the drift detectors exist for.

    Returns:
        The number of tasks scaled.

    Raises:
        ValueError: on a non-positive factor.
    """
    for name, factor in factors.items():
        if factor <= 0:
            raise ValueError(f"factor for {name!r} must be > 0, got {factor}")
    scaled = 0
    for chain in chains:
        for task in chain:
            factor = factors.get(task.proc.name)
            if factor is None:
                continue
            task.solo_ms = task.solo_ms * factor
            task.remaining_ms = task.remaining_ms * factor
            scaled += 1
    return scaled


def execute_plan_perturbed(
    plan: "PipelinePlan",
    factors: Dict[str, float],
    arrivals: Optional[Sequence[float]] = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    trace: bool = False,
    record: bool = True,
) -> ExecutionResult:
    """Execute a plan with per-processor slowdown factors injected."""
    chains = plan_to_chains(plan)
    scale_chain_tasks(chains, factors)
    return simulate_chains(
        plan.soc,
        chains,
        arrivals=arrivals,
        with_contention=with_contention,
        enforce_memory=enforce_memory,
        trace=trace,
        record=record,
    )


class PipelineExecutor:
    """Simulates one :class:`~repro.core.plan.PipelinePlan` end to end."""

    def __init__(
        self,
        plan: "PipelinePlan",
        with_contention: bool = True,
        enforce_memory: bool = True,
        trace: bool = False,
        record: bool = True,
    ):
        self.plan = plan
        self.with_contention = with_contention
        self.enforce_memory = enforce_memory
        self.trace_enabled = trace
        self.record = record

    def run(self, arrivals: Optional[Sequence[float]] = None) -> ExecutionResult:
        """Simulate the plan (see :func:`simulate_chains`)."""
        return simulate_chains(
            self.plan.soc,
            plan_to_chains(self.plan),
            arrivals=arrivals,
            with_contention=self.with_contention,
            enforce_memory=self.enforce_memory,
            trace=self.trace_enabled,
            record=self.record,
        )


def execute_plan(
    plan: "PipelinePlan",
    arrivals: Optional[Sequence[float]] = None,
    with_contention: bool = True,
    enforce_memory: bool = True,
    trace: bool = False,
    record: bool = True,
) -> ExecutionResult:
    """Convenience wrapper: build an executor and run it."""
    return PipelineExecutor(
        plan,
        with_contention=with_contention,
        enforce_memory=enforce_memory,
        trace=trace,
        record=record,
    ).run(arrivals)
