"""Tests for processor specs, SoC registry, memory and thermal models."""

import pytest

from repro.hardware.memory import (
    MemoryDemand,
    MemoryFootprintTracker,
    MemoryGovernor,
    working_set_bytes,
)
from repro.hardware.processor import (
    ProcessorKind,
    ProcessorSpec,
    make_cpu_big,
    make_cpu_small,
    make_gpu,
    make_npu,
)
from repro.hardware.soc import SOC_NAMES, all_socs, get_soc
from repro.hardware.thermal import steady_state, sustained_frequency_scale
from repro.models.ir import Layer, OpType


def _layer(op=OpType.CONV):
    return Layer(
        name="x", op=op, flops=1e6, weight_bytes=1e3,
        activation_bytes=1e3, output_bytes=1e3,
    )


class TestProcessorSpec:
    def test_effective_gflops_uses_family_efficiency(self):
        cpu = make_cpu_big()
        assert cpu.effective_gflops(OpType.CONV) == pytest.approx(
            cpu.peak_gflops * cpu.efficiency["conv"]
        )
        assert cpu.effective_gflops(OpType.MATMUL) < cpu.effective_gflops(
            OpType.CONV
        )

    def test_fused_block_ops_use_conv_family(self):
        cpu = make_cpu_big()
        assert cpu.op_family(OpType.CONCAT) == "conv"
        assert cpu.op_family(OpType.ADD) == "conv"

    def test_masked_attention_is_matmul_family(self):
        assert make_cpu_big().op_family(OpType.MASKED_ATTENTION) == "matmul"

    def test_cpu_supports_everything(self):
        assert make_cpu_big().supports(_layer(OpType.MISH))

    def test_npu_rejects_fallback_ops(self):
        npu = make_npu()
        assert not npu.supports(_layer(OpType.MISH))
        assert not npu.supports(_layer(OpType.MASKED_ATTENTION))
        assert npu.supports(_layer(OpType.CONV))

    def test_npu_slice_support(self):
        npu = make_npu()
        good = [_layer(OpType.CONV), _layer(OpType.POOL)]
        bad = good + [_layer(OpType.EMBEDDING)]
        assert npu.supports_model_slice(good)
        assert not npu.supports_model_slice(bad)

    def test_invalid_peak_rejected(self):
        with pytest.raises(ValueError):
            ProcessorSpec(
                name="x",
                kind=ProcessorKind.GPU,
                peak_gflops=0,
                efficiency={"conv": 0.5, "matmul": 0.5, "depthwise": 0.5, "light": 0.5},
                mem_bandwidth_gbps=10,
                l2_cache_bytes=1e6,
                launch_overhead_ms=0.1,
                copy_bandwidth_gbps=10,
            )

    def test_missing_efficiency_key_rejected(self):
        with pytest.raises(ValueError):
            ProcessorSpec(
                name="x",
                kind=ProcessorKind.GPU,
                peak_gflops=100,
                efficiency={"conv": 0.5},
                mem_bandwidth_gbps=10,
                l2_cache_bytes=1e6,
                launch_overhead_ms=0.1,
                copy_bandwidth_gbps=10,
            )


class TestSocRegistry:
    def test_three_platforms(self):
        assert set(SOC_NAMES) == {"kirin990", "snapdragon778g", "snapdragon870"}
        assert len(all_socs()) == 3

    def test_unknown_soc(self):
        with pytest.raises(KeyError):
            get_soc("exynos")

    def test_only_kirin_has_npu(self):
        assert get_soc("kirin990").has_npu
        assert not get_soc("snapdragon778g").has_npu
        assert not get_soc("snapdragon870").has_npu

    def test_processor_power_ordering(self):
        # The paper orders stages by descending processing power.
        soc = get_soc("kirin990")
        powers = [p.effective_gflops(OpType.CONV) for p in soc.processors]
        assert powers == sorted(powers, reverse=True)
        assert soc.processors[0].kind == ProcessorKind.NPU
        assert soc.processors[-1].kind == ProcessorKind.CPU_SMALL

    def test_processor_lookup(self):
        soc = get_soc("kirin990")
        assert soc.processor("gpu").kind == ProcessorKind.GPU
        with pytest.raises(KeyError):
            soc.processor("dsp")

    def test_npu_property_raises_without_npu(self):
        with pytest.raises(KeyError):
            get_soc("snapdragon870").npu

    def test_coupling_structure(self):
        soc = get_soc("kirin990")
        cpu_gpu = soc.coupling_factor(ProcessorKind.CPU_BIG, ProcessorKind.GPU)
        cpu_npu = soc.coupling_factor(ProcessorKind.CPU_BIG, ProcessorKind.NPU)
        intra = soc.coupling_factor(ProcessorKind.CPU_BIG, ProcessorKind.CPU_BIG)
        assert cpu_gpu > cpu_npu  # NPU's dedicated path
        assert intra > cpu_gpu  # Fig. 10 intra-cluster

    def test_unknown_coupling_defaults_to_zero(self):
        soc = get_soc("snapdragon870")
        assert soc.coupling_factor(ProcessorKind.NPU, ProcessorKind.NPU) >= 0


class TestMemoryGovernor:
    def test_idle_selects_lowest(self):
        gov = MemoryGovernor(get_soc("kirin990"))
        assert gov.select_frequency([]) == gov.frequencies_mhz[0]

    def test_npu_only_stays_low(self):
        gov = MemoryGovernor(get_soc("kirin990"))
        demand = [MemoryDemand(ProcessorKind.NPU, 20.0, 1e8)]
        assert gov.select_frequency(demand) == gov.frequencies_mhz[0]

    def test_cpu_demand_boosts_to_max(self):
        gov = MemoryGovernor(get_soc("kirin990"))
        demand = [MemoryDemand(ProcessorKind.CPU_BIG, 2.0, 1e8)]
        assert gov.select_frequency(demand) == gov.frequencies_mhz[-1]

    def test_tiny_demand_uses_low_state(self):
        gov = MemoryGovernor(get_soc("kirin990"))
        demand = [MemoryDemand(ProcessorKind.CPU_BIG, 0.05, 1e8)]
        assert gov.select_frequency(demand) < gov.frequencies_mhz[-1]

    def test_bandwidth_scales_with_frequency(self):
        soc = get_soc("kirin990")
        gov = MemoryGovernor(soc)
        assert gov.bandwidth_at(soc.memory_freq_mhz[-1]) == pytest.approx(
            soc.bus_bandwidth_gbps
        )
        assert gov.bandwidth_at(soc.memory_freq_mhz[0]) < soc.bus_bandwidth_gbps


class TestFootprintTracker:
    def test_allocate_and_release(self):
        tracker = MemoryFootprintTracker(100.0)
        tracker.allocate("a", 60.0)
        assert tracker.used_bytes == 60.0
        assert tracker.available_bytes == 40.0
        tracker.release("a")
        assert tracker.used_bytes == 0.0

    def test_over_capacity_raises(self):
        tracker = MemoryFootprintTracker(100.0)
        tracker.allocate("a", 80.0)
        with pytest.raises(MemoryError):
            tracker.allocate("b", 30.0)

    def test_duplicate_key_rejected(self):
        tracker = MemoryFootprintTracker(100.0)
        tracker.allocate("a", 10.0)
        with pytest.raises(ValueError):
            tracker.allocate("a", 10.0)

    def test_release_unknown_key(self):
        tracker = MemoryFootprintTracker(100.0)
        with pytest.raises(KeyError):
            tracker.release("ghost")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryFootprintTracker(0.0)

    def test_working_set_helper(self):
        assert working_set_bytes(10.0, 5.0) == 15.0


class TestThermal:
    def test_cpu_big_throttles_at_full_load(self):
        state = steady_state(ProcessorKind.CPU_BIG, 1.0)
        assert state.temperature_c > 60.0
        assert state.frequency_scale < 1.0

    def test_gpu_stays_cool(self):
        state = steady_state(ProcessorKind.GPU, 1.0)
        assert state.temperature_c < 50.0
        assert state.frequency_scale == 1.0

    def test_npu_never_throttles(self):
        assert sustained_frequency_scale(ProcessorKind.NPU, 1.0) == 1.0

    def test_idle_no_throttle(self):
        assert sustained_frequency_scale(ProcessorKind.CPU_BIG, 0.0) == 1.0

    def test_monotone_in_utilization(self):
        scales = [
            sustained_frequency_scale(ProcessorKind.CPU_BIG, u)
            for u in (0.0, 0.5, 0.8, 1.0)
        ]
        assert scales == sorted(scales, reverse=True)

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            steady_state(ProcessorKind.CPU_BIG, 1.5)
