"""Extension experiment: scaling behaviour of the pipeline.

Two sweeps the paper does not report but a practitioner wants:

1. **Request-count scaling** — throughput vs stream length.  A pipeline
   amortizes its fill/drain bubbles over more requests, so throughput
   should climb toward a steady-state plateau.
2. **Model-size scaling** — speedup over serial execution as the
   workload shifts from all-lightweight to all-heavyweight, using the
   depth-parameterized model variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.planner import Hetero2PipePlanner
from ..baselines.mnn_serial import plan_mnn_serial
from ..hardware.soc import SocSpec, get_soc
from ..models.variants import build_bert_variant, build_resnet
from ..models.zoo import get_model
from ..profiling.profiler import SocProfiler
from ..runtime.executor import execute_plan
from .common import format_table

#: The repeating request mix of the request-count sweep.
MIX = ("resnet50", "squeezenet", "vit", "googlenet")


@dataclass(frozen=True)
class CountPoint:
    """Throughput at one stream length."""

    num_requests: int
    throughput_per_s: float
    latency_ms: float


def run_request_scaling(
    soc: Optional[SocSpec] = None,
    counts: Sequence[int] = (2, 4, 8, 16),
) -> List[CountPoint]:
    """Sweep the stream length over a fixed request mix."""
    soc = soc or get_soc("kirin990")
    planner = Hetero2PipePlanner(soc)
    points: List[CountPoint] = []
    for count in counts:
        models = [get_model(MIX[i % len(MIX)]) for i in range(count)]
        result = execute_plan(planner.plan(models).plan)
        points.append(
            CountPoint(
                num_requests=count,
                throughput_per_s=result.throughput_per_s,
                latency_ms=result.makespan_ms,
            )
        )
    return points


@dataclass(frozen=True)
class SizePoint:
    """Speedup at one model-scale tier."""

    tier: str
    serial_ms: float
    h2p_ms: float

    @property
    def speedup(self) -> float:
        return self.serial_ms / self.h2p_ms


def run_size_scaling(soc: Optional[SocSpec] = None) -> List[SizePoint]:
    """Sweep the workload from small to large model variants."""
    soc = soc or get_soc("kirin990")
    profiler = SocProfiler(soc)
    planner = Hetero2PipePlanner(soc)
    tiers: List[Tuple[str, List]] = [
        ("small", [build_resnet(18), build_bert_variant(6),
                   get_model("squeezenet")]),
        ("base", [build_resnet(50), build_bert_variant(12),
                  get_model("squeezenet")]),
        ("large", [build_resnet(101), build_bert_variant(24, hidden=1024),
                   get_model("squeezenet")]),
    ]
    points: List[SizePoint] = []
    for tier, models in tiers:
        serial = execute_plan(
            plan_mnn_serial(soc, models, profiler)
        ).makespan_ms
        h2p = execute_plan(planner.plan(models).plan).makespan_ms
        points.append(SizePoint(tier=tier, serial_ms=serial, h2p_ms=h2p))
    return points


def render_counts(points: Sequence[CountPoint]) -> str:
    headers = ["requests", "latency_ms", "throughput_/s"]
    body = [[p.num_requests, p.latency_ms, p.throughput_per_s] for p in points]
    return format_table(headers, body)


def render_sizes(points: Sequence[SizePoint]) -> str:
    headers = ["tier", "serial_ms", "h2p_ms", "speedup"]
    body = [
        [p.tier, p.serial_ms, p.h2p_ms, round(p.speedup, 2)] for p in points
    ]
    return format_table(headers, body)


def main() -> str:
    return (
        "request-count scaling:\n"
        + render_counts(run_request_scaling())
        + "\n\nmodel-size scaling:\n"
        + render_sizes(run_size_scaling())
    )


if __name__ == "__main__":
    print(main())
