"""Tests for ``repro.obs``: spans, metrics, recorder, provenance events.

The observability layer must (a) be a strict no-op when disabled, (b)
build correct span trees and metric aggregates when enabled, and (c)
keep the provenance log describing only *committed* decisions via the
buffered/commit protocol the planner uses for candidate orders.
"""

import json
import threading

import pytest

from repro import obs
from repro.obs import events as obs_events
from repro.obs import export as obs_export
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import NULL_SPAN, Span, set_clock


class FakeClock:
    """Deterministic, manually-advanced span clock."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


@pytest.fixture
def fake_clock():
    clock = FakeClock()
    previous = set_clock(clock)
    yield clock
    set_clock(previous)


@pytest.fixture
def recorder():
    with obs.use_recorder(obs.InMemoryRecorder()) as rec:
        yield rec


# ----------------------------------------------------------------- spans


class TestSpans:
    def test_span_duration_uses_injected_clock(self, fake_clock, recorder):
        with obs.span("work") as sp:
            fake_clock.tick(0.25)
        assert sp.duration_ms == pytest.approx(250.0)
        assert sp.end_s == pytest.approx(0.25)

    def test_spans_nest_into_a_tree(self, recorder):
        with obs.span("root"):
            with obs.span("child-a"):
                with obs.span("grandchild"):
                    pass
            with obs.span("child-b"):
                pass
        (root,) = recorder.spans
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert [s.name for s in root.walk()] == [
            "root", "child-a", "grandchild", "child-b",
        ]

    def test_sequential_roots_stay_separate(self, recorder):
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        assert [s.name for s in recorder.spans] == ["first", "second"]

    def test_attrs_set_mid_flight(self, recorder):
        with obs.span("p", model="bert") as sp:
            sp.set(makespan_ms=12.5)
        assert sp.attrs == {"model": "bert", "makespan_ms": 12.5}

    def test_manual_close_is_idempotent(self, fake_clock, recorder):
        sp = obs.span("manual")
        fake_clock.tick(1.0)
        sp.close()
        fake_clock.tick(1.0)
        sp.close()  # second close must not move end_s
        assert sp.duration_ms == pytest.approx(1000.0)

    def test_mis_nested_close_pops_descendants(self, recorder):
        outer = obs.span("outer")
        obs.span("inner")  # left open deliberately
        outer.close()
        # The stack must be clean again: a new span becomes a new root.
        with obs.span("after"):
            pass
        assert [s.name for s in recorder.spans] == ["outer", "after"]

    def test_to_dict_round_trips_through_json(self, recorder):
        with obs.span("root", soc="kirin990"):
            with obs.span("child"):
                pass
        doc = json.loads(json.dumps(recorder.spans[0].to_dict()))
        assert doc["name"] == "root"
        assert doc["attrs"] == {"soc": "kirin990"}
        assert doc["children"][0]["name"] == "child"


class TestDisabledPath:
    def test_default_recorder_is_disabled(self):
        assert not obs.enabled()
        assert isinstance(obs.get_recorder(), obs.NullRecorder)

    def test_span_returns_the_null_singleton(self):
        sp = obs.span("anything", big_attr=list(range(100)))
        assert sp is NULL_SPAN
        with sp as inner:
            inner.set(x=1)  # all no-ops
        sp.close()

    def test_helpers_are_noops(self):
        obs.add("counter", 5)
        obs.observe("hist", 1.0)
        obs.set_gauge("gauge", 2.0)
        obs.emit(
            obs_events.OrderCommitted(
                order=(0,), arrival_makespan_ms=1.0,
                chosen_makespan_ms=1.0, mitigated=False,
            )
        )
        rec = obs.get_recorder()
        assert rec.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_use_recorder_restores_previous(self):
        before = obs.get_recorder()
        with obs.use_recorder(obs.InMemoryRecorder()):
            assert obs.enabled()
        assert obs.get_recorder() is before
        assert not obs.enabled()


# ---------------------------------------------------------------- metrics


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("cells").add(3)
        reg.counter("cells").add()
        assert reg.snapshot()["counters"] == {"cells": 4.0}
        with pytest.raises(ValueError):
            reg.counter("cells").add(-1)

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("makespan").set(10.0)
        reg.gauge("makespan").set(7.5)
        assert reg.snapshot()["gauges"] == {"makespan": 7.5}

    def test_histogram_buckets_and_stats(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["mean"] == pytest.approx(14.05)
        assert d["min"] == 0.5 and d["max"] == 50.0
        assert d["buckets"] == {"le_1": 2, "le_10": 1, "inf": 1}

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=())
        with pytest.raises(ValueError):
            Histogram("x", buckets=(1.0, 1.0))

    def test_render_json_parses(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        reg.histogram("h").observe(1.0)
        doc = json.loads(reg.render_json())
        assert doc["counters"] == {"a": 2.0}
        assert doc["histograms"]["h"]["count"] == 1

    def test_render_text_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("steal_moves").add(3)
        reg.gauge("last_plan_makespan_ms").set(42.0)
        reg.histogram("intensity").observe(0.3)
        text = reg.render_text()
        for token in ("steal_moves", "last_plan_makespan_ms", "intensity"):
            assert token in text
        assert MetricsRegistry().render_text() == "(no metrics recorded)"

    def test_fast_path_helpers_feed_registry(self, recorder):
        obs.add("n", 2)
        obs.set_gauge("g", 9.0)
        obs.observe("h", 0.5)
        snap = recorder.metrics.snapshot()
        assert snap["counters"] == {"n": 2.0}
        assert snap["gauges"] == {"g": 9.0}
        assert snap["histograms"]["h"]["count"] == 1


# ----------------------------------------------------- events + buffering


class TestEventsAndBuffering:
    def test_events_record_in_order(self, recorder):
        a = obs_events.SliceChosen(
            request=0, model="bert", slices=((0, 3), None),
            stage_times_ms=(1.0, 0.0), makespan_ms=1.0,
        )
        b = obs_events.OrderCommitted(
            order=(0,), arrival_makespan_ms=1.0,
            chosen_makespan_ms=1.0, mitigated=False,
        )
        obs.emit(a)
        obs.emit(b)
        assert recorder.events == [a, b]
        assert [e.kind for e in recorder.events] == [
            "slice_chosen", "order_committed",
        ]

    def test_to_dict_includes_kind(self):
        e = obs_events.LayerStolen(
            request=1, from_stage=0, to_stage=1, layer=7,
            phase="window-steal", gain_ms=0.5,
        )
        d = e.to_dict()
        assert d["kind"] == "layer_stolen"
        assert d["layer"] == 7
        assert set(obs_events.EVENT_KINDS) == {
            "slice_chosen", "request_relocated", "order_committed",
            "layer_stolen", "placement_changed", "tail_replaced",
            "drift_detected", "slo_burn_alert", "timeline_diagnostic",
        }

    def test_buffered_events_held_until_commit(self, recorder):
        stolen = obs_events.LayerStolen(
            request=0, from_stage=0, to_stage=1, layer=2,
            phase="window-steal", gain_ms=1.0,
        )
        with recorder.buffered() as winner:
            obs.emit(stolen)
        assert recorder.events == []  # not committed yet
        assert winner == [stolen]
        recorder.commit(winner)
        assert recorder.events == [stolen]

    def test_losing_buffer_never_reaches_the_log(self, recorder):
        with recorder.buffered():
            obs.emit(
                obs_events.LayerStolen(
                    request=9, from_stage=0, to_stage=1, layer=1,
                    phase="window-steal", gain_ms=0.1,
                )
            )
        assert recorder.events == []

    def test_buffers_nest(self, recorder):
        outer_event = obs_events.OrderCommitted(
            order=(0,), arrival_makespan_ms=1.0,
            chosen_makespan_ms=1.0, mitigated=False,
        )
        with recorder.buffered() as outer:
            with recorder.buffered() as inner:
                obs.emit(outer_event)
            assert inner == [outer_event] and outer == []

    def test_metrics_bypass_buffering(self, recorder):
        with recorder.buffered():
            obs.add("work_done")
        assert recorder.metrics.snapshot()["counters"] == {"work_done": 1.0}

    def test_reset_clears_everything(self, recorder):
        with obs.span("s"):
            obs.add("c")
        obs.emit(
            obs_events.OrderCommitted(
                order=(0,), arrival_makespan_ms=0.0,
                chosen_makespan_ms=0.0, mitigated=False,
            )
        )
        recorder.reset()
        assert recorder.spans == [] and recorder.events == []
        assert recorder.metrics.snapshot()["counters"] == {}

    def test_threads_build_independent_trees(self, recorder):
        def worker():
            with obs.span("worker-root"):
                with obs.span("worker-child"):
                    pass

        with obs.span("main-root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        names = sorted(s.name for s in recorder.spans)
        assert names == ["main-root", "worker-root"]
        worker_root = next(
            s for s in recorder.spans if s.name == "worker-root"
        )
        assert [c.name for c in worker_root.children] == ["worker-child"]


# ----------------------------------------------------------- export leafs


class TestExportBuilders:
    def test_span_trace_events_normalize_to_zero(self, fake_clock):
        root = Span("plan")
        fake_clock.tick(0.001)
        child = Span("plan.partition")
        fake_clock.tick(0.002)
        child.close()
        root.children.append(child)
        root.close()
        events = obs_export.span_trace_events([root])
        assert [e["name"] for e in events] == ["plan", "plan.partition"]
        assert events[0]["ts"] == pytest.approx(0.0)
        assert events[1]["ts"] == pytest.approx(1000.0)
        assert events[1]["dur"] == pytest.approx(2000.0)
        assert all(e["ph"] == "X" for e in events)

    def test_metric_counter_events(self):
        reg = MetricsRegistry()
        reg.counter("steal_moves").add(4)
        reg.gauge("makespan").set(10.0)
        events = obs_export.metric_counter_events(reg, ts_us=5.0)
        by_name = {e["name"]: e for e in events}
        assert by_name["steal_moves"]["args"] == {"value": 4.0}
        assert by_name["makespan"]["ph"] == "C"
        assert all(e["ts"] == 5.0 for e in events)

    def test_flow_pair_shape(self):
        s, f = obs_export.flow_pair(
            "layer_stolen", 3,
            {"pid": 0, "tid": 1, "ts": 10.0},
            {"pid": 0, "tid": 2, "ts": 20.0},
        )
        assert s["ph"] == "s" and f["ph"] == "f"
        assert f["bp"] == "e"
        assert s["id"] == f["id"] == 3
        assert s["ts"] < f["ts"]
