"""SLO evaluator tests: burn-rate semantics, alerts, CLI schema.

Covers the full alerting stack bottom-up: spec validation and the CLI
``--classes`` grammar, hand-fed window streams with burn rates known in
closed form (edge-trigger fire / clear / re-fire), alert transport
through the provenance registry, the ``hetero2pipe slo`` JSON schema
(``hetero2pipe.slo.v1``), the JSONL artifact row types, and the
all-dropped regression sweep (satellite b/c: every
``latency_percentile_ms`` caller must survive a deadline that drops
every request, and ``mean_queueing_delay_ms`` must surface as None).
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs.accuracy import join_execution
from repro.obs.bench import simulation_latency_block
from repro.obs.events import EVENT_KINDS, SloBurnAlert, event_from_dict
from repro.obs.slo import (
    SloEvaluator,
    SloSpec,
    parse_class_specs,
    resolve_request_specs,
)
from repro.runtime.engine import Event
from repro.runtime.executor import execute_plan

KIRIN = get_soc("kirin990")


def ev(time_ms, kind, request=None, processor=None, detail=""):
    return Event(
        time_ms=time_ms,
        kind=kind,
        request=request,
        processor=processor,
        detail=detail,
    )


class TestSpecsAndGrammar:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SloSpec(name="a", deadline_ms=0.0)
        with pytest.raises(ValueError):
            SloSpec(name="a", deadline_ms=10.0, objective_frac=1.0)
        with pytest.raises(ValueError):
            SloSpec(name="a", deadline_ms=10.0, objective_frac=0.0)

    def test_parse_explicit_and_wildcard(self):
        specs = parse_class_specs("resnet50=80:0.99, *=120")
        assert specs["resnet50"] == SloSpec("resnet50", 80.0, 0.99)
        assert specs["*"] == SloSpec("*", 120.0, 0.95)

    @pytest.mark.parametrize(
        "text",
        ["", "resnet50", "=80", "a=fast", "a=80:many", "a=80,a=90"],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_class_specs(text)

    def test_resolve_wildcard_keeps_model_as_class_name(self):
        specs = parse_class_specs("resnet50=80:0.99,*=120:0.9")
        resolved = resolve_request_specs(["resnet50", "vit"], specs)
        assert resolved[0] == SloSpec("resnet50", 80.0, 0.99)
        assert resolved[1] == SloSpec("vit", 120.0, 0.9)

    def test_resolve_without_wildcard_raises(self):
        specs = parse_class_specs("resnet50=80")
        with pytest.raises(KeyError):
            resolve_request_specs(["resnet50", "vit"], specs)


class TestEvaluatorValidation:
    def test_constructor_rejects_misconfiguration(self):
        spec = SloSpec("a", 10.0)
        with pytest.raises(ValueError):
            SloEvaluator([], [], 10.0)
        with pytest.raises(ValueError):
            SloEvaluator([spec], [1, 1], 10.0)
        with pytest.raises(ValueError):
            SloEvaluator([spec], [1], 0.0)
        with pytest.raises(ValueError):
            SloEvaluator([spec], [1], 10.0, fast_windows=3, slow_windows=2)
        with pytest.raises(ValueError):
            SloEvaluator([spec], [1], 10.0, burn_threshold=0.0)

    def test_conflicting_specs_for_one_class_raise(self):
        with pytest.raises(ValueError):
            SloEvaluator(
                [SloSpec("a", 10.0), SloSpec("a", 20.0)], [1, 1], 10.0
            )


def burn_evaluator():
    """Six one-stage requests, all class "a": deadline 5 ms, 10% budget,
    fast=1/slow=2 windows of 10 ms, threshold 2x."""
    specs = [SloSpec("a", 5.0, objective_frac=0.9)] * 6
    return SloEvaluator(
        specs, [1] * 6, 10.0, fast_windows=1, slow_windows=2,
        burn_threshold=2.0,
    )


#: Window 0: one good.  Window 1: one good + one cancelled (bad_frac
#: 0.5 -> fast burn 5, slow burn 10/3) — fires.  Window 2: one good —
#: clears.  Window 3: one late departure (latency 7 > 5) — re-fires.
BURN_STREAM = [
    ev(0.0, "arrival", request=0),
    ev(1.0, "departure", request=0),
    ev(10.0, "arrival", request=1),
    ev(11.0, "departure", request=1),
    ev(12.0, "arrival", request=2),
    ev(13.0, "cancellation", request=2, detail="deadline"),
    ev(22.0, "arrival", request=3),
    ev(23.0, "departure", request=3),
    ev(31.0, "arrival", request=4),
    ev(38.0, "departure", request=4),
]


class TestBurnRates:
    def fold(self):
        evaluator = burn_evaluator()
        evaluator.observe_many(BURN_STREAM)
        evaluator.finish(40.0)
        return evaluator

    def test_burn_rates_match_closed_form(self):
        evaluator = self.fold()
        by_window = {r.window: r for r in evaluator.window_reports}
        assert set(by_window) == {0, 1, 2, 3}
        assert by_window[0].fast_burn == pytest.approx(0.0)
        # Window 1: 1 good + 1 bad in the fast view, 2 good + 1 bad in
        # the slow view; budget is 0.1.
        assert by_window[1].fast_burn == pytest.approx(5.0)
        assert by_window[1].slow_burn == pytest.approx(10.0 / 3.0)
        assert by_window[2].fast_burn == pytest.approx(0.0)
        assert by_window[3].fast_burn == pytest.approx(10.0)
        assert by_window[3].slow_burn == pytest.approx(5.0)

    def test_edge_triggered_fire_clear_refire(self):
        evaluator = self.fold()
        alerts = evaluator.alerts
        assert [a.window for a in alerts] == [1, 3]
        by_window = {r.window: r for r in evaluator.window_reports}
        assert by_window[1].alert_fired
        assert not by_window[2].alert_fired  # cleared, re-armed
        assert by_window[3].alert_fired

    def test_alert_payload(self):
        alert = self.fold().alerts[0]
        assert alert.class_name == "a"
        assert alert.fast_burn == pytest.approx(5.0)
        assert alert.threshold == pytest.approx(2.0)
        assert alert.objective_frac == pytest.approx(0.9)
        assert alert.deadline_ms == pytest.approx(5.0)

    def test_alerts_flow_through_provenance(self):
        with obs.use_recorder(obs.InMemoryRecorder()) as rec:
            evaluator = burn_evaluator()
            evaluator.observe_many(BURN_STREAM)
            evaluator.finish(40.0)
        recorded = [e for e in rec.events if e.kind == "slo_burn_alert"]
        assert recorded == evaluator.alerts
        for alert in recorded:
            assert event_from_dict(alert.to_dict()) == alert

    def test_summary_attainment_and_budget(self):
        summary = self.fold().summary()["a"]
        assert summary["requests"] == 5
        assert summary["good"] == 3 and summary["bad"] == 2
        assert summary["attainment_frac"] == pytest.approx(0.6)
        # budget 0.1, spent 0.4 -> (0.1 - 0.4) / 0.1 = -3.
        assert summary["budget_remaining_frac"] == pytest.approx(-3.0)
        assert summary["alerts"] == 2

    def test_finish_counts_in_flight_as_bad(self):
        evaluator = burn_evaluator()
        evaluator.observe(ev(0.0, "arrival", request=0))
        evaluator.finish(3.0)
        summary = evaluator.summary()["a"]
        assert summary["bad"] == 1 and summary["good"] == 0

    def test_empty_windows_burn_zero(self):
        evaluator = burn_evaluator()
        evaluator.finish(35.0)  # three empty windows + partial
        assert all(
            r.fast_burn == 0.0 and not r.alert_fired
            for r in evaluator.window_reports
        )

    def test_event_kinds_registration(self):
        assert EVENT_KINDS["slo_burn_alert"] is SloBurnAlert
        assert "timeline_diagnostic" in EVENT_KINDS


class TestSloCli:
    SLO_ARGS = [
        "slo",
        "--soc", "kirin990",
        "--models", "squeezenet,mobilenetv2",
        "--repeat", "3",
        "--arrivals", "poisson",
        "--interval-ms", "40",
        "--arrival-seed", "2",
        "--window-ms", "30",
        "--classes", "*=200:0.9",
        "--burn-windows", "1,4",
    ]

    def run_json(self, capsys, extra=()):
        assert main(self.SLO_ARGS + list(extra) + ["--json"]) == 0
        return json.loads(capsys.readouterr().out)

    def test_json_schema_v1(self, capsys):
        doc = self.run_json(capsys)
        assert doc["schema"] == "hetero2pipe.slo.v1"
        assert sorted(doc) == [
            "alerts",
            "arrival_process",
            "burn",
            "classes",
            "interval_ms",
            "latency",
            "latency_sketch",
            "littles_law",
            "makespan_ms",
            "models",
            "queueing",
            "repeat",
            "requests",
            "schema",
            "soc",
            "throughput_per_s",
            "window_ms",
            "windows",
        ]
        assert doc["burn"] == {
            "fast_windows": 1, "slow_windows": 4, "threshold": 2.0,
        }
        assert doc["requests"] == 6
        assert doc["littles_law"]["ok"] is True
        assert set(doc["classes"]) == {"squeezenet", "mobilenetv2"}
        for row in doc["windows"]:
            assert row["end_ms"] > row["start_ms"]
        assert doc["latency_sketch"]["count"] == doc["latency"]["count"]

    def test_json_document_round_trips(self, capsys):
        doc = self.run_json(capsys)
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc

    def test_jsonl_artifact_row_types(self, capsys, tmp_path):
        path = tmp_path / "slo.jsonl"
        self.run_json(capsys, extra=["--jsonl", str(path)])
        rows = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        types = {row["type"] for row in rows}
        assert types >= {"window_stats", "slo_window"}

    def test_trace_keeps_phase_whitelist(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        self.run_json(capsys, extra=["--trace", str(path)])
        trace = json.loads(path.read_text())
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert phases <= {"X", "M", "C", "s", "f"}
        counters = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "C"
        }
        assert {"utilization_frac", "queue_depth", "throughput_per_s"} <= (
            counters
        )

    def test_human_output_mentions_classes(self, capsys):
        assert main(self.SLO_ARGS) == 0
        out = capsys.readouterr().out
        assert "class squeezenet:" in out
        assert "littles-law self-check: ok" in out

    def test_bad_classes_grammar_exits_2(self, capsys):
        assert main(["slo", "--models", "vit", "--classes", "vit"]) == 2
        assert "bad --classes entry" in capsys.readouterr().err

    def test_missing_class_without_wildcard_exits_2(self, capsys):
        assert (
            main(["slo", "--models", "vit", "--classes", "resnet50=80"])
            == 2
        )
        assert "no SLO class" in capsys.readouterr().err

    def test_bad_burn_windows_exits_2(self, capsys):
        assert (
            main(["slo", "--models", "vit", "--burn-windows", "fast"]) == 2
        )
        assert "bad --burn-windows" in capsys.readouterr().err

    def test_overloaded_run_alerts_and_replays(self, capsys):
        doc = self.run_json(
            capsys,
            extra=["--interval-ms", "0.5", "--classes", "*=3:0.9"],
        )
        assert doc["alerts"], "overload must burn the 3 ms budget"
        for raw in doc["alerts"]:
            alert = event_from_dict(raw)
            assert isinstance(alert, SloBurnAlert)
            assert alert.to_dict() == raw


class TestAllDroppedRegression:
    """Satellites b/c: a deadline that drops everything must not crash
    any latency/queueing consumer, and the tri-state None must surface
    end to end."""

    @pytest.fixture(scope="class")
    def plan(self):
        models = [get_model(n) for n in ("squeezenet", "mobilenetv2")]
        return Hetero2PipePlanner(KIRIN).plan(models).plan

    def test_engine_mean_queueing_delay_is_none(self, plan):
        result = execute_plan(plan, record=False, deadline_ms=0.0)
        assert result.num_completed == 0
        assert result.deadline_drops == result.num_requests
        assert result.mean_queueing_delay_ms is None

    def test_simulation_latency_block_all_dropped(self, plan):
        result = execute_plan(plan, record=False, deadline_ms=0.0)
        block = simulation_latency_block(result)
        assert block["completed_requests"] == 0
        assert block["mean_latency_ms"] is None
        assert block["p50_latency_ms"] is None
        assert block["p95_latency_ms"] is None

    def test_accuracy_join_tolerates_all_dropped_actual(self, plan):
        predicted = execute_plan(plan, record=False)
        actual = execute_plan(plan, record=False, deadline_ms=0.0)
        report = join_execution(predicted, actual)
        assert report.requests == ()
        assert report.slices == ()

    def test_stats_cli_pins_tri_state_null(self, capsys):
        code = main(
            [
                "stats",
                "--models", "squeezenet,mobilenetv2",
                "--deadline-ms", "0",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["queueing"]["mean_queueing_delay_ms"] is None
        assert doc["queueing"]["completed_requests"] == 0
        assert doc["latency"]["mean_ms"] is None

    def test_stats_cli_human_text_says_undefined(self, capsys):
        code = main(
            [
                "stats",
                "--models", "squeezenet",
                "--deadline-ms", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "undefined (no request ever started)" in out

    def test_slo_cli_all_dropped_run(self, capsys):
        code = main(
            [
                "slo",
                "--models", "squeezenet",
                "--deadline-ms", "0",
                "--classes", "*=50",
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["latency"]["count"] == 0
        assert doc["latency"]["p95_ms"] is None
        assert doc["queueing"]["mean_queueing_delay_ms"] is None
        summary = doc["classes"]["squeezenet"]
        assert summary["good"] == 0
        assert summary["attainment_frac"] == 0.0
