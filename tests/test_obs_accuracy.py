"""Tests for prediction-accuracy telemetry, drift detection and replans.

Covers the full predict -> execute -> compare loop: the residual join is
total (every executed slice maps 1:1 onto a predicted slice), clean runs
produce identically-zero residuals and keep every detector silent, an
injected +30% slowdown on the GPU fires the detectors, and the streaming
planner responds to a fired detector with a cache-invalidating replan
that changes the committed plan fingerprint.  Serialization round-trips
(telemetry JSONL, run archives, provenance events) and the Perfetto
residual counter track ride along.
"""

import dataclasses
import json
from functools import partial

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.online import StreamingPlanner
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs import (
    CusumDetector,
    DriftDetected,
    DriftMonitor,
    EwmaDetector,
    ResidualReport,
    SliceResidual,
    event_from_dict,
    join_execution,
    report_from_dict,
)
from repro.obs.drift import residual_stream
from repro.obs.export import (
    read_telemetry_jsonl,
    residual_counter_events,
    telemetry_rows,
    write_telemetry_jsonl,
)
from repro.runtime.executor import (
    execute_plan,
    execute_plan_perturbed,
    scale_chain_tasks,
)
from repro.runtime.replay import (
    RUN_SCHEMA,
    load_run,
    run_from_dict,
    run_to_dict,
    save_run,
)
from repro.runtime.tracing import to_chrome_trace

#: Stream whose GPU lane carries enough slices for the detectors to
#: clear ``min_samples`` within two windows at window_size=4.
STREAM_MODELS = ["resnet50", "yolov4", "bert", "squeezenet"]
PERTURB = {"gpu": 1.3}


def _models(names):
    return [get_model(n) for n in names]


def _planned(names=("resnet50", "yolov4", "bert", "squeezenet")):
    soc = get_soc("kirin990")
    planner = Hetero2PipePlanner(soc)
    report = planner.plan(_models(names))
    return soc, report


@pytest.fixture(scope="module")
def plan_report():
    _, report = _planned()
    return report


# ------------------------------------------------------- residual join


class TestJoinExecution:
    def test_clean_join_residuals_identically_zero(self, plan_report):
        predicted = execute_plan(plan_report.plan, record=False)
        actual = execute_plan(plan_report.plan, record=False)
        report = join_execution(predicted, actual)
        assert report.num_slices == len(actual.records)
        for s in report.slices:
            assert s.residual_ms == pytest.approx(0.0, abs=1e-9)
            assert s.relative_error == pytest.approx(0.0, abs=1e-9)
        assert report.makespan_residual_ms == pytest.approx(0.0, abs=1e-9)
        assert report.makespan_relative_error_frac == pytest.approx(
            0.0, abs=1e-9
        )

    def test_join_covers_every_executed_slice_exactly_once(
        self, plan_report
    ):
        predicted = execute_plan(plan_report.plan, record=False)
        actual = execute_plan(plan_report.plan, record=False)
        report = join_execution(predicted, actual)
        executed_keys = {(r.request, r.stage) for r in actual.records}
        joined_keys = [(s.request, s.stage) for s in report.slices]
        # 1:1 and total: no duplicates, no drops, nothing invented.
        assert len(joined_keys) == len(actual.records)
        assert set(joined_keys) == executed_keys
        assert len(set(joined_keys)) == len(joined_keys)
        predicted_keys = {(r.request, r.stage) for r in predicted.records}
        assert set(joined_keys) == predicted_keys

    def test_perturbed_join_shows_injected_error(self, plan_report):
        predicted = execute_plan(plan_report.plan, record=False)
        actual = execute_plan_perturbed(
            plan_report.plan, PERTURB, record=False
        )
        report = join_execution(predicted, actual)
        gpu = [s for s in report.slices if s.processor == "gpu"]
        assert gpu, "expected GPU slices in this plan"
        for s in gpu:
            assert s.relative_error > 0.0
        assert report.by_processor()["gpu"].mean_relative_error > 0.05
        assert report.actual_makespan_ms > report.predicted_makespan_ms

    def test_model_names_attach_per_request(self, plan_report):
        predicted = execute_plan(plan_report.plan, record=False)
        actual = execute_plan(plan_report.plan, record=False)
        names = ["a", "b", "c", "d"][: actual.num_requests]
        report = join_execution(predicted, actual, model_names=names)
        for s in report.slices:
            assert s.model == names[s.request]
        assert set(report.by_model()) == set(names)

    def test_mismatched_plans_raise(self):
        _, big = _planned(("resnet50", "yolov4", "bert", "squeezenet"))
        _, small = _planned(("resnet50", "yolov4"))
        predicted = execute_plan(big.plan, record=False)
        actual = execute_plan(small.plan, record=False)
        with pytest.raises(ValueError, match="mismatch|counterpart"):
            join_execution(predicted, actual)

    def test_join_emits_metrics_when_enabled(self, plan_report):
        rec = obs.InMemoryRecorder()
        with obs.use_recorder(rec):
            predicted = execute_plan(plan_report.plan, record=False)
            actual = execute_plan(plan_report.plan, record=False)
            report = join_execution(predicted, actual)
        counters = rec.metrics.snapshot()["counters"]
        assert counters["residual_joins"] == 1
        assert counters["residual_slices_joined"] == report.num_slices


# ------------------------------------------------------- perturbation


class TestPerturbation:
    def test_scale_chain_tasks_rejects_nonpositive_factor(
        self, plan_report
    ):
        with pytest.raises(ValueError):
            execute_plan_perturbed(plan_report.plan, {"gpu": 0.0})

    def test_unknown_processor_is_a_noop(self, plan_report):
        base = execute_plan(plan_report.plan, record=False)
        same = execute_plan_perturbed(
            plan_report.plan, {"no_such_proc": 2.0}, record=False
        )
        assert same.makespan_ms == pytest.approx(base.makespan_ms)

    def test_scaling_is_multiplicative(self, plan_report):
        scaled = execute_plan_perturbed(
            plan_report.plan, PERTURB, record=False
        )
        base = execute_plan(plan_report.plan, record=False)
        report = join_execution(base, scaled)
        gpu = [s for s in report.slices if s.processor == "gpu"]
        # Solo time scales by exactly 1.3; contention adds on top, so the
        # observed ratio is at least the injected factor - epsilon.
        assert all(s.actual_ms >= s.predicted_ms for s in gpu)


# ------------------------------------------------------- detectors


class TestEwmaDetector:
    def test_fires_on_sustained_shift_after_min_samples(self):
        det = EwmaDetector(alpha=0.5, threshold=0.1, min_samples=3)
        assert det.observe(0.3) is False  # sample 1 < min_samples
        assert det.observe(0.3) is False  # sample 2 < min_samples
        assert det.observe(0.3) is True

    def test_first_sample_seeds_value(self):
        det = EwmaDetector(alpha=0.3)
        det.observe(0.4)
        assert det.value == pytest.approx(0.4)
        det.observe(0.0)
        assert det.value == pytest.approx(0.7 * 0.4)

    def test_silent_on_zero_stream(self):
        det = EwmaDetector()
        assert not any(det.observe(0.0) for _ in range(100))

    def test_two_sided(self):
        det = EwmaDetector(alpha=1.0, threshold=0.1, min_samples=1)
        assert det.observe(-0.2) is True

    def test_reset_clears_state(self):
        det = EwmaDetector(alpha=1.0, threshold=0.1, min_samples=2)
        det.observe(0.5)
        det.reset()
        assert det.value == 0.0 and det.samples == 0
        assert det.observe(0.5) is False  # min_samples gating restarts

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaDetector(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaDetector(alpha=1.5)
        with pytest.raises(ValueError):
            EwmaDetector(threshold=0.0)
        with pytest.raises(ValueError):
            EwmaDetector(min_samples=0)


class TestCusumDetector:
    def test_accumulates_slow_ramp(self):
        det = CusumDetector(slack=0.05, threshold=0.5, min_samples=3)
        # 0.15/sample, 0.10 net after slack: trips after 5 samples.
        fired_at = None
        for i in range(1, 20):
            if det.observe(0.15):
                fired_at = i
                break
        assert fired_at == 6

    def test_slack_absorbs_jitter(self):
        det = CusumDetector(slack=0.05, threshold=0.5)
        assert not any(det.observe(0.04) for _ in range(200))
        assert det.statistic == 0.0

    def test_negative_drift_fires_too(self):
        det = CusumDetector(slack=0.0, threshold=0.3, min_samples=1)
        assert det.observe(-0.2) is False
        assert det.observe(-0.2) is True
        assert det.negative > det.threshold

    def test_reset_clears_state(self):
        det = CusumDetector(slack=0.0, threshold=0.1, min_samples=1)
        det.observe(0.5)
        det.reset()
        assert det.positive == 0.0 and det.negative == 0.0
        assert det.samples == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CusumDetector(slack=-0.1)
        with pytest.raises(ValueError):
            CusumDetector(threshold=0.0)
        with pytest.raises(ValueError):
            CusumDetector(min_samples=0)


def _residual(processor="gpu", model="resnet50", rel=0.3, request=0):
    predicted = 10.0
    return SliceResidual(
        request=request,
        stage=0,
        processor=processor,
        model=model,
        predicted_ms=predicted,
        actual_ms=predicted * (1.0 + rel),
        predicted_slowdown=0.0,
        observed_slowdown=rel,
        start_ms=0.0,
        finish_ms=predicted * (1.0 + rel),
    )


class TestDriftMonitor:
    def test_keys_created_per_processor_and_model(self):
        mon = DriftMonitor()
        mon.observe_residual(_residual(processor="gpu", model="bert"))
        assert mon.keys() == [("model", "bert"), ("processor", "gpu")]

    def test_fires_per_key_with_event_fields(self):
        mon = DriftMonitor(min_samples=3)
        fired = []
        for _ in range(3):
            fired.extend(mon.observe_residual(_residual(rel=0.3), window=7))
        assert len(fired) == 2  # processor key + model key
        scopes = {(e.scope, e.key) for e in fired}
        assert scopes == {("processor", "gpu"), ("model", "resnet50")}
        for event in fired:
            assert event.kind == "drift_detected"
            assert event.detector in ("ewma", "cusum")
            assert abs(event.statistic) > event.threshold
            assert event.samples >= 3
            assert event.window == 7
        assert mon.events == fired

    def test_silent_on_clean_stream(self):
        mon = DriftMonitor()
        for i in range(50):
            assert mon.observe_residual(_residual(rel=0.0, request=i)) == []

    def test_cooldown_after_firing(self):
        mon = DriftMonitor(min_samples=3)
        fired = []
        for _ in range(4):
            fired.extend(mon.observe_residual(_residual(rel=0.5)))
        # Fires at sample 3, then both keys reset: sample 4 is sample 1
        # of the next accumulation and cannot re-fire.
        assert len(fired) == 2
        pair = mon.detectors_for("processor", "gpu")
        assert pair.ewma.samples == 1

    def test_callbacks_invoked_per_event(self):
        mon = DriftMonitor(min_samples=1, ewma_threshold=0.1)
        seen = []
        mon.on_drift(seen.append)
        mon.observe_residual(_residual(rel=0.9))
        assert len(seen) == 2
        assert all(isinstance(e, DriftDetected) for e in seen)

    def test_observe_report_feeds_window_index(self):
        slices = tuple(_residual(rel=0.4, request=i) for i in range(3))
        report = ResidualReport(
            slices=slices,
            requests=(),
            predicted_makespan_ms=10.0,
            actual_makespan_ms=14.0,
            window=5,
        )
        mon = DriftMonitor(min_samples=3)
        fired = mon.observe_report(report)
        assert fired and all(e.window == 5 for e in fired)

    def test_reset_drops_detectors_keeps_events(self):
        mon = DriftMonitor(min_samples=1, ewma_threshold=0.1)
        mon.observe_residual(_residual(rel=0.9))
        assert mon.events
        mon.reset()
        assert mon.keys() == []
        assert mon.events  # history preserved

    def test_residual_stream_flattens_in_order(self):
        r1 = ResidualReport(
            slices=(_residual(request=0),),
            requests=(),
            predicted_makespan_ms=1.0,
            actual_makespan_ms=1.0,
            window=0,
        )
        r2 = ResidualReport(
            slices=(_residual(request=1),),
            requests=(),
            predicted_makespan_ms=1.0,
            actual_makespan_ms=1.0,
            window=1,
        )
        flat = residual_stream([r1, r2])
        assert [s.request for s in flat] == [0, 1]


# ------------------------------------------------------- streaming replan


class TestStreamingDrift:
    def _stream(self):
        return _models(STREAM_MODELS) * 3

    def test_clean_stream_never_fires(self):
        planner = StreamingPlanner(
            get_soc("kirin990"), window_size=4, track_accuracy=True
        )
        result = planner.run(self._stream())
        assert result.drift_events == []
        assert result.replans == 0
        assert len(result.residuals) == 3
        assert len(result.plan_fingerprints) == 3
        # Identical windows hit the plan cache: one fingerprint.
        assert len(set(result.plan_fingerprints)) == 1
        for report in result.residuals:
            assert report.overall().mean_abs_residual_ms < 1e-6

    def test_perturbed_stream_fires_and_replans(self):
        planner = StreamingPlanner(
            get_soc("kirin990"),
            window_size=4,
            track_accuracy=True,
            execute=partial(execute_plan_perturbed, factors=PERTURB),
        )
        result = planner.run(self._stream())
        assert result.drift_events, "detector must fire on +30% GPU drift"
        assert any(
            e.scope == "processor" and e.key == "gpu"
            for e in result.drift_events
        )
        assert result.replans >= 1
        # The replan re-plans against a recalibrated SoC: the committed
        # plan changes, so its fingerprint does too.
        assert len(set(result.plan_fingerprints)) >= 2
        fired_window = min(e.window for e in result.drift_events)
        pre = result.plan_fingerprints[fired_window]
        post = result.plan_fingerprints[fired_window + 1]
        assert pre != post
        # Recalibration slowed the modelled GPU down (scale < 1).
        assert planner.recalibration_scales["gpu"] < 1.0
        assert all(
            s == 1.0
            for name, s in planner.recalibration_scales.items()
            if name != "gpu"
        )

    def test_windows_map_onto_residual_reports(self):
        planner = StreamingPlanner(
            get_soc("kirin990"), window_size=4, track_accuracy=True
        )
        result = planner.run(self._stream())
        assert [r.window for r in result.residuals] == [0, 1, 2]
        # Residual join is total within every window.
        for report in result.residuals:
            keys = [(s.request, s.stage) for s in report.slices]
            assert len(keys) == len(set(keys))

    def test_recalibration_can_be_disabled(self):
        planner = StreamingPlanner(
            get_soc("kirin990"),
            window_size=4,
            track_accuracy=True,
            execute=partial(execute_plan_perturbed, factors=PERTURB),
            recalibrate_on_drift=False,
        )
        result = planner.run(self._stream())
        assert result.drift_events
        assert result.replans == 0
        assert all(
            s == 1.0 for s in planner.recalibration_scales.values()
        )

    def test_accuracy_off_by_default(self):
        planner = StreamingPlanner(get_soc("kirin990"), window_size=4)
        result = planner.run(self._stream())
        assert result.residuals == []
        assert result.drift_events == []
        assert planner.drift_monitor is None

    def test_passing_monitor_implies_tracking(self):
        mon = DriftMonitor()
        planner = StreamingPlanner(
            get_soc("kirin990"), window_size=4, drift_monitor=mon
        )
        assert planner.track_accuracy is True
        assert planner.drift_monitor is mon

    def test_invalidate_caches_clears_planner_memoization(self):
        soc = get_soc("kirin990")
        planner = Hetero2PipePlanner(soc)
        planner.plan(_models(STREAM_MODELS))
        assert planner._partition_cache
        planner.invalidate_caches()
        assert not planner._partition_cache


# ------------------------------------------------------- serialization


class TestSerialization:
    def _report(self, perturb=False):
        _, report = _planned()
        predicted = execute_plan(report.plan, record=False)
        actual = (
            execute_plan_perturbed(report.plan, PERTURB, record=False)
            if perturb
            else execute_plan(report.plan, record=False)
        )
        names = [
            STREAM_MODELS[i] if i < len(STREAM_MODELS) else ""
            for i in range(actual.num_requests)
        ]
        return report, join_execution(predicted, actual, model_names=names)

    def test_report_round_trips_through_dict(self):
        _, residual = self._report(perturb=True)
        clone = report_from_dict(json.loads(json.dumps(residual.to_dict())))
        assert clone == residual

    def test_drift_event_round_trips(self):
        event = DriftDetected(
            scope="processor",
            key="gpu",
            detector="ewma",
            statistic=0.27,
            threshold=0.15,
            samples=4,
            window=1,
        )
        clone = event_from_dict(json.loads(json.dumps(event.to_dict())))
        assert clone == event

    def test_telemetry_rows_typed(self):
        _, residual = self._report()
        event = DriftDetected(
            scope="model",
            key="bert",
            detector="cusum",
            statistic=0.6,
            threshold=0.5,
            samples=5,
            window=0,
        )
        rows = telemetry_rows([residual], [event])
        types = {r["type"] for r in rows}
        assert types == {
            "window_summary",
            "slice_residual",
            "request_residual",
            "drift_detected",
        }
        summary = next(r for r in rows if r["type"] == "window_summary")
        assert "makespan_relative_error_frac" in summary

    def test_jsonl_write_read_round_trip(self, tmp_path):
        _, residual = self._report(perturb=True)
        path = tmp_path / "telemetry.jsonl"
        count = write_telemetry_jsonl(str(path), [residual])
        rows = read_telemetry_jsonl(str(path))
        assert len(rows) == count == len(residual.to_rows())

    def test_run_archive_round_trip(self, tmp_path):
        report, residual = self._report(perturb=True)
        actual = execute_plan_perturbed(report.plan, PERTURB, record=False)
        event = DriftDetected(
            scope="processor",
            key="gpu",
            detector="ewma",
            statistic=0.3,
            threshold=0.15,
            samples=3,
            window=0,
        )
        path = tmp_path / "run.json"
        save_run(str(path), actual, residuals=[residual], drift_events=[event])
        loaded, residuals, events = load_run(str(path))
        assert loaded.makespan_ms == pytest.approx(actual.makespan_ms)
        assert len(loaded.records) == len(actual.records)
        assert residuals == [residual]
        assert events == [event]

    def test_run_schema_guard(self):
        doc = run_to_dict(execute_plan(_planned()[1].plan, record=False))
        assert doc["schema"] == RUN_SCHEMA
        bad = dict(doc)
        bad["schema"] = "hetero2pipe.run.v999"
        with pytest.raises(ValueError, match="schema"):
            run_from_dict(bad)

    def test_residual_counter_track_in_chrome_trace(self):
        _, residual = self._report(perturb=True)
        _, report = _planned()
        result = execute_plan(report.plan, trace=True)
        rec = obs.InMemoryRecorder()
        events = json.loads(
            to_chrome_trace(result, recorder=rec, residuals=[residual])
        )["traceEvents"]
        counters = [
            e
            for e in events
            if e.get("ph") == "C"
            and e.get("name") == "prediction_residual_ms"
        ]
        assert len(counters) == residual.num_slices
        assert all("residual_ms" in e["args"] for e in counters)
        ts = [e["ts"] for e in counters]
        assert ts == sorted(ts)

    def test_residual_counter_events_standalone(self):
        _, residual = self._report(perturb=True)
        events = residual_counter_events([residual])
        assert len(events) == residual.num_slices
        assert all(e["cat"] == "accuracy" for e in events)


# ------------------------------------------------------- CLI verbs


class TestAccuracyCli:
    def test_accuracy_human_output(self, capsys):
        assert (
            cli_main(
                ["accuracy", "--models", "resnet50,yolov4,bert,squeezenet"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_accuracy_json_schema(self, capsys):
        assert (
            cli_main(
                [
                    "accuracy",
                    "--models",
                    "resnet50,yolov4,bert,squeezenet",
                    "--perturb",
                    "1.3",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "hetero2pipe.accuracy.v1"
        assert doc["perturbation"] == {"gpu": 1.3}
        assert doc["report"]["slices"]
        assert isinstance(doc["drift_events"], list)

    def test_accuracy_jsonl_artifact(self, tmp_path, capsys):
        path = tmp_path / "acc.jsonl"
        assert (
            cli_main(
                [
                    "accuracy",
                    "--models",
                    "resnet50,yolov4",
                    "--jsonl",
                    str(path),
                ]
            )
            == 0
        )
        rows = read_telemetry_jsonl(str(path))
        assert any(r["type"] == "window_summary" for r in rows)

    def test_drift_json_schema(self, capsys):
        assert (
            cli_main(
                [
                    "drift",
                    "--models",
                    "resnet50,yolov4,bert,squeezenet",
                    "--repeat",
                    "3",
                    "--window",
                    "4",
                    "--perturb",
                    "1.3",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "hetero2pipe.drift.v1"
        assert doc["drift_events"], "perturbed drift run must detect"
        assert doc["replans"] >= 1
        assert len(set(doc["plan_fingerprints"])) >= 2
        summaries = doc["window_summaries"]
        assert len(summaries) == len(doc["plan_fingerprints"])
        assert all(
            "makespan_relative_error_frac" in w for w in summaries
        )

    def test_drift_clean_run_silent(self, capsys):
        assert (
            cli_main(
                [
                    "drift",
                    "--models",
                    "resnet50,yolov4,bert,squeezenet",
                    "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["drift_events"] == []
        assert doc["replans"] == 0
