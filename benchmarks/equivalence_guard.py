"""CI guard: the event engine must reproduce the legacy executor.

``simulate_chains`` was rebuilt as a thin adapter over the
discrete-event engine (:mod:`repro.runtime.engine`); the migration is
safe only while the engine reproduces the pre-engine loop — preserved
verbatim in :mod:`repro.runtime._legacy_executor` — *exactly*.  This
guard plans the full model zoo on every registered SoC and diffs the
two simulators task record by task record:

* identical record streams (request, stage, processor, order);
* ``start_ms`` / ``finish_ms`` / ``request_finish_ms`` / makespan
  within ``TOLERANCE_MS`` (1e-9, the engine's epsilon — in practice
  the divergence is exactly 0.0 on this grid);
* identical trace lengths and memory-pressure counts.

Covered variants per SoC: closed loop, staggered arrivals, contention
off, trace on, and fault injection (first processor offline mid-run).
Any divergence fails the build (the ``executor-equivalence`` CI job).

Run directly (exit code 0/1)::

    PYTHONPATH=src python benchmarks/equivalence_guard.py
"""

import sys

from repro.core.planner import Hetero2PipePlanner
from repro.hardware.soc import SOC_NAMES, get_soc
from repro.models.zoo import MODEL_NAMES, get_model
from repro.runtime._legacy_executor import legacy_simulate_chains
from repro.runtime.executor import plan_to_chains, simulate_chains

TOLERANCE_MS = 1e-9


def _variants(plan):
    """(label, kwargs) simulation variants to diff for one plan."""
    n = len(plan.assignments)
    staggered = [12.5 * i for i in range(n)]
    first_proc = plan.processors[0].name
    return [
        ("closed-loop", {}),
        ("staggered-arrivals", {"arrivals": staggered}),
        ("no-contention", {"with_contention": False}),
        ("traced", {"trace": True}),
        ("fault-injected", {"processor_offline_ms": {first_proc: 15.0}}),
    ]


def _diff(engine, legacy):
    """Worst divergence between two results; None on a structural diff."""
    if len(engine.records) != len(legacy.records):
        return None
    keys_e = [(r.request, r.stage, r.processor) for r in engine.records]
    keys_l = [(r.request, r.stage, r.processor) for r in legacy.records]
    if keys_e != keys_l:
        return None
    if len(engine.trace) != len(legacy.trace):
        return None
    if engine.memory_pressure_events != legacy.memory_pressure_events:
        return None
    worst = abs(engine.makespan_ms - legacy.makespan_ms)
    for rec_e, rec_l in zip(engine.records, legacy.records):
        worst = max(
            worst,
            abs(rec_e.start_ms - rec_l.start_ms),
            abs(rec_e.finish_ms - rec_l.finish_ms),
        )
    for fin_e, fin_l in zip(engine.request_finish_ms, legacy.request_finish_ms):
        worst = max(worst, abs(fin_e - fin_l))
    return worst


def main():
    failures = []
    worst_overall = 0.0
    cases = 0
    models = [get_model(name) for name in MODEL_NAMES]
    for soc_name in SOC_NAMES:
        soc = get_soc(soc_name)
        plan = Hetero2PipePlanner(soc).plan(models).plan
        for label, kwargs in _variants(plan):
            engine = simulate_chains(
                soc, plan_to_chains(plan), record=False, **kwargs
            )
            legacy = legacy_simulate_chains(
                soc, plan_to_chains(plan), **kwargs
            )
            worst = _diff(engine, legacy)
            cases += 1
            if worst is None:
                failures.append(f"{soc_name}/{label}: structural divergence")
                print(f"  {soc_name:15s} {label:20s}: STRUCTURAL DIVERGENCE")
                continue
            worst_overall = max(worst_overall, worst)
            verdict = "ok" if worst <= TOLERANCE_MS else "DIVERGED"
            if worst > TOLERANCE_MS:
                failures.append(f"{soc_name}/{label}: {worst:.3g} ms")
            print(
                f"  {soc_name:15s} {label:20s}: "
                f"max |delta| {worst:.3g} ms — {verdict}"
            )
    print(
        f"{cases} case(s), {len(MODEL_NAMES)} models/SoC, "
        f"worst divergence {worst_overall:.3g} ms "
        f"(tolerance {TOLERANCE_MS:g} ms)"
    )
    if failures:
        print("FAIL: engine diverged from the legacy executor:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: event engine reproduces the legacy executor on the full grid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
