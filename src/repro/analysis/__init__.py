"""Regression and statistics utilities."""

from .regression import RidgeModel, fit_ridge
from .stats import LinearFit, geometric_mean, linear_fit, summarize

__all__ = [
    "RidgeModel",
    "fit_ridge",
    "LinearFit",
    "geometric_mean",
    "linear_fit",
    "summarize",
]
