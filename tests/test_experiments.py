"""Tests of the experiment harness: shapes the paper's figures must show."""

import pytest

from repro.experiments import (
    fig1_processor_latency,
    fig2_motivation,
    fig9_memory,
    fig10_intracluster,
    fig12_bubble_latency,
    fig13_batching,
    searchspace,
    table1_comparison,
    table2_slowdown,
)
from repro.experiments.common import format_table, geomean
from repro.hardware.soc import get_soc


class TestCommon:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_invalid(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])


class TestFig1:
    def test_npu_errors_exactly_for_yolo_and_bert(self):
        rows = fig1_processor_latency.run()
        errored = {
            r.model for r in rows if r.latency_ms.get("npu") is None
        }
        assert errored == {"yolov4", "bert"}

    def test_npu_fastest_when_supported(self):
        for row in fig1_processor_latency.run():
            npu = row.latency_ms.get("npu")
            if npu is None:
                continue
            others = [
                v
                for k, v in row.latency_ms.items()
                if k != "npu" and v is not None
            ]
            assert npu < min(others)

    def test_small_cluster_slowest(self):
        for row in fig1_processor_latency.run():
            small = row.latency_ms["cpu_small"]
            big = row.latency_ms["cpu_big"]
            assert small > 2 * big

    def test_render_marks_errors(self):
        text = fig1_processor_latency.main()
        assert "ERR" in text
        assert "yolov4" in text


class TestFig2:
    def test_serial_queueing_accumulates(self):
        comparison = fig2_motivation.run_queueing()
        serial = comparison.serial.queueing_delay_ms
        hetero = comparison.heterogeneous.queueing_delay_ms
        # The serial backlog grows; the tail request waits much longer
        # than the head.
        assert serial[-1] > serial[0] + 100.0
        assert (
            comparison.heterogeneous.mean_queueing_delay_ms
            < comparison.serial.mean_queueing_delay_ms
        )

    def test_demand_ranking_has_lightweight_outlier(self):
        rows = fig2_motivation.run_demands()
        order = [r.model for r in rows]
        # Observation 3: squeezenet ranks above the big vit.
        assert order.index("squeezenet") < order.index("vit")

    def test_demand_rows_sorted(self):
        rows = fig2_motivation.run_demands()
        intensities = [r.intensity for r in rows]
        assert intensities == sorted(intensities, reverse=True)


class TestTable2:
    def test_slowdowns_in_published_band(self):
        rows = table2_slowdown.run()
        for row in rows:
            assert 0.0 < row.slowdown_pct < 40.0
            assert row.co_ms > row.solo_ms

    def test_squeezenet_pair_hurts_bert_more_than_vit_pair(self):
        rows = table2_slowdown.run()
        by_pair = {}
        for i in range(0, len(rows), 2):
            by_pair[rows[i].model] = rows[i + 1].slowdown_pct
        assert by_pair["squeezenet"] > by_pair["vit"]


class TestFig9:
    def test_traces_reproduce_paper_shape(self):
        traces = fig9_memory.run()
        by_label = {t.label: t for t in traces}
        npu_only = by_label["npu_only_lightweight"]
        large = by_label["three_stage_large"]
        soc = get_soc("kirin990")
        # NPU-only run never needs the max memory state...
        assert npu_only.max_freq_mhz < soc.memory_freq_mhz[-1]
        # ...while CPU/GPU pipelines pin it there.
        assert large.max_freq_mhz == soc.memory_freq_mhz[-1]
        # Larger pipelines drain more of the ~2.5 GB headroom.
        assert large.min_available_bytes < npu_only.min_available_bytes
        assert large.min_available_bytes < 1.6e9

    def test_series_accessors(self):
        trace = fig9_memory.run()[0]
        freq = trace.frequency_series()
        avail = trace.available_series()
        assert len(freq) == len(avail) == len(trace.trace)


class TestFig10:
    def test_intra_cluster_high_on_big_cores(self):
        rows = fig10_intracluster.run()
        big_even = [r for r in rows if r.label == "BB-BB"][0]
        assert big_even.victim_slowdown_pct > 40.0

    def test_minority_side_suffers_more(self):
        rows = fig10_intracluster.run()
        even = [r for r in rows if r.label == "BB-BB"][0]
        skew = [r for r in rows if r.label == "BBB-B"][0]
        # In BBB-B the single-core partner (vgg16) is hit harder than in
        # the even split.
        assert skew.partner_slowdown_pct > even.partner_slowdown_pct


class TestFig12:
    def test_bubble_latency_linear(self):
        results = fig12_bubble_latency.run(num_plans=40)
        assert len(results) == 2
        for result in results:
            assert result.fit.slope > 0
            assert result.fit.r_squared > 0.5, (
                f"{result.label}: r^2={result.fit.r_squared:.2f}"
            )


class TestFig13:
    def test_growth_rate_flat_per_processor(self):
        rows = fig13_batching.run()
        assert rows, "no batching rows produced"
        for row in rows:
            spread = max(row.growth_rates) - min(row.growth_rates)
            assert spread <= 0.4 * max(row.growth_rates)

    def test_npu_cheapest_marginal(self):
        rows = fig13_batching.run()
        by_proc = {
            (r.model, r.processor): r.marginal_ms for r in rows
        }
        assert by_proc[("mobilenetv2", "npu")] < by_proc[
            ("mobilenetv2", "cpu_big")
        ]


class TestTable1:
    def test_only_h2p_has_all_capabilities(self):
        rows = table1_comparison.run()
        full = [
            r
            for r in rows
            if r.multi_dnn and r.dnn_heterogeneity and r.pipeline and r.contention
        ]
        assert [r.name for r in full] == ["Hetero2Pipe"]

    def test_implemented_schemes(self):
        implemented = {r.name for r in table1_comparison.run() if r.implemented}
        assert implemented == {"Pipe-it", "Band", "uLayer", "Hetero2Pipe"}


class TestSearchSpace:
    def test_compositions(self):
        assert searchspace.compositions(4, 2) == 3
        assert searchspace.compositions(4, 1) == 1
        assert searchspace.compositions(4, 5) == 0
        assert searchspace.compositions(0, 0) == 1

    def test_pipeline_count_bounds(self):
        counts = searchspace.pipeline_count()
        assert min(counts) >= 2
        assert max(counts) <= 10
        total = sum(counts.values())
        # Same order of magnitude as the paper's 449.
        assert 250 <= total <= 600

    def test_eq12_near_paper_count(self):
        # The printed formula evaluates within ~2 % of the paper's 449.
        assert abs(searchspace.pipeline_count_eq12() - 449) <= 20

    def test_split_count_grows_with_layers(self):
        small = searchspace.split_point_count(10)
        large = searchspace.split_point_count(28)
        assert large > small > 0

    def test_split_count_requires_two_layers(self):
        with pytest.raises(ValueError):
            searchspace.split_point_count(1)

    def test_mobilenet_splits_combinatorially_large(self):
        summary = searchspace.run()
        assert summary.mobilenet_splits > 1e7
