"""Causal latency attribution over the engine's exact blame data.

The discrete-event engine (:mod:`repro.runtime.engine`) records, per
slice, a ``TaskCausality`` row: when the slice became ready, what
enabled its start, and an integrated wait breakdown.  This module is
the pure-analysis consumer — it answers the operator questions the
streaming SLO layer (PR 9) cannot:

* :func:`blame_requests` — decompose each request's end-to-end latency
  into processor-busy wait, residency wait, scheduler residual,
  preemption time, solo compute and contention inflation.  The
  components sum to the latency with zero residue by construction
  (``benchmarks/blame_guard.py`` enforces ≤ 1e-9 across the SoCs).
* :func:`extract_critical_path` — walk the recorded ``enabled_by``
  dependency edges backward from the makespan-defining slice.  Unlike
  the deprecated timestamp-coincidence heuristic
  (:func:`repro.runtime.replay.critical_chain`), the walk follows the
  *actual* enablement chain, so gaps and durations tile ``[0,
  makespan]`` exactly.
* :func:`compute_slack` — CPM-style schedule slack per slice over the
  recorded DAG (chain precedence + same-processor occupancy order +
  enablement edges); critical slices have zero slack.
* :func:`aggregate_blame` — where the time went, grouped by processor,
  model, stage and directional co-run pair (the engine's equal-split
  inflation attribution; Eq. 1's slowdown is not decomposable per
  co-runner, so the split is a documented convention).

Like the rest of ``repro.obs`` this module is a data-only leaf: results
and causality rows are duck-typed (anything shaped like
``ExecutionResult`` / ``TaskCausality``), so nothing here imports
``runtime``.  The what-if counterfactuals that *re-run* the engine live
in :mod:`repro.obs.whatif`, which sits above ``runtime`` and is
deliberately not re-exported from ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps obs a leaf
    from ..runtime.engine import ExecutionResult, TaskCausality

#: Enabling-cause vocabulary (mirrors ``repro.runtime.engine.CAUSE_*``;
#: duplicated as literals so the leaf stays import-free, like the event
#: kinds in :mod:`repro.obs.timeline`).
CAUSE_ARRIVAL = "arrival"
CAUSE_PREDECESSOR = "predecessor"
CAUSE_PROCESSOR_FREED = "processor_freed"
CAUSE_RESIDENCY_DRAIN = "residency_drain"
CAUSE_FORCED = "forced"
CAUSE_UNSTARTED = "unstarted"

#: Request outcome vocabulary (``RequestBlame.status``).
STATUS_COMPLETED = "completed"
STATUS_DROPPED = "dropped"
STATUS_CANCELLED = "cancelled"

#: The component keys of the exact latency decomposition, in reporting
#: order.  ``sum(components) == latency_ms`` within float tolerance.
BLAME_COMPONENTS = (
    "processor_busy_wait_ms",
    "residency_wait_ms",
    "scheduler_wait_ms",
    "preempted_ms",
    "solo_ms",
    "contention_ms",
)


@dataclass(frozen=True)
class RequestBlame:
    """One request's exact end-to-end latency decomposition.

    ``solo_ms`` is the solo compute actually *executed* (truncated
    slices of a cancelled request count only their progress) and
    ``contention_ms`` the co-execution inflation on top of it;
    ``scheduler_wait_ms`` is the residual bucket absorbing sub-epsilon
    event-pop slivers.  ``first_stage_wait_ms`` is the share of the
    wait spent before the first slice started — the arrival-queue wait
    of the classic decomposition (predecessor waits are structurally
    zero: a slice becomes ready the instant its predecessor departs).
    """

    request: int
    model: str
    status: str
    arrival_ms: float
    finish_ms: float
    latency_ms: float
    processor_busy_wait_ms: float
    residency_wait_ms: float
    scheduler_wait_ms: float
    preempted_ms: float
    solo_ms: float
    contention_ms: float
    first_stage_wait_ms: float
    slices: int

    @property
    def components_total_ms(self) -> float:
        return (
            self.processor_busy_wait_ms
            + self.residency_wait_ms
            + self.scheduler_wait_ms
            + self.preempted_ms
            + self.solo_ms
            + self.contention_ms
        )

    @property
    def residue_ms(self) -> float:
        """Accounting error: zero (to float tolerance) by construction."""
        return self.latency_ms - self.components_total_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "request": self.request,
            "model": self.model,
            "status": self.status,
            "arrival_ms": self.arrival_ms,
            "finish_ms": self.finish_ms,
            "latency_ms": self.latency_ms,
            "processor_busy_wait_ms": self.processor_busy_wait_ms,
            "residency_wait_ms": self.residency_wait_ms,
            "scheduler_wait_ms": self.scheduler_wait_ms,
            "preempted_ms": self.preempted_ms,
            "solo_ms": self.solo_ms,
            "contention_ms": self.contention_ms,
            "first_stage_wait_ms": self.first_stage_wait_ms,
            "slices": self.slices,
            "residue_ms": self.residue_ms,
        }


def _request_status(result: "ExecutionResult", request: int) -> str:
    if request in set(result.dropped_requests):
        return STATUS_DROPPED
    if request in set(result.cancelled_requests):
        return STATUS_CANCELLED
    return STATUS_COMPLETED


def blame_requests(
    result: "ExecutionResult",
    request_models: Optional[Sequence[str]] = None,
) -> List[RequestBlame]:
    """Fold causality rows into per-request latency decompositions.

    Args:
        result: An engine result executed with causality tracking on.
        request_models: Optional per-request model names (defaults to
            ``request<i>``).

    Raises:
        ValueError: when the result carries no causality data (engine
            run with ``track_causality=False`` or a v1 archive).
    """
    if not result.causality and result.records:
        raise ValueError(
            "result has no causality data: run the engine with "
            "track_causality=True (v1 archives predate causality)"
        )
    by_request: Dict[int, List["TaskCausality"]] = {}
    for row in result.causality:
        by_request.setdefault(row.request, []).append(row)
    out: List[RequestBlame] = []
    for request in range(result.num_requests):
        rows = sorted(by_request.get(request, []), key=lambda r: r.index)
        name = (
            request_models[request]
            if request_models is not None and request < len(request_models)
            else f"request{request}"
        )
        first_wait = 0.0
        if rows:
            first = rows[0]
            first_wait = (
                first.processor_busy_wait_ms
                + first.residency_wait_ms
                + first.scheduler_wait_ms
            )
        out.append(
            RequestBlame(
                request=request,
                model=name,
                status=_request_status(result, request),
                arrival_ms=result.request_arrival_ms[request],
                finish_ms=result.request_finish_ms[request],
                latency_ms=(
                    result.request_finish_ms[request]
                    - result.request_arrival_ms[request]
                ),
                processor_busy_wait_ms=sum(
                    r.processor_busy_wait_ms for r in rows
                ),
                residency_wait_ms=sum(r.residency_wait_ms for r in rows),
                scheduler_wait_ms=sum(r.scheduler_wait_ms for r in rows),
                preempted_ms=sum(r.preempted_ms for r in rows),
                solo_ms=sum(r.executed_solo_ms for r in rows),
                contention_ms=sum(r.inflation_ms for r in rows),
                first_stage_wait_ms=first_wait,
                slices=len(rows),
            )
        )
    return out


# ------------------------------------------------------- critical path


@dataclass(frozen=True)
class PathSegment:
    """One slice on the critical path, plus the gap that precedes it.

    ``gap_ms`` covers ``[previous segment's finish, this slice's
    start]`` (for the earliest segment: from t=0, i.e. the arrival
    wait of the path's root request) and ``gap_cause`` labels it with
    the slice's enabling cause.  Gaps are ~0 when the enabler is the
    binding constraint (the slice starts the instant it is enabled)
    and grow only across forced starts or unstarted truncations.
    """

    request: int
    stage: int
    index: int
    processor: str
    gap_ms: float
    gap_cause: str
    start_ms: Optional[float]
    finish_ms: float
    duration_ms: float
    wait_ms: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "request": self.request,
            "stage": self.stage,
            "index": self.index,
            "processor": self.processor,
            "gap_ms": self.gap_ms,
            "gap_cause": self.gap_cause,
            "start_ms": self.start_ms,
            "finish_ms": self.finish_ms,
            "duration_ms": self.duration_ms,
            "wait_ms": self.wait_ms,
        }


@dataclass(frozen=True)
class CriticalPath:
    """The exact enablement chain ending at the makespan-defining slice.

    Segments are time-ordered; gaps and durations tile ``[0,
    makespan_ms]``, so ``total_gap_ms + total_duration_ms ==
    makespan_ms`` within float tolerance (:attr:`residue_ms`) — the
    identity the blame guard enforces.
    """

    segments: Tuple[PathSegment, ...]
    makespan_ms: float

    @property
    def total_gap_ms(self) -> float:
        return sum(s.gap_ms for s in self.segments)

    @property
    def total_duration_ms(self) -> float:
        return sum(s.duration_ms for s in self.segments)

    @property
    def residue_ms(self) -> float:
        return self.makespan_ms - self.total_gap_ms - self.total_duration_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "makespan_ms": self.makespan_ms,
            "total_gap_ms": self.total_gap_ms,
            "total_duration_ms": self.total_duration_ms,
            "residue_ms": self.residue_ms,
            "segments": [s.to_dict() for s in self.segments],
        }


def _segment_anchor(row: "TaskCausality") -> float:
    """The instant a causality row's on-path interval begins."""
    return row.start_ms if row.start_ms is not None else row.finish_ms


def extract_critical_path(result: "ExecutionResult") -> CriticalPath:
    """Walk the recorded enablement DAG back from the last finisher.

    From the slice whose finish defines the makespan, each step follows
    ``enabled_by`` (the task whose completion triggered the start); a
    slice started with no waiting falls back to its chain predecessor.
    The walk terminates at a slice enabled by its request's arrival (or
    a forced start with no predecessor), whose gap from t=0 becomes the
    path's initial arrival segment.

    Returns an empty path for a result with no causality rows.
    """
    rows = {(row.request, row.index): row for row in result.causality}
    if not rows:
        return CriticalPath(segments=(), makespan_ms=result.makespan_ms)
    cur = max(result.causality, key=lambda r: r.finish_ms)
    chain: List["TaskCausality"] = []
    visited = set()
    while True:
        key = (cur.request, cur.index)
        if key in visited:
            break  # defensive: malformed enablement data
        visited.add(key)
        chain.append(cur)
        prev_key = cur.enabled_by
        if prev_key is None and cur.index > 0:
            prev_key = (cur.request, cur.index - 1)
        if prev_key is None:
            break
        prev = rows.get(prev_key)
        if prev is None or prev.finish_ms > _segment_anchor(cur) + 1e-9:
            break  # dangling reference (e.g. preemption-vacated start)
        cur = prev
    chain.reverse()
    segments: List[PathSegment] = []
    prev_finish = 0.0
    for row in chain:
        anchor = _segment_anchor(row)
        segments.append(
            PathSegment(
                request=row.request,
                stage=row.stage,
                index=row.index,
                processor=row.processor,
                gap_ms=anchor - prev_finish,
                gap_cause=row.cause,
                start_ms=row.start_ms,
                finish_ms=row.finish_ms,
                duration_ms=row.duration_ms,
                wait_ms=row.wait_ms,
            )
        )
        prev_finish = row.finish_ms
    return CriticalPath(
        segments=tuple(segments), makespan_ms=result.makespan_ms
    )


# --------------------------------------------------------------- slack


def compute_slack(result: "ExecutionResult") -> Dict[Tuple[int, int], float]:
    """CPM-style schedule slack per slice, keyed by (request, index).

    Edges of the recorded DAG: chain precedence, same-processor
    occupancy order (consecutive starts on one unit), and the recorded
    ``enabled_by`` enablements.  A slice's slack is how far its finish
    could slip before some successor's start — transitively, the
    makespan — would move; slices on the critical path have ~0 slack.
    """
    rows = {(row.request, row.index): row for row in result.causality}
    succs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

    def add_edge(src: Tuple[int, int], dst: Tuple[int, int]) -> None:
        if src in rows and dst in rows and src != dst:
            succs.setdefault(src, []).append(dst)

    for key, row in rows.items():
        if (row.request, row.index + 1) in rows:
            add_edge(key, (row.request, row.index + 1))
        if row.enabled_by is not None:
            add_edge(row.enabled_by, key)
    by_proc: Dict[str, List["TaskCausality"]] = {}
    for row in result.causality:
        if row.start_ms is not None:
            by_proc.setdefault(row.processor, []).append(row)
    for occupants in by_proc.values():
        occupants.sort(key=lambda r: (r.start_ms, r.finish_ms))
        for a, b in zip(occupants, occupants[1:]):
            add_edge((a.request, a.index), (b.request, b.index))

    slack: Dict[Tuple[int, int], float] = {}
    for row in sorted(
        result.causality, key=lambda r: r.finish_ms, reverse=True
    ):
        key = (row.request, row.index)
        best = result.makespan_ms - row.finish_ms
        for succ_key in succs.get(key, ()):
            succ = rows[succ_key]
            gap = _segment_anchor(succ) - row.finish_ms
            best = min(best, gap + slack[succ_key])
        slack[key] = best
    return slack


# ---------------------------------------------------------- aggregates


def _component_row() -> Dict[str, float]:
    return {
        "processor_busy_wait_ms": 0.0,
        "residency_wait_ms": 0.0,
        "scheduler_wait_ms": 0.0,
        "preempted_ms": 0.0,
        "solo_ms": 0.0,
        "contention_ms": 0.0,
    }


def _accumulate(row: Dict[str, float], c: "TaskCausality") -> None:
    row["processor_busy_wait_ms"] += c.processor_busy_wait_ms
    row["residency_wait_ms"] += c.residency_wait_ms
    row["scheduler_wait_ms"] += c.scheduler_wait_ms
    row["preempted_ms"] += c.preempted_ms
    row["solo_ms"] += c.executed_solo_ms
    row["contention_ms"] += c.inflation_ms


def _ranked(table: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    def total(row: Dict[str, float]) -> float:
        return sum(row.values())

    return dict(
        sorted(table.items(), key=lambda kv: total(kv[1]), reverse=True)
    )


def aggregate_blame(
    result: "ExecutionResult",
    request_models: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Aggregate blame tables: where the run's time actually went.

    Returns a JSON-ready dict with four tables, each ranked by total
    attributed time, descending:

    * ``by_processor`` — components of slices bound to each unit;
    * ``by_model`` — components grouped by the request's model name;
    * ``by_stage`` — components grouped by pipeline stage index;
    * ``corun_pairs`` — the engine's directional co-run inflation
      matrix: inflation suffered *by* the first processor *due to*
      co-running with the second.
    """
    by_processor: Dict[str, Dict[str, float]] = {}
    by_model: Dict[str, Dict[str, float]] = {}
    by_stage: Dict[str, Dict[str, float]] = {}
    for c in result.causality:
        _accumulate(by_processor.setdefault(c.processor, _component_row()), c)
        name = (
            request_models[c.request]
            if request_models is not None and c.request < len(request_models)
            else f"request{c.request}"
        )
        _accumulate(by_model.setdefault(name, _component_row()), c)
        _accumulate(
            by_stage.setdefault(f"stage{c.stage}", _component_row()), c
        )
    corun: Mapping[Tuple[str, str], float] = getattr(
        result, "corun_inflation_ms", {}
    )
    pairs = [
        {
            "processor": a,
            "co_runner": b,
            "inflation_ms": inflation,
        }
        for (a, b), inflation in sorted(
            corun.items(), key=lambda kv: kv[1], reverse=True
        )
    ]
    return {
        "by_processor": _ranked(by_processor),
        "by_model": _ranked(by_model),
        "by_stage": _ranked(by_stage),
        "corun_pairs": pairs,
    }
