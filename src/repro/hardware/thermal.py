"""Thermal throttling model (Appendix B of the paper).

Continuous inference drives the CPU above 60 degC with visible frequency
throttling, while the GPU/NPU stay under ~50 degC.  The paper sidesteps
transient effects by measuring at thermal steady state; we model exactly
that steady state: a first-order thermal RC whose equilibrium temperature
determines a sustained-frequency scale factor per processor.
"""

from __future__ import annotations

from dataclasses import dataclass

from .processor import ProcessorKind

#: Ambient / idle temperature of the SoC package (degC).
AMBIENT_C = 30.0

#: Per-kind thermal parameters: (heating per unit utilization at full load
#: in degC, throttle onset temperature in degC, throttle slope per degC).
_THERMAL_PARAMS = {
    ProcessorKind.CPU_BIG: (42.0, 60.0, 0.020),
    ProcessorKind.CPU_SMALL: (22.0, 65.0, 0.012),
    ProcessorKind.GPU: (18.0, 70.0, 0.010),
    ProcessorKind.NPU: (15.0, 75.0, 0.008),
}

#: Never throttle below this fraction of nominal frequency.
_MIN_SCALE = 0.60


@dataclass(frozen=True)
class ThermalState:
    """Steady-state thermal condition of one processor."""

    kind: ProcessorKind
    temperature_c: float
    frequency_scale: float


def steady_state(kind: ProcessorKind, utilization: float) -> ThermalState:
    """Steady-state temperature and frequency scale at a given utilization.

    Args:
        kind: Processor class.
        utilization: Sustained busy fraction in [0, 1].

    Returns:
        The equilibrium :class:`ThermalState`.  CPU Big at full load
        settles above 60 degC with a ~15 % sustained-frequency loss;
        GPU/NPU stay below throttle onset — matching Fig. 11's narrative.

    Raises:
        ValueError: if utilization is outside [0, 1].
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    heating, onset, slope = _THERMAL_PARAMS[kind]
    temperature = AMBIENT_C + heating * utilization
    overshoot = max(0.0, temperature - onset)
    scale = max(_MIN_SCALE, 1.0 - slope * overshoot)
    return ThermalState(kind=kind, temperature_c=temperature, frequency_scale=scale)


def sustained_frequency_scale(kind: ProcessorKind, utilization: float = 1.0) -> float:
    """Shortcut: the frequency scale of :func:`steady_state`."""
    return steady_state(kind, utilization).frequency_scale
