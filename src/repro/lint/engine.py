"""AST rule engine: rule registry, file walking, suppression, findings.

A rule is a subclass of :class:`LintRule` registered via
:func:`register_rule`.  The engine parses each ``.py`` file once, hands
the tree to every enabled rule, and filters the produced findings
through per-line ``# lint: disable=CODE`` pragmas, so a deliberate
exception is visible at the offending line forever.

Suppression syntax (checked against the finding's line)::

    t0 = time.time()  # lint: disable=H2P101
    x = a + b         # lint: disable=H2P102,H2P105
    y = c * d         # lint: disable=all

Design notes:

* rules are pure functions of ``(tree, context)`` — no global state, so
  the engine can lint fixture trees in tests without touching disk;
* the *relative module path* is computed against a configurable source
  root, which lets tests lint synthetic package layouts under a tmp
  directory (the layering rule needs real-looking module names).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

#: ``# lint: disable=H2P101`` or ``# lint: disable=H2P101,H2P102`` or
#: ``# lint: disable=all`` — anywhere in the line's trailing comment.
_PRAGMA = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may consult besides the tree itself.

    Attributes:
        path: File path as reported in findings.
        module: Dotted module name relative to the source root
            (``repro.runtime.metrics``); empty when the file lies
            outside the root.
        source_lines: Raw source, for pragma checks and diagnostics.
    """

    path: str
    module: str
    source_lines: Sequence[str] = field(default_factory=tuple)

    @property
    def package_parts(self) -> Sequence[str]:
        """Module path split on dots (``("repro", "runtime", "metrics")``)."""
        return tuple(self.module.split(".")) if self.module else ()


class LintRule:
    """Base class for AST rules.

    Subclasses set :attr:`code`, :attr:`name` and :attr:`rationale`
    (shown by ``--list-rules`` and the docs) and implement
    :meth:`check`.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            code=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


#: code -> rule instance, in registration order.
RULE_REGISTRY: Dict[str, LintRule] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: instantiate and register a rule by its code."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code!r}")
    RULE_REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[LintRule]:
    return list(RULE_REGISTRY.values())


def get_rule(code: str) -> LintRule:
    try:
        return RULE_REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; known: {sorted(RULE_REGISTRY)}"
        ) from None


def _suppressed_codes(line: str) -> Optional[Sequence[str]]:
    match = _PRAGMA.search(line)
    if match is None:
        return None
    return tuple(c.strip() for c in match.group(1).split(",") if c.strip())


def apply_suppressions(
    findings: Iterable[Finding], source_lines: Sequence[str]
) -> List[Finding]:
    """Drop findings whose line carries a matching disable pragma."""
    kept: List[Finding] = []
    for f in findings:
        if 1 <= f.line <= len(source_lines):
            codes = _suppressed_codes(source_lines[f.line - 1])
            if codes is not None and ("all" in codes or f.code in codes):
                continue
        kept.append(f)
    return kept


def module_name_for(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` under ``src_root`` ('' if outside).

    ``src_root/repro/runtime/metrics.py`` -> ``repro.runtime.metrics``;
    package ``__init__.py`` files map to the package itself.
    """
    try:
        rel = path.resolve().relative_to(src_root.resolve())
    except ValueError:
        return ""
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def lint_source(
    source: str,
    path: str,
    module: str,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one in-memory source string (the test-friendly core)."""
    active = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                code="H2P000",
                message=f"syntax error: {error.msg}",
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
            )
        ]
    lines = source.splitlines()
    ctx = LintContext(path=path, module=module, source_lines=lines)
    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.check(tree, ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return apply_suppressions(findings, lines)


def lint_file(
    path: Path,
    src_root: Path,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        path=str(path),
        module=module_name_for(path, src_root),
        rules=rules,
    )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen = set()
    collected: List[Path] = []
    for p in paths:
        if p.is_dir():
            collected.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            collected.append(p)
    for p in collected:
        key = p.resolve()
        if key not in seen:
            seen.add(key)
            yield p


def lint_paths(
    paths: Sequence[Path],
    src_root: Path,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by location."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, src_root, rules))
    return findings
