"""Design-claim ablation benchmarks.

* Two-step decomposition vs the contention-coupled single-step DP
  (the paper's Sec. I claim that one-step formulations "cannot fully
  capture the dual heterogeneity").
* Thermal-feedback planning vs the paper's worst-case steady-state
  assumption (Appendix B extension).
* Fault resilience: how gracefully schedules degrade when the NPU goes
  offline mid-run.
"""

from repro.core.partition_coupled import plan_coupled
from repro.core.planner import Hetero2PipePlanner
from repro.core.thermal_feedback import plan_with_thermal_feedback
from repro.experiments.common import geomean
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler
from repro.runtime.executor import execute_plan, plan_to_chains, simulate_chains
from repro.workloads.generator import sample_combinations


def test_bench_two_step_vs_coupled(run_once):
    soc = get_soc("kirin990")
    profiler = SocProfiler(soc)
    planner = Hetero2PipePlanner(soc)

    def sweep():
        rows = []
        for spec in sample_combinations(count=10, seed=3):
            models = spec.models()
            coupled = execute_plan(
                plan_coupled(soc, models, profiler)
            ).makespan_ms
            h2p = execute_plan(planner.plan(models).plan).makespan_ms
            rows.append((coupled, h2p))
        return rows

    rows = run_once(sweep)
    ratios = [coupled / h2p for coupled, h2p in rows]
    print("\ncoupled_ms  two_step_ms  ratio")
    for (coupled, h2p), ratio in zip(rows, ratios):
        print(f"{coupled:10.1f}  {h2p:11.1f}  {ratio:5.3f}")
    print(f"geomean coupled/two-step: {geomean(ratios):.3f}")
    # The two-step decomposition is never meaningfully worse...
    assert min(ratios) > 0.98
    # ...and wins on average.
    assert geomean(ratios) >= 1.0


def test_bench_thermal_feedback(run_once):
    soc = get_soc("kirin990")
    models = [get_model(n) for n in ("yolov4", "bert", "squeezenet", "vit")]

    def compare():
        baseline = execute_plan(
            Hetero2PipePlanner(soc).plan(models).plan
        ).makespan_ms
        feedback = plan_with_thermal_feedback(soc, models, max_iterations=3)
        return baseline, feedback

    baseline, feedback = run_once(compare)
    print(f"\nsteady-state-profiled plan : {baseline:8.1f} ms")
    for i, it in enumerate(feedback.iterations):
        print(f"feedback iteration {i}       : {it.makespan_ms:8.1f} ms "
              f"(cpu_big scale {it.scales['cpu_big']:.2f})")
    # Utilization-aware thermal scales recover throughput on the CPU.
    assert feedback.result.makespan_ms <= baseline * 1.02
    assert feedback.final_scales["cpu_big"] >= feedback.iterations[0].scales[
        "cpu_big"
    ]


def test_bench_fault_degradation(run_once):
    soc = get_soc("kirin990")
    planner = Hetero2PipePlanner(soc)
    models = [
        get_model(n) for n in ("vit", "resnet50", "googlenet", "mobilenetv2")
    ]
    plan = planner.plan(models).plan

    def sweep():
        healthy = simulate_chains(soc, plan_to_chains(plan)).makespan_ms
        npu_dead = simulate_chains(
            soc, plan_to_chains(plan), processor_offline_ms={"npu": 0.0}
        ).makespan_ms
        npu_dies_mid = simulate_chains(
            soc,
            plan_to_chains(plan),
            processor_offline_ms={"npu": healthy / 4},
        ).makespan_ms
        return healthy, npu_dead, npu_dies_mid

    healthy, npu_dead, npu_mid = run_once(sweep)
    print(f"\nhealthy            : {healthy:8.1f} ms")
    print(f"NPU offline at t=0 : {npu_dead:8.1f} ms "
          f"({npu_dead / healthy:.1f}x)")
    print(f"NPU dies mid-run   : {npu_mid:8.1f} ms "
          f"({npu_mid / healthy:.1f}x)")
    # Losing the NPU costs real time but execution still completes,
    # and a mid-run fault hurts no more than losing it up front.
    assert npu_dead > healthy
    assert healthy <= npu_mid <= npu_dead * 1.2
