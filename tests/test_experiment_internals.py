"""Deeper unit coverage of experiment-module internals and renders,
plus a fuzz of the boundary-move machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import partition_model
from repro.core.plan import StageAssignment
from repro.core.stealing import move_boundary_layer
from repro.experiments import (
    ext_energy,
    ext_scaling,
    fig1_processor_latency,
    fig2_motivation,
    fig7_overall,
    fig9_memory,
    fig10_intracluster,
    fig12_bubble_latency,
    fig13_batching,
    table2_slowdown,
)
from repro.hardware.soc import get_soc
from repro.models.zoo import MODEL_NAMES, get_model
from repro.profiling.profiler import SocProfiler
from repro.workloads.generator import WorkloadSpec, sample_combinations


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


class TestFig7Internals:
    @pytest.fixture(scope="class")
    def summary(self, kirin):
        summaries = fig7_overall.run(
            soc_names=("kirin990",), num_combinations=4, seed=55
        )
        return summaries[0]

    def test_mean_metrics(self, summary):
        for scheme in fig7_overall.SCHEMES:
            assert summary.mean_latency_ms(scheme) > 0
            assert summary.mean_throughput(scheme) > 0

    def test_speedup_tuple_ordering(self, summary):
        gm, hi, lo = summary.speedup_over("mnn")
        assert lo <= gm <= hi

    def test_band_scatter_fraction(self, summary):
        scatter_all = summary.band_scatter(fraction=1.0)
        scatter_third = summary.band_scatter(fraction=0.34)
        assert len(scatter_all) == len(summary.results)
        assert len(scatter_third) <= len(scatter_all)

    def test_render_contains_all_schemes(self, summary):
        text = fig7_overall.render([summary])
        for scheme in fig7_overall.SCHEMES:
            assert scheme in text

    def test_render_charts(self, summary):
        text = fig7_overall.render_charts([summary])
        assert "kirin990" in text


class TestRenders:
    def test_fig1_render_chart(self):
        rows = fig1_processor_latency.run()
        chart = fig1_processor_latency.render_chart(rows)
        assert "alexnet" in chart and "#" in chart

    def test_fig2_renders(self):
        comparison = fig2_motivation.run_queueing(interval_ms=80.0)
        text = fig2_motivation.render_queueing(comparison)
        assert "serial_delay" in text
        rows = fig2_motivation.run_demands()
        assert "intensity" in fig2_motivation.render_demands(rows)

    def test_table2_render(self):
        text = table2_slowdown.render(table2_slowdown.run())
        assert "slowdown_%" in text

    def test_fig9_render_traces(self):
        traces = fig9_memory.run(
            configs=(("tiny", ("mobilenetv2",)),)
        )
        text = fig9_memory.render_traces(traces)
        assert "memory freq" in text

    def test_fig10_render(self):
        text = fig10_intracluster.render(fig10_intracluster.run())
        assert "BB-BB" in text

    def test_fig12_render_scatter(self):
        results = fig12_bubble_latency.run(num_plans=10)
        text = fig12_bubble_latency.render_scatter(results)
        assert "slope" in text

    def test_fig13_render(self):
        text = fig13_batching.render(fig13_batching.run())
        assert "marginal_ms" in text

    def test_ext_energy_render_sorted(self):
        rows = ext_energy.run(num_combinations=2)
        text = ext_energy.render(rows)
        lines = [l for l in text.splitlines()[2:] if l.strip()]
        assert len(lines) == 4

    def test_ext_scaling_renders(self, kirin):
        counts = ext_scaling.run_request_scaling(kirin, counts=(2, 4))
        assert "throughput" in ext_scaling.render_counts(counts)
        sizes = ext_scaling.run_size_scaling(kirin)
        assert "speedup" in ext_scaling.render_sizes(sizes)


class TestWorkloadSpec:
    def test_len_and_models(self):
        spec = WorkloadSpec(index=0, model_names=("vit", "bert"))
        assert len(spec) == 2
        assert [m.name for m in spec.models()] == ["vit", "bert"]

    def test_sample_pool_restriction(self):
        specs = sample_combinations(
            count=10, pool=("vit", "bert"), seed=3
        )
        for spec in specs:
            assert set(spec.model_names) <= {"vit", "bert"}


class TestBoundaryMoveFuzz:
    @given(
        st.sampled_from(MODEL_NAMES),
        st.lists(
            st.tuples(st.integers(0, 3), st.booleans()),
            min_size=1,
            max_size=40,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_move_sequences_keep_assignments_valid(
        self, model_name, moves
    ):
        kirin = get_soc("kirin990")
        profiler = SocProfiler(kirin)
        profile = profiler.profile(get_model(model_name))
        partition = partition_model(profile, kirin.processors)
        assignment = StageAssignment(
            profile=profile, slices=list(partition.slices)
        )
        n = profile.model.num_layers
        for stage, rightward in moves:
            if stage >= len(kirin.processors) - 1:
                continue
            frm, to = (stage, stage + 1) if rightward else (stage + 1, stage)
            move_boundary_layer(assignment, frm, to, kirin.processors)
            # The invariant: every applied (or rejected) move leaves a
            # contiguous, complete, feasible cover.
            assignment.validate()
            assert assignment.is_feasible(kirin.processors)
            covered = sum(
                s[1] - s[0] + 1 for s in assignment.slices if s is not None
            )
            assert covered == n
