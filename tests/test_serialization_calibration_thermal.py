"""Tests for serialization, calibration and thermal-feedback planning."""

import dataclasses
import json

import pytest

from repro.core.planner import Hetero2PipePlanner
from repro.core.thermal_feedback import plan_with_thermal_feedback
from repro.hardware.soc import get_soc
from repro.models.serialization import (
    load_model,
    model_from_dict,
    model_from_json,
    model_to_dict,
    model_to_json,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    save_model,
)
from repro.models.zoo import get_model
from repro.profiling.calibration import (
    CalibrationReport,
    CalibrationTarget,
    calibrate,
)
from repro.profiling.profiler import SocProfiler
from repro.runtime.executor import execute_plan
from repro.runtime.schedule import async_makespan_ms


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


class TestModelSerialization:
    @pytest.mark.parametrize("name", ["squeezenet", "bert", "yolov4"])
    def test_round_trip(self, name):
        model = get_model(name)
        restored = model_from_json(model_to_json(model))
        assert restored.name == model.name
        assert restored.num_layers == model.num_layers
        assert restored.total_flops == pytest.approx(model.total_flops)
        assert restored.total_weight_bytes == pytest.approx(
            model.total_weight_bytes
        )
        assert [l.op for l in restored.layers] == [l.op for l in model.layers]
        assert restored.npu_supported() == model.npu_supported()

    def test_file_round_trip(self, tmp_path):
        model = get_model("googlenet")
        path = tmp_path / "googlenet.json"
        save_model(model, str(path))
        assert load_model(str(path)).name == "googlenet"

    def test_wrong_kind_rejected(self):
        data = model_to_dict(get_model("vit"))
        data["kind"] = "banana"
        with pytest.raises(ValueError):
            model_from_dict(data)

    def test_wrong_version_rejected(self):
        data = model_to_dict(get_model("vit"))
        data["version"] = 99
        with pytest.raises(ValueError):
            model_from_dict(data)


class TestPlanSerialization:
    def test_round_trip_preserves_schedule(self, kirin):
        models = [get_model(n) for n in ("yolov4", "bert", "squeezenet")]
        planner = Hetero2PipePlanner(kirin)
        report = planner.plan(models)
        text = plan_to_json(report.plan)

        restored = plan_from_json(text, kirin, SocProfiler(kirin))
        restored.validate()
        assert restored.order == report.plan.order
        assert async_makespan_ms(restored) == pytest.approx(
            async_makespan_ms(report.plan)
        )
        a = execute_plan(report.plan)
        b = execute_plan(restored)
        assert a.makespan_ms == pytest.approx(b.makespan_ms)

    def test_soc_mismatch_rejected(self, kirin):
        models = [get_model("vit")]
        report = Hetero2PipePlanner(kirin).plan(models)
        other = get_soc("snapdragon870")
        with pytest.raises(ValueError):
            plan_from_json(
                plan_to_json(report.plan), other, SocProfiler(other)
            )

    def test_wrong_kind_rejected(self, kirin):
        models = [get_model("vit")]
        report = Hetero2PipePlanner(kirin).plan(models)
        data = plan_to_dict(report.plan)
        data["kind"] = "model"
        with pytest.raises(ValueError):
            plan_from_json(json.dumps(data), kirin, SocProfiler(kirin))


class TestCalibration:
    def test_recovers_known_scale(self, kirin):
        # Fabricate measurements from a 1.7x faster cpu_big, then check
        # calibration recovers approximately that scale.
        true_scale = 1.7
        fast = dataclasses.replace(
            kirin,
            processors=tuple(
                dataclasses.replace(p, peak_gflops=p.peak_gflops * true_scale)
                if p.name == "cpu_big"
                else p
                for p in kirin.processors
            ),
        )
        profiler = SocProfiler(fast)
        targets = [
            CalibrationTarget(
                model_name=name,
                processor_name="cpu_big",
                latency_ms=profiler.profile(get_model(name)).whole_model_ms(
                    fast.cpu_big
                ),
            )
            for name in ("resnet50", "vgg16", "bert")
        ]
        calibrated, report = calibrate(kirin, targets)
        assert report.improved
        assert report.scales["cpu_big"] == pytest.approx(true_scale, rel=0.1)
        # untouched processors keep scale ~1
        assert report.scales["gpu"] == pytest.approx(1.0, abs=0.15)

    def test_reduces_error_on_synthetic_offsets(self, kirin):
        profiler = SocProfiler(kirin)
        targets = [
            CalibrationTarget(
                model_name="resnet50",
                processor_name="gpu",
                latency_ms=profiler.profile(get_model("resnet50")).whole_model_ms(
                    kirin.gpu
                )
                * 1.5,
            )
        ]
        _, report = calibrate(kirin, targets)
        assert report.rms_log_error_after < report.rms_log_error_before

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            CalibrationTarget("resnet50", "gpu", latency_ms=0.0)

    def test_empty_targets(self, kirin):
        with pytest.raises(ValueError):
            calibrate(kirin, [])

    def test_infeasible_target_rejected(self, kirin):
        with pytest.raises(ValueError):
            calibrate(
                kirin,
                [CalibrationTarget("bert", "npu", latency_ms=10.0)],
            )


class TestThermalFeedback:
    def test_iterations_and_result(self, kirin):
        models = [get_model(n) for n in ("yolov4", "bert", "vit")]
        result = plan_with_thermal_feedback(kirin, models, max_iterations=3)
        assert 1 <= len(result.iterations) <= 3
        assert result.result.makespan_ms > 0
        for scales in (it.scales for it in result.iterations):
            assert all(0.5 <= v <= 1.0 for v in scales.values())

    def test_lightly_used_cpu_recovers_throughput(self, kirin):
        # A plan that barely touches the CPU should see its scale rise
        # above the full-load steady-state value.
        models = [get_model(n) for n in ("mobilenetv2", "googlenet")]
        result = plan_with_thermal_feedback(kirin, models, max_iterations=3)
        first = result.iterations[0].scales["cpu_big"]
        final = result.final_scales["cpu_big"]
        assert final >= first

    def test_validation(self, kirin):
        with pytest.raises(ValueError):
            plan_with_thermal_feedback(kirin, [])
        with pytest.raises(ValueError):
            plan_with_thermal_feedback(
                kirin, [get_model("vit")], max_iterations=0
            )
