"""Injectable arrival processes for the discrete-event engine.

The legacy executor only accepted a pre-materialized list of arrival
times, which is fine for closed-loop plan evaluation but not for the
serving workloads the ROADMAP targets: open-loop traffic is described
by a *process* (periodic cameras, Poisson app launches, replayed device
logs), and the same simulation must be reproducible bit-for-bit across
runs (lint rule H2P121: every RNG is explicitly seeded).

An :class:`ArrivalProcess` materializes arrival timestamps for ``n``
requests; :func:`resolve_arrivals` is the adapter the engine and
:func:`~repro.runtime.executor.simulate_chains` use so call sites may
pass a plain sequence, a process, or nothing (all-zero closed loop).

Processes are deliberately *pure generators of timestamps* — admission,
deadlines and cancellation are engine concerns
(:mod:`repro.runtime.engine`), not arrival concerns.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

_PROCESS_NAMES = ("closed", "periodic", "poisson", "trace")


class ArrivalProcess:
    """Base class: materialize ``n`` monotone arrival timestamps (ms)."""

    #: Process family name (used by the CLI and telemetry documents).
    name = "closed"

    def times_ms(self, n: int) -> List[float]:
        """``n`` non-decreasing arrival times in ms, starting at >= 0.

        Raises:
            ValueError: when ``n`` is negative.
        """
        if n < 0:
            raise ValueError(f"need n >= 0 requests, got {n}")
        return [0.0] * n


class DeterministicArrivals(ArrivalProcess):
    """Periodic arrivals: request ``i`` arrives at ``i * interval_ms``.

    The open-loop analogue of ``workloads.generator.arrival_times_ms``
    with zero jitter, kept here so the runtime layer does not import
    the (numpy-based) workload generator.
    """

    name = "periodic"

    def __init__(self, interval_ms: float, start_ms: float = 0.0) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval must be > 0 ms, got {interval_ms}")
        if start_ms < 0:
            raise ValueError(f"start must be >= 0 ms, got {start_ms}")
        self.interval_ms = interval_ms
        self.start_ms = start_ms

    def times_ms(self, n: int) -> List[float]:
        if n < 0:
            raise ValueError(f"need n >= 0 requests, got {n}")
        return [self.start_ms + i * self.interval_ms for i in range(n)]


class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson arrivals with exponential inter-arrival gaps.

    The mean inter-arrival time is ``interval_ms`` (i.e. the rate is
    ``1000 / interval_ms`` requests per second).  The RNG seed is a
    required constructor input so two simulations of the same schedule
    are identical (H2P121); the process is stateless across calls —
    ``times_ms(n)`` always replays the same prefix.
    """

    name = "poisson"

    def __init__(self, interval_ms: float, seed: int = 0) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval must be > 0 ms, got {interval_ms}")
        self.interval_ms = interval_ms
        self.seed = seed

    def times_ms(self, n: int) -> List[float]:
        if n < 0:
            raise ValueError(f"need n >= 0 requests, got {n}")
        rng = random.Random(self.seed)
        times: List[float] = []
        now_ms = 0.0
        for _ in range(n):
            now_ms += rng.expovariate(1.0 / self.interval_ms)
            times.append(now_ms)
        return times


class TraceArrivals(ArrivalProcess):
    """Trace-driven arrivals replayed from recorded timestamps.

    When the simulation needs more requests than the trace holds, the
    trace loops with a period of ``last + cycle_gap_ms`` — replaying a
    short device log against a long synthetic run is the common case.
    """

    name = "trace"

    def __init__(
        self, trace_ms: Sequence[float], cycle_gap_ms: float = 0.0
    ) -> None:
        if not trace_ms:
            raise ValueError("trace must hold at least one arrival time")
        ordered = list(trace_ms)
        if any(t < 0 for t in ordered):
            raise ValueError("trace arrival times must be >= 0 ms")
        if ordered != sorted(ordered):
            raise ValueError("trace arrival times must be non-decreasing")
        if cycle_gap_ms < 0:
            raise ValueError(f"cycle gap must be >= 0 ms, got {cycle_gap_ms}")
        self.trace_ms = ordered
        self.cycle_gap_ms = cycle_gap_ms

    def times_ms(self, n: int) -> List[float]:
        if n < 0:
            raise ValueError(f"need n >= 0 requests, got {n}")
        period_ms = self.trace_ms[-1] + self.cycle_gap_ms
        times: List[float] = []
        for i in range(n):
            cycle, pos = divmod(i, len(self.trace_ms))
            times.append(cycle * period_ms + self.trace_ms[pos])
        return times


#: What engine entry points accept wherever arrivals are expected.
ArrivalsLike = Union[Sequence[float], ArrivalProcess, None]


def resolve_arrivals(n: int, arrivals: ArrivalsLike) -> List[float]:
    """Materialize an arrivals argument into ``n`` timestamps.

    Args:
        n: Number of requests the simulation runs.
        arrivals: ``None`` (closed loop, all zero), a plain sequence of
            per-request times, or an :class:`ArrivalProcess`.

    Raises:
        ValueError: when a plain sequence has the wrong length.
    """
    if arrivals is None:
        return [0.0] * n
    if isinstance(arrivals, ArrivalProcess):
        return arrivals.times_ms(n)
    times = list(arrivals)
    if len(times) != n:
        raise ValueError(f"expected {n} arrival times, got {len(times)}")
    return times


def make_arrival_process(
    name: str,
    interval_ms: float = 30.0,
    seed: int = 0,
    trace_ms: Optional[Sequence[float]] = None,
) -> Optional[ArrivalProcess]:
    """CLI factory: build a process from its family name.

    Raises:
        ValueError: on an unknown name, or ``trace`` without a trace.
    """
    if name == "closed":
        return None
    if name == "periodic":
        return DeterministicArrivals(interval_ms)
    if name == "poisson":
        return PoissonArrivals(interval_ms, seed=seed)
    if name == "trace":
        if trace_ms is None:
            raise ValueError("trace arrivals need recorded timestamps")
        return TraceArrivals(trace_ms)
    raise ValueError(
        f"unknown arrival process {name!r}; options: {_PROCESS_NAMES}"
    )
