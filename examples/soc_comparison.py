#!/usr/bin/env python3
"""Cross-platform study: the same workload on all three evaluation SoCs.

Shows how the NPU changes the picture: the Kirin 990 reaches far larger
speedups than the NPU-less Snapdragons, and BERT/YOLOv4 (whose operators
the NPU cannot run) route around it via operator fallback.

Run:
    python examples/soc_comparison.py
"""

from repro import Hetero2PipePlanner, execute_plan, get_model, get_soc
from repro.baselines import plan_mnn_serial
from repro.hardware import SOC_NAMES
from repro.profiling import SocProfiler

WORKLOAD = ("vgg16", "bert", "mobilenetv2", "yolov4", "googlenet", "vit")


def main() -> None:
    models = [get_model(name) for name in WORKLOAD]
    print(f"workload: {', '.join(WORKLOAD)}\n")

    for soc_name in SOC_NAMES:
        soc = get_soc(soc_name)
        profiler = SocProfiler(soc)
        planner = Hetero2PipePlanner(soc)

        report = planner.plan(models)
        h2p = execute_plan(report.plan)
        serial = execute_plan(plan_mnn_serial(soc, models, profiler))

        npu_note = "with NPU" if soc.has_npu else "no NPU"
        print(f"=== {soc.name} ({npu_note}) ===")
        print(f"  serial CPU : {serial.makespan_ms:8.1f} ms")
        print(f"  Hetero2Pipe: {h2p.makespan_ms:8.1f} ms "
              f"-> {serial.makespan_ms / h2p.makespan_ms:.2f}x speedup")

        if soc.has_npu:
            npu_models = set()
            for assignment in report.plan.assignments:
                for k, slc in enumerate(assignment.slices):
                    if slc is not None and report.plan.processors[k].name == "npu":
                        npu_models.add(assignment.model_name)
            off_npu = sorted(set(WORKLOAD) - npu_models)
            print(f"  NPU-resident models : {sorted(npu_models)}")
            print(f"  fallback (CPU/GPU)  : {off_npu}")
        print()


if __name__ == "__main__":
    main()
