"""Contention-coupled horizontal partitioning (single-step ablation).

The paper argues that "a single-step problem formulation ... cannot
fully capture the dual heterogeneity in our system" and decouples
planning into the horizontal/vertical two-step.  This module implements
the single-step alternative so the claim can be tested: the horizontal
DP's slice costs are inflated by the co-execution slowdown each
processor is *expected* to suffer given the rest of the batch, coupling
contention into partitioning directly.

The expected pressure on processor ``p`` while model ``m`` runs is the
mean solo bus-demand intensity of the other requests (each is assumed
co-resident on some other unit roughly once per pipeline period —
 the same Observation-1 proxy the two-step planner uses, just applied
inside the DP instead of after it).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..hardware.processor import ProcessorSpec
from ..hardware.soc import SocSpec
from ..models.ir import ModelGraph
from ..profiling.profiler import INFEASIBLE, ModelProfile, SocProfiler
from ..profiling.slowdown import (
    MAX_SLOWDOWN,
    REFERENCE_BANDWIDTH_GBPS,
    SENSITIVITY_BASE,
    SENSITIVITY_GAIN,
    SliceWorkload,
)
from .partition import PartitionResult, min_makespan_partition
from .plan import PipelinePlan, StageAssignment
from .stealing import vertical_alignment


def expected_pressures(
    soc: SocSpec,
    profiles: Sequence[ModelProfile],
    subject: ModelProfile,
) -> Dict[str, float]:
    """Expected bus pressure per processor while ``subject`` executes.

    Averages the other requests' solo intensities (measured on the CPU
    Big cluster as their placement is unknown at this stage) and couples
    them through the victim processor's worst-case co-runner kind.
    """
    cpu = soc.cpu_big
    others = [p for p in profiles if p is not subject]
    if not others:
        return {proc.name: 0.0 for proc in soc.processors}
    mean_intensity = sum(
        p.traffic_rate_gbps(cpu, 0, p.model.num_layers - 1)
        / REFERENCE_BANDWIDTH_GBPS
        for p in others
    ) / len(others)
    pressures = {}
    for victim in soc.processors:
        coupling = max(
            soc.coupling_factor(victim.kind, source.kind)
            for source in soc.processors
            if source.name != victim.name
        )
        pressures[victim.name] = coupling * mean_intensity
    return pressures


def coupled_slice_cost(
    profile: ModelProfile,
    processors: Sequence[ProcessorSpec],
    pressures: Dict[str, float],
) -> Callable[[int, int, int], float]:
    """DP cost callback with contention inflation baked in."""

    def cost(stage: int, start: int, end: int) -> float:
        proc = processors[stage]
        next_proc = processors[stage + 1] if stage + 1 < len(processors) else None
        base = profile.slice_cost_ms(proc, start, end, next_proc)
        if math.isinf(base):
            return INFEASIBLE
        mem_frac = profile.memory_fraction(proc, start, end)
        sensitivity = SENSITIVITY_BASE + SENSITIVITY_GAIN * mem_frac
        if proc.dedicated_memory_path:
            sensitivity *= 0.2
        pressure = pressures.get(proc.name, 0.0)
        slowdown = MAX_SLOWDOWN * (1.0 - math.exp(-pressure * sensitivity))
        return base * (1.0 + slowdown)

    return cost


def partition_model_coupled(
    profile: ModelProfile,
    processors: Sequence[ProcessorSpec],
    pressures: Dict[str, float],
) -> PartitionResult:
    """Min-max partition under contention-inflated slice costs.

    Raises:
        ValueError: if no feasible partition exists.
    """
    cost = coupled_slice_cost(profile, processors, pressures)
    makespan, slices = min_makespan_partition(
        profile.model.num_layers, len(processors), cost
    )
    stage_times = tuple(
        0.0 if s is None else cost(k, s[0], s[1]) for k, s in enumerate(slices)
    )
    return PartitionResult(
        slices=tuple(slices),
        stage_times_ms=stage_times,
        makespan_ms=makespan,
    )


def plan_coupled(
    soc: SocSpec,
    models: Sequence[ModelGraph],
    profiler: Optional[SocProfiler] = None,
    run_vertical: bool = True,
) -> PipelinePlan:
    """Single-step plan: contention-coupled DP (+ optional vertical).

    Raises:
        ValueError: for an empty request sequence.
    """
    if not models:
        raise ValueError("request sequence must be non-empty")
    profiler = profiler or SocProfiler(soc)
    processors = tuple(soc.processors)
    profiles = [profiler.profile(m) for m in models]
    assignments: List[StageAssignment] = []
    for profile in profiles:
        pressures = expected_pressures(soc, profiles, profile)
        partition = partition_model_coupled(profile, processors, pressures)
        assignments.append(
            StageAssignment(profile=profile, slices=list(partition.slices))
        )
    plan = PipelinePlan(
        soc=soc, processors=processors, assignments=assignments
    )
    if run_vertical:
        vertical_alignment(plan)
    plan.validate()
    return plan
