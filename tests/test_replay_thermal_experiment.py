"""Tests for timeline replay analysis and the Appendix B experiment."""

import pytest

from repro.core.planner import Hetero2PipePlanner
from repro.experiments.appendix_thermal import (
    run_feedback,
    run_sweep,
)
from repro.hardware.processor import ProcessorKind
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.runtime.executor import ChainTask, execute_plan, simulate_chains
from repro.runtime.replay import (
    build_timeline,
    concurrency_profile,
    critical_chain,
    utilization_summary,
)


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def result(kirin):
    planner = Hetero2PipePlanner(kirin)
    models = [get_model(n) for n in ("yolov4", "bert", "squeezenet", "vit")]
    return execute_plan(planner.plan(models).plan)


class TestTimeline:
    def test_gaps_are_real_idle_intervals(self, result):
        timeline = build_timeline(result)
        for gap in timeline.gaps:
            assert gap.duration_ms > 0
            assert 0 <= gap.start_ms < gap.end_ms <= result.makespan_ms

    def test_total_gap_matches_bubble_metric(self, result):
        timeline = build_timeline(result)
        assert timeline.total_gap_ms == pytest.approx(
            result.total_bubble_ms(), abs=1e-6
        )

    def test_largest_gaps_sorted(self, result):
        timeline = build_timeline(result)
        largest = timeline.largest_gaps(3)
        durations = [g.duration_ms for g in largest]
        assert durations == sorted(durations, reverse=True)

    def test_gaps_on_filters(self, result):
        timeline = build_timeline(result)
        for gap in timeline.gaps_on("gpu"):
            assert gap.processor == "gpu"

    def test_serial_schedule_has_no_gaps(self, kirin):
        from repro.baselines.mnn_serial import plan_mnn_serial

        serial = execute_plan(
            plan_mnn_serial(kirin, [get_model("resnet50")] * 3)
        )
        timeline = build_timeline(serial)
        assert timeline.total_gap_ms == pytest.approx(0.0, abs=1e-6)


class TestConcurrencyAndChain:
    def test_concurrency_bounds(self, kirin, result):
        profile = concurrency_profile(result)
        for _, active in profile:
            assert 0 <= active <= kirin.num_processors

    def test_concurrency_sample_count(self, result):
        assert len(concurrency_profile(result, samples=17)) == 17

    def test_concurrency_validation(self, result):
        with pytest.raises(ValueError):
            concurrency_profile(result, samples=0)

    def test_critical_chain_ends_at_makespan(self, result):
        chain = critical_chain(result)
        assert chain
        assert chain[-1].finish_ms == pytest.approx(result.makespan_ms)

    def test_critical_chain_is_time_ordered(self, result):
        chain = critical_chain(result)
        for earlier, later in zip(chain, chain[1:]):
            assert later.start_ms >= earlier.finish_ms - 1e-6

    def test_critical_chain_starts_near_zero(self, kirin):
        # On a simple serial run the chain covers the whole schedule.
        proc = kirin.cpu_big
        chain_tasks = [
            [ChainTask(request=i, proc=proc, solo_ms=10.0, workload=None,
                       working_set=0.0)]
            for i in range(3)
        ]
        result = simulate_chains(kirin, chain_tasks)
        chain = critical_chain(result)
        assert chain[0].start_ms == pytest.approx(0.0, abs=1e-6)
        assert len(chain) == 3

    def test_utilization_summary(self, result):
        summary = utilization_summary(result)
        for value in summary.values():
            assert 0.0 <= value <= 1.0 + 1e-9


class TestAppendixThermal:
    def test_sweep_covers_all_kinds(self):
        rows = run_sweep()
        kinds = {row.kind for row in rows}
        assert kinds == {k.value for k in ProcessorKind}

    def test_cpu_big_crosses_throttle_threshold(self):
        rows = run_sweep(utilizations=(1.0,))
        cpu = [r for r in rows if r.kind == "cpu_big"][0]
        gpu = [r for r in rows if r.kind == "gpu"][0]
        # The paper: CPU above 60 C and throttling; GPU under ~50 C.
        assert cpu.temperature_c > 60.0
        assert cpu.frequency_scale < 1.0
        assert gpu.temperature_c < 50.0
        assert gpu.frequency_scale == 1.0

    def test_feedback_recovers_latency(self, kirin):
        comparison = run_feedback(kirin)
        assert comparison.feedback_ms <= comparison.worst_case_ms * 1.02
        assert 0.0 <= comparison.recovered <= 1.0
        assert comparison.final_cpu_scale >= 0.76 - 1e-9
