"""Post-hoc timeline analysis and serialization of executed schedules.

Given an :class:`~repro.runtime.executor.ExecutionResult`, reconstructs
the per-processor timeline: busy intervals, the idle gaps between them
(the concrete bubbles of Definition 3, with start/end timestamps), a
sampled concurrency profile, and the critical chain of records that
determined the makespan.  The examples and experiments use this to
explain *where* a schedule lost its time.

:func:`save_run` / :func:`load_run` round-trip a full run to JSON
(``hetero2pipe.run.v2``) — execution records, trace samples, causality
rows, the prediction-accuracy telemetry (residual reports + drift
events), timeline window stats and per-request blame breakdowns — so
accuracy and blame analysis can run offline, long after the run that
produced it.  v1 archives (no causality/windows/blame sections) still
load.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..obs import (
    DriftDetected,
    RequestBlame,
    ResidualReport,
    WindowStats,
    event_from_dict,
    report_from_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutionResult, TaskRecord


@dataclass(frozen=True)
class IdleGap:
    """One bubble: a processor idle between two of its tasks."""

    processor: str
    start_ms: float
    end_ms: float
    before_request: int  # request whose task follows the gap

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class Timeline:
    """Reconstructed execution timeline."""

    makespan_ms: float
    gaps: Tuple[IdleGap, ...]
    busy_ms: Dict[str, float]

    @property
    def total_gap_ms(self) -> float:
        return sum(g.duration_ms for g in self.gaps)

    def gaps_on(self, processor: str) -> List[IdleGap]:
        return [g for g in self.gaps if g.processor == processor]

    def largest_gaps(self, count: int = 5) -> List[IdleGap]:
        return sorted(self.gaps, key=lambda g: g.duration_ms, reverse=True)[
            :count
        ]


def build_timeline(result: "ExecutionResult") -> Timeline:
    """Reconstruct per-processor idle gaps from the task records."""
    by_proc: Dict[str, List["TaskRecord"]] = {}
    for record in result.records:
        by_proc.setdefault(record.processor, []).append(record)

    gaps: List[IdleGap] = []
    for processor, records in by_proc.items():
        records = sorted(records, key=lambda r: r.start_ms)
        for earlier, later in zip(records, records[1:]):
            if later.start_ms > earlier.finish_ms + 1e-9:
                gaps.append(
                    IdleGap(
                        processor=processor,
                        start_ms=earlier.finish_ms,
                        end_ms=later.start_ms,
                        before_request=later.request,
                    )
                )
    return Timeline(
        makespan_ms=result.makespan_ms,
        gaps=tuple(sorted(gaps, key=lambda g: g.start_ms)),
        busy_ms=dict(result.processor_busy_ms),
    )


def concurrency_profile(
    result: "ExecutionResult", samples: int = 50
) -> List[Tuple[float, int]]:
    """(time, number of simultaneously running slices) samples.

    Raises:
        ValueError: for non-positive sample counts.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if not result.records or result.makespan_ms <= 0:
        return [(0.0, 0)]
    # One sorted start/finish sweep instead of rescanning every record
    # per sample: active(t) = |starts <= t| - |finishes <= t| under the
    # half-open ``start_ms <= t < finish_ms`` convention.
    starts = sorted(r.start_ms for r in result.records)
    finishes = sorted(r.finish_ms for r in result.records)
    points: List[Tuple[float, int]] = []
    for i in range(samples):
        t = result.makespan_ms * i / max(1, samples - 1)
        active = bisect_right(starts, t) - bisect_right(finishes, t)
        points.append((t, active))
    return points


def critical_chain(
    result: "ExecutionResult", prefer_exact: bool = True
) -> List["TaskRecord"]:
    """The chain of records ending at the makespan, walked backwards.

    .. deprecated::
        The backward timestamp-coincidence walk below (``finish ≈
        start`` within 1e-6) is a *heuristic* that predates the
        engine's causality tracking: coincidental timestamp matches can
        send it down the wrong branch.  When the result carries
        :class:`~repro.runtime.engine.TaskCausality` rows this function
        now delegates to the exact enablement walk
        (:func:`repro.obs.blame.extract_critical_path`) and merely
        re-expresses the path as task records; prefer calling the blame
        API directly — it also reports the gap causes and the
        makespan-tiling identity.  ``prefer_exact=False`` forces the
        legacy heuristic (the blame guard uses it for its
        heuristic-vs-exact comparison artifact).

    From the record that finishes last, repeatedly steps to the record
    that *enabled* its start: the exact recorded enabler when causality
    is available, otherwise the same request's previous stage if it
    finished approximately at the start, or the record occupying the
    same processor immediately before.
    """
    if not result.records:
        return []
    if prefer_exact and getattr(result, "causality", None):
        from ..obs.blame import extract_critical_path

        by_key = {(r.request, r.start_ms, r.finish_ms): r for r in result.records}
        chain = []
        for seg in extract_critical_path(result).segments:
            if seg.start_ms is None:
                continue  # truncated wait: no completed record exists
            record = by_key.get((seg.request, seg.start_ms, seg.finish_ms))
            if record is not None:
                chain.append(record)
        if chain:
            return chain
    records = sorted(result.records, key=lambda r: r.finish_ms)
    chain: List["TaskRecord"] = [records[-1]]
    tolerance = 1e-6
    while True:
        current = chain[-1]
        predecessor = None
        for record in records:
            if record is current:
                continue
            enables_by_chain = (
                record.request == current.request
                and abs(record.finish_ms - current.start_ms) <= tolerance
            )
            enables_by_proc = (
                record.processor == current.processor
                and abs(record.finish_ms - current.start_ms) <= tolerance
            )
            if enables_by_chain or enables_by_proc:
                predecessor = record
                break
        if predecessor is None or current.start_ms <= tolerance:
            break
        chain.append(predecessor)
    chain.reverse()
    return chain


#: Schema identifier stamped into every serialized run document.
RUN_SCHEMA = "hetero2pipe.run.v2"

#: The previous schema (no causality/windows/blame sections); archives
#: stamped with it still load, with those sections empty.
RUN_SCHEMA_V1 = "hetero2pipe.run.v1"


@dataclass(frozen=True)
class RunArchive:
    """Everything :func:`load_run` rebuilds from one archive document.

    Unpacks like the historical 3-tuple (``result, residuals,
    drift_events = load_run(...)``); the v2 sections — timeline window
    stats and per-request blame breakdowns — ride along as extra
    fields (empty for v1 archives).
    """

    result: "ExecutionResult"
    residuals: List[ResidualReport] = field(default_factory=list)
    drift_events: List[DriftDetected] = field(default_factory=list)
    windows: List[WindowStats] = field(default_factory=list)
    blame: List[RequestBlame] = field(default_factory=list)

    def __iter__(self):
        return iter((self.result, self.residuals, self.drift_events))


def run_to_dict(
    result: "ExecutionResult",
    residuals: Sequence[ResidualReport] = (),
    drift_events: Sequence[DriftDetected] = (),
    windows: Sequence[WindowStats] = (),
    blame: Sequence[RequestBlame] = (),
) -> Dict[str, object]:
    """Serialize a run (+ telemetry) to a JSON-safe v2 document."""
    return {
        "schema": RUN_SCHEMA,
        "makespan_ms": result.makespan_ms,
        "request_arrival_ms": list(result.request_arrival_ms),
        "request_finish_ms": list(result.request_finish_ms),
        "processor_busy_ms": dict(result.processor_busy_ms),
        "memory_pressure_events": result.memory_pressure_events,
        "records": [
            {
                "request": r.request,
                "stage": r.stage,
                "processor": r.processor,
                "start_ms": r.start_ms,
                "finish_ms": r.finish_ms,
                "solo_ms": r.solo_ms,
                "traffic_bytes": r.traffic_bytes,
            }
            for r in result.records
        ],
        "trace": [
            {
                "time_ms": p.time_ms,
                "bandwidth_demand_gbps": p.bandwidth_demand_gbps,
                "memory_freq_mhz": p.memory_freq_mhz,
                "used_bytes": p.used_bytes,
                "active_processors": list(p.active_processors),
            }
            for p in result.trace
        ],
        "causality": [
            {
                "request": c.request,
                "stage": c.stage,
                "index": c.index,
                "processor": c.processor,
                "cause": c.cause,
                "enabled_by": list(c.enabled_by)
                if c.enabled_by is not None
                else None,
                "ready_ms": c.ready_ms,
                "start_ms": c.start_ms,
                "finish_ms": c.finish_ms,
                "solo_ms": c.solo_ms,
                "executed_solo_ms": c.executed_solo_ms,
                "processor_busy_wait_ms": c.processor_busy_wait_ms,
                "residency_wait_ms": c.residency_wait_ms,
                "scheduler_wait_ms": c.scheduler_wait_ms,
                "preempted_ms": c.preempted_ms,
                "truncated": c.truncated,
            }
            for c in result.causality
        ],
        "corun_inflation_ms": [
            {"processor": a, "co_runner": b, "inflation_ms": v}
            for (a, b), v in sorted(result.corun_inflation_ms.items())
        ],
        "residuals": [r.to_dict() for r in residuals],
        "drift_events": [e.to_dict() for e in drift_events],
        "windows": [w.to_dict() for w in windows],
        "blame": [b.to_dict() for b in blame],
    }


def _from_fields(cls, doc: Dict[str, object]):
    """Rebuild a dataclass row, ignoring derived keys (residue etc.)."""
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in doc.items() if k in names})


def run_from_dict(doc: Dict[str, object]) -> RunArchive:
    """Rebuild a run (+ telemetry) from :func:`run_to_dict`.

    Accepts both the current ``hetero2pipe.run.v2`` schema and legacy
    ``...v1`` documents (whose causality / window / blame sections are
    simply absent).

    Raises:
        ValueError: on an unknown schema identifier.
    """
    from .engine import TaskCausality
    from .executor import ExecutionResult, TaskRecord, TracePoint

    schema = doc.get("schema", RUN_SCHEMA)
    if schema not in (RUN_SCHEMA, RUN_SCHEMA_V1):
        raise ValueError(f"unsupported run schema {schema!r}")
    result = ExecutionResult(
        records=[
            TaskRecord(
                request=int(r["request"]),
                stage=int(r["stage"]),
                processor=str(r["processor"]),
                start_ms=float(r["start_ms"]),
                finish_ms=float(r["finish_ms"]),
                solo_ms=float(r["solo_ms"]),
                traffic_bytes=float(r.get("traffic_bytes", 0.0)),
            )
            for r in doc.get("records", [])  # type: ignore[union-attr]
        ],
        makespan_ms=float(doc["makespan_ms"]),  # type: ignore[arg-type]
        request_arrival_ms=[
            float(t) for t in doc.get("request_arrival_ms", [])  # type: ignore[union-attr]
        ],
        request_finish_ms=[
            float(t) for t in doc.get("request_finish_ms", [])  # type: ignore[union-attr]
        ],
        trace=[
            TracePoint(
                time_ms=float(p["time_ms"]),
                bandwidth_demand_gbps=float(p["bandwidth_demand_gbps"]),
                memory_freq_mhz=int(p["memory_freq_mhz"]),
                used_bytes=float(p["used_bytes"]),
                active_processors=tuple(p.get("active_processors", ())),
            )
            for p in doc.get("trace", [])  # type: ignore[union-attr]
        ],
        processor_busy_ms={
            str(k): float(v)
            for k, v in doc.get("processor_busy_ms", {}).items()  # type: ignore[union-attr]
        },
        memory_pressure_events=int(doc.get("memory_pressure_events", 0)),  # type: ignore[arg-type]
        causality=[
            TaskCausality(
                request=int(c["request"]),
                stage=int(c["stage"]),
                index=int(c["index"]),
                processor=str(c["processor"]),
                cause=str(c["cause"]),
                enabled_by=tuple(c["enabled_by"])  # type: ignore[arg-type]
                if c.get("enabled_by") is not None
                else None,
                ready_ms=float(c["ready_ms"]),
                start_ms=float(c["start_ms"])
                if c.get("start_ms") is not None
                else None,
                finish_ms=float(c["finish_ms"]),
                solo_ms=float(c["solo_ms"]),
                executed_solo_ms=float(c["executed_solo_ms"]),
                processor_busy_wait_ms=float(c["processor_busy_wait_ms"]),
                residency_wait_ms=float(c["residency_wait_ms"]),
                scheduler_wait_ms=float(c["scheduler_wait_ms"]),
                preempted_ms=float(c["preempted_ms"]),
                truncated=bool(c.get("truncated", False)),
            )
            for c in doc.get("causality", [])  # type: ignore[union-attr]
        ],
        corun_inflation_ms={
            (str(p["processor"]), str(p["co_runner"])): float(
                p["inflation_ms"]
            )
            for p in doc.get("corun_inflation_ms", [])  # type: ignore[union-attr]
        },
    )
    residuals = [
        report_from_dict(r) for r in doc.get("residuals", [])  # type: ignore[union-attr]
    ]
    drift_events = []
    for e in doc.get("drift_events", []):  # type: ignore[union-attr]
        event = event_from_dict(e)
        if not isinstance(event, DriftDetected):
            raise ValueError(f"expected drift_detected event, got {event.kind}")
        drift_events.append(event)
    windows = [
        _from_fields(WindowStats, w)
        for w in doc.get("windows", [])  # type: ignore[union-attr]
    ]
    blame = [
        _from_fields(RequestBlame, b)
        for b in doc.get("blame", [])  # type: ignore[union-attr]
    ]
    return RunArchive(
        result=result,
        residuals=residuals,
        drift_events=drift_events,
        windows=windows,
        blame=blame,
    )


def save_run(
    path: str,
    result: "ExecutionResult",
    residuals: Sequence[ResidualReport] = (),
    drift_events: Sequence[DriftDetected] = (),
    windows: Sequence[WindowStats] = (),
    blame: Sequence[RequestBlame] = (),
) -> None:
    """Write a run (+ telemetry) as a JSON ``hetero2pipe.run.v2`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            run_to_dict(
                result,
                residuals,
                drift_events,
                windows=windows,
                blame=blame,
            ),
            handle,
        )


def load_run(path: str) -> RunArchive:
    """Load a run written by :func:`save_run` (v1 or v2)."""
    with open(path, "r", encoding="utf-8") as handle:
        return run_from_dict(json.load(handle))


def utilization_summary(result: "ExecutionResult") -> Dict[str, float]:
    """Busy fraction per processor over the makespan."""
    if result.makespan_ms <= 0:
        return {name: 0.0 for name in result.processor_busy_ms}
    return {
        name: busy / result.makespan_ms
        for name, busy in result.processor_busy_ms.items()
    }
