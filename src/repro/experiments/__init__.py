"""Experiment harness: one module per paper table / figure.

========================  =======================================
module                    reproduces
========================  =======================================
fig1_processor_latency    Fig. 1 / Fig. 11 solo latencies
fig2_motivation           Fig. 2(a) queueing, Fig. 2(b) demands
table2_slowdown           Table II pairwise slowdowns
fig7_overall              Fig. 7 overall comparison, 3 SoCs
fig8_ablation             Fig. 8(a)/(b) vertical ablations
fig9_memory               Fig. 9 memory frequency / footprint
fig10_intracluster        Fig. 10 intra-cluster contention
fig12_bubble_latency      Fig. 12 bubble-latency linearity
fig13_batching            Fig. 13 lightweight batching
table1_comparison         Table I capability matrix
searchspace               Appendix A search-space counts
========================  =======================================
"""

from . import (
    appendix_thermal,
    ext_energy,
    ext_optimality,
    ext_scaling,
    ext_scenarios,
    ext_sensitivity,
    fig1_processor_latency,
    fig2_motivation,
    fig7_overall,
    fig8_ablation,
    fig9_memory,
    fig10_intracluster,
    fig12_bubble_latency,
    fig13_batching,
    searchspace,
    table1_comparison,
    table2_slowdown,
)

ALL_EXPERIMENTS = {
    "appendix_thermal": appendix_thermal,
    "ext_energy": ext_energy,
    "ext_optimality": ext_optimality,
    "ext_scaling": ext_scaling,
    "ext_scenarios": ext_scenarios,
    "ext_sensitivity": ext_sensitivity,
    "fig1": fig1_processor_latency,
    "fig2": fig2_motivation,
    "table2": table2_slowdown,
    "fig7": fig7_overall,
    "fig8": fig8_ablation,
    "fig9": fig9_memory,
    "fig10": fig10_intracluster,
    "fig12": fig12_bubble_latency,
    "fig13": fig13_batching,
    "table1": table1_comparison,
    "searchspace": searchspace,
}

__all__ = ["ALL_EXPERIMENTS"] + [
    "fig1_processor_latency",
    "fig2_motivation",
    "table2_slowdown",
    "fig7_overall",
    "fig8_ablation",
    "fig9_memory",
    "fig10_intracluster",
    "fig12_bubble_latency",
    "fig13_batching",
    "table1_comparison",
    "searchspace",
]
