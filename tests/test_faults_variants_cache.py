"""Tests for fault injection, model variants, cache model, coupled DP
and the terminal charts."""

import pytest

from repro.analysis.charts import (
    bar_chart,
    grouped_bar_chart,
    scatter_plot,
    sparkline,
    step_series,
)
from repro.core.partition_coupled import (
    expected_pressures,
    partition_model_coupled,
    plan_coupled,
)
from repro.core.planner import Hetero2PipePlanner
from repro.hardware.cache import (
    CacheHierarchy,
    CacheLevel,
    average_access_latency_ns,
    dram_traffic_bytes,
    gemm_amplification,
    gemm_reuse_count,
    make_big_core_hierarchy,
    resident_fraction,
    reuse_hit_rate,
)
from repro.hardware.soc import get_soc
from repro.models.variants import (
    build_bert_variant,
    build_resnet,
    build_vgg,
    build_vit_variant,
)
from repro.models.zoo import get_model
from repro.profiling.latency import traffic_amplification
from repro.profiling.profiler import SocProfiler
from repro.runtime.executor import execute_plan, plan_to_chains, simulate_chains


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


class TestFaultInjection:
    def _plan(self, kirin, names):
        planner = Hetero2PipePlanner(kirin)
        return planner.plan([get_model(n) for n in names]).plan

    def test_offline_processor_gets_no_new_tasks(self, kirin, profiler):
        plan = self._plan(kirin, ["vit", "resnet50", "googlenet"])
        chains = plan_to_chains(plan)
        result = simulate_chains(
            kirin, chains, processor_offline_ms={"npu": 0.0}
        )
        assert all(r.processor != "npu" for r in result.records)
        assert result.num_requests == 3

    def test_fallback_extends_makespan(self, kirin, profiler):
        plan = self._plan(kirin, ["vit", "resnet50", "googlenet"])
        healthy = simulate_chains(kirin, plan_to_chains(plan)).makespan_ms
        degraded = simulate_chains(
            kirin,
            plan_to_chains(plan),
            processor_offline_ms={"npu": 0.0},
        ).makespan_ms
        assert degraded > healthy

    def test_midrun_fault_lets_running_task_finish(self, kirin, profiler):
        plan = self._plan(kirin, ["vit", "vit", "vit"])
        chains = plan_to_chains(plan)
        # NPU dies at 5 ms: whatever started before then completes on it.
        result = simulate_chains(
            kirin, chains, processor_offline_ms={"npu": 5.0}
        )
        npu_records = [r for r in result.records if r.processor == "npu"]
        for rec in npu_records:
            assert rec.start_ms < 5.0 + 1e-6
        # Remaining requests completed elsewhere.
        assert len(result.records) >= 3

    def test_all_processors_offline_raises(self, kirin, profiler):
        plan = self._plan(kirin, ["vit"])
        offline = {p.name: 0.0 for p in kirin.processors}
        with pytest.raises(RuntimeError):
            simulate_chains(
                kirin, plan_to_chains(plan), processor_offline_ms=offline
            )

    def test_fault_after_completion_is_noop(self, kirin, profiler):
        plan = self._plan(kirin, ["googlenet"])
        healthy = simulate_chains(kirin, plan_to_chains(plan)).makespan_ms
        late = simulate_chains(
            kirin,
            plan_to_chains(plan),
            processor_offline_ms={"npu": healthy + 1000.0},
        ).makespan_ms
        assert late == pytest.approx(healthy)


class TestVariants:
    def test_resnet_depths_scale_flops(self):
        flops = [build_resnet(d).total_flops for d in (18, 50, 101)]
        assert flops[0] < flops[1] < flops[2]

    def test_resnet_unknown_depth(self):
        with pytest.raises(KeyError):
            build_resnet(77)

    def test_resnet50_matches_zoo(self):
        variant = build_resnet(50)
        zoo = get_model("resnet50")
        assert variant.total_flops == pytest.approx(zoo.total_flops)
        assert variant.num_layers == zoo.num_layers

    def test_vgg_depths(self):
        assert build_vgg(11).total_flops < build_vgg(19).total_flops
        with pytest.raises(KeyError):
            build_vgg(12)

    def test_vgg16_matches_zoo(self):
        assert build_vgg(16).total_flops == pytest.approx(
            get_model("vgg16").total_flops
        )

    def test_bert_variants(self):
        distil = build_bert_variant(num_layers=6)
        base = build_bert_variant(num_layers=12)
        large = build_bert_variant(num_layers=24, hidden=1024)
        assert distil.total_flops < base.total_flops < large.total_flops
        for model in (distil, base, large):
            assert not model.npu_supported()

    def test_bert_variant_validation(self):
        with pytest.raises(ValueError):
            build_bert_variant(num_layers=0)

    def test_vit_variants(self):
        tiny = build_vit_variant(hidden=192)
        base = build_vit_variant(hidden=768)
        assert tiny.total_flops < base.total_flops
        assert tiny.npu_supported()

    def test_vit_patch_validation(self):
        with pytest.raises(ValueError):
            build_vit_variant(patch=15)

    def test_variants_plan_end_to_end(self, kirin):
        planner = Hetero2PipePlanner(kirin)
        models = [build_resnet(18), build_bert_variant(6), build_vit_variant(hidden=192)]
        report = planner.plan(models)
        report.plan.validate()
        result = execute_plan(report.plan)
        assert result.num_requests == 3


class TestCacheModel:
    def test_level_validation(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 0)
        with pytest.raises(ValueError):
            CacheHierarchy(
                l1=CacheLevel("L1", 1e6), l2=CacheLevel("L2", 1e5)
            )

    def test_resident_fraction(self):
        assert resident_fraction(1e6, 2e6) == 1.0
        assert resident_fraction(2e6, 1e6) == 0.5

    def test_reuse_hit_rate_bounds(self):
        assert reuse_hit_rate(1e3, 1e6, 10) <= 1.0
        assert reuse_hit_rate(1e9, 1e6, 10) >= 0.0
        with pytest.raises(ValueError):
            reuse_hit_rate(1e6, 1e6, 0.5)

    def test_fits_in_cache_no_amplification(self):
        hierarchy = make_big_core_hierarchy()
        assert gemm_amplification(0.5e6, hierarchy) == 1.0

    def test_overflow_amplifies(self):
        hierarchy = make_big_core_hierarchy()
        assert gemm_amplification(16e6, hierarchy) > 1.5

    def test_amplification_monotone_in_working_set(self):
        hierarchy = make_big_core_hierarchy()
        values = [gemm_amplification(w, hierarchy) for w in (1e6, 4e6, 16e6, 64e6)]
        assert values == sorted(values)

    def test_consistent_with_heuristic(self, kirin):
        # The first-principles GEMM amplification tracks the latency
        # model's sqrt heuristic within 2x over the relevant range.
        from repro.models.ir import Layer, OpType

        hierarchy = make_big_core_hierarchy(kirin.cpu_big.l2_cache_bytes)
        for weights in (2e6, 8e6, 32e6):
            layer = Layer(
                name="x", op=OpType.MATMUL, flops=1e9,
                weight_bytes=weights, activation_bytes=1e5, output_bytes=1e4,
            )
            heuristic = traffic_amplification(layer, kirin.cpu_big)
            derived = gemm_amplification(weights, hierarchy)
            assert 0.5 <= derived / heuristic <= 2.0

    def test_dram_traffic_cold_pass(self):
        hierarchy = make_big_core_hierarchy()
        w = 10e6
        assert dram_traffic_bytes(w, hierarchy, reuses=1.0) == pytest.approx(w)

    def test_access_latency_grows_with_working_set(self):
        hierarchy = make_big_core_hierarchy()
        small = average_access_latency_ns(32e3, hierarchy)
        large = average_access_latency_ns(64e6, hierarchy)
        assert large > small


class TestCoupledPlanning:
    def test_pressures_zero_for_single_request(self, kirin, profiler):
        profile = profiler.profile(get_model("vit"))
        pressures = expected_pressures(kirin, [profile], profile)
        assert all(v == 0.0 for v in pressures.values())

    def test_coupled_partition_valid(self, kirin, profiler):
        profiles = [profiler.profile(get_model(n)) for n in ("bert", "vit")]
        pressures = expected_pressures(kirin, profiles, profiles[0])
        result = partition_model_coupled(
            profiles[0], kirin.processors, pressures
        )
        covered = sum(
            s[1] - s[0] + 1 for s in result.slices if s is not None
        )
        assert covered == profiles[0].model.num_layers

    def test_two_step_not_worse_than_coupled(self, kirin, profiler):
        # The paper's design claim: the two-step decomposition matches
        # or beats the contention-coupled single-step formulation.
        from repro.workloads.generator import sample_combinations

        planner = Hetero2PipePlanner(kirin)
        wins = 0
        total = 0
        for spec in sample_combinations(count=5, seed=17):
            models = spec.models()
            coupled = execute_plan(
                plan_coupled(kirin, models, profiler)
            ).makespan_ms
            h2p = execute_plan(planner.plan(models).plan).makespan_ms
            total += 1
            if h2p <= coupled * 1.001:
                wins += 1
        assert wins >= total - 1

    def test_empty_rejected(self, kirin):
        with pytest.raises(ValueError):
            plan_coupled(kirin, [])


class TestCharts:
    def test_bar_chart_rows(self):
        text = bar_chart([("a", 1.0), ("bb", 2.0)], unit="ms")
        lines = text.splitlines()
        assert len(lines) == 2
        assert "ms" in lines[0]

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=3)

    def test_grouped_bar_chart(self):
        text = grouped_bar_chart(
            [("g1", [("a", 1.0)]), ("g2", [("b", 2.0)])]
        )
        assert "[g1]" in text and "[g2]" in text

    def test_scatter_plot_contains_markers(self):
        text = scatter_plot([(0, 0), (1, 1), (2, 4)], width=20, height=8)
        assert "o" in text

    def test_scatter_with_overlay(self):
        text = scatter_plot(
            [(0, 0), (1, 1)], overlay=[(0.5, 0.5)], width=20, height=8
        )
        assert "+" in text
        assert "series 2" in text

    def test_scatter_validation(self):
        with pytest.raises(ValueError):
            scatter_plot([])
        with pytest.raises(ValueError):
            scatter_plot([(0, 0)], width=3)

    def test_step_series(self):
        text = step_series([(0, 451), (10, 1866), (20, 1866)], label="MHz")
        assert "#" in text
        with pytest.raises(ValueError):
            step_series([])

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        with pytest.raises(ValueError):
            sparkline([])
