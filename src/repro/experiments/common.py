"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..util import geomean

__all__ = ["format_table", "geomean"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an ASCII table (the benches print these, like the paper's).

    Numeric cells are formatted to one decimal; column widths adapt.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)
