"""Command-line entry point: ``hetero2pipe`` / ``python -m repro.cli``.

Subcommands:

* ``list``                      — available experiments, models, SoCs.
* ``run <experiment>``          — run one experiment and print its table.
* ``plan --soc X --models a,b`` — plan a request sequence and show the
  resulting pipeline plus simulated execution metrics; ``--gantt`` adds
  an ASCII schedule, ``--trace out.json`` writes a Chrome trace and
  ``--energy`` an energy breakdown.
* ``stream --soc X --models ... --interval N`` — windowed streaming
  planning over an arrival schedule.
* ``export-model <name> <path>`` — write a zoo model as JSON.
* ``calibrate --soc X --targets file.json`` — fit per-processor
  throughput scales to measured latencies.
* ``trace --soc X --models a,b --out run.json`` — plan and execute with
  the observability recorder on and write one merged Perfetto/Chrome
  trace: planner spans, executor slices, counter tracks and
  steal/relocate flow arrows (see ``docs/OBSERVABILITY.md``).
* ``stats --soc X --models a,b`` — plan with the recorder on and print
  the metrics registry plus the decision-provenance explanation;
  ``--repeat N`` re-plans the same mix to show the planner's cache
  counters (``plan_cache_hits``, ``objective_cache_hits``, ...) warm up;
  ``--json`` emits the stable ``hetero2pipe.stats.v1`` document.
* ``slo --soc X --models a,b`` — stream an open-loop run through the
  timeline and SLO event taps: windowed utilization / queue-depth /
  throughput telemetry, per-class attainment, and fast/slow burn-rate
  alerts (``--classes 'resnet50=80:0.99,*=120'``, ``--window-ms``,
  ``--burn-windows FAST,SLOW``; ``--follow`` prints a live ASCII
  dashboard, ``--json`` emits ``hetero2pipe.slo.v1``, ``--jsonl``
  writes telemetry rows, ``--trace`` a Chrome trace with the counter
  tracks).
* ``accuracy --soc X --models a,b`` — close the predict → execute →
  compare loop for one offline run: join the planner's predicted
  execution against the actual one and report the residuals
  (``--perturb``/``--perturb-processor`` inject a synthetic slowdown,
  ``--json`` emits ``hetero2pipe.accuracy.v1``, ``--jsonl`` writes the
  telemetry rows, ``--trace`` a Chrome trace with the residual track).
* ``drift --soc X --models a,b`` — streamed accuracy tracking with the
  EWMA/CUSUM drift detectors and the replan trigger live; reports every
  ``DriftDetected`` event and drift-triggered replan (``--json`` emits
  ``hetero2pipe.drift.v1``; ``--jsonl`` writes telemetry).
* ``blame --soc X --models a,b`` — causal latency attribution for one
  run: every request's latency decomposed exactly into wait states +
  solo compute + contention inflation (zero residue), the exact
  critical path over the recorded dependency DAG, aggregate blame
  tables and optional what-if counterfactuals
  (``--whatif 'scale:gpu:2,no-contention'``, ``--json`` emits
  ``hetero2pipe.blame.v1``, ``--jsonl`` writes the blame telemetry
  rows, ``--trace`` a Chrome trace with the critical path highlighted
  and wait-state-colored slices).
* ``lint [paths] [--format text|json|sarif] [--plans] [--baseline
  FILE [--update-baseline]]`` — run the static-analysis subsystem
  (AST rules, dataflow unit/concurrency rules, import layering, plan
  invariants); ``--json`` emits ``hetero2pipe.lint.v1``, ``--format
  sarif`` SARIF 2.1.0, and ``--baseline`` applies the committed
  ratchet (``.lint-baseline.json``); see ``docs/STATIC_ANALYSIS.md``.
* ``profile --soc X --models a,b`` — plan (or ``--stream``) with the
  phase-attributed self-profiler on and print where the planner's own
  wall time went; ``--cprofile``/``--allocations`` deepen the capture,
  ``--speedscope``/``--collapsed``/``--trace`` write flame-graph
  artifacts, ``--json`` emits ``hetero2pipe.profile.v1`` (see
  docs/PERFORMANCE.md).
* ``bench [--scenarios ...] [--socs ...]`` — the unified benchmark
  harness: named planner/streaming/executor scenarios swept across
  SoCs; ``--json``/``--out`` emit ``hetero2pipe.bench.v1``,
  ``--baseline BENCH_planner.json`` gates against the committed
  trajectory and ``--update-baseline`` re-anchors it (the lint-ratchet
  UX; see docs/PERFORMANCE.md).

The ``--json`` schemas are documented in docs/OBSERVABILITY.md and kept
stable for CI/dashboard consumers.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import obs
from .core.online import StreamingPlanner
from .core.planner import Hetero2PipePlanner, PlannerConfig
from .experiments import ALL_EXPERIMENTS
from .hardware.soc import SOC_NAMES, get_soc
from .models.zoo import MODEL_NAMES, get_model
from .runtime.arrivals import make_arrival_process
from .runtime.executor import execute_plan
from .workloads.generator import arrival_times_ms


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:", ", ".join(sorted(ALL_EXPERIMENTS)))
    print("models:     ", ", ".join(MODEL_NAMES))
    print("socs:       ", ", ".join(SOC_NAMES))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    name = args.experiment
    if name not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {name!r}; options: {sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    module = ALL_EXPERIMENTS[name]
    print(module.main())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    soc = get_soc(args.soc)
    models = [get_model(n.strip()) for n in args.models.split(",") if n.strip()]
    if not models:
        print("no models given", file=sys.stderr)
        return 2
    config = PlannerConfig()
    if args.no_ct:
        config = PlannerConfig.no_contention_or_tail()
    planner = Hetero2PipePlanner(soc, config)
    report = planner.plan(models)

    print(f"SoC: {soc.name}   processors: {[p.name for p in soc.processors]}")
    print(f"execution order: {report.plan.order}")
    for i, assignment in enumerate(report.plan.assignments):
        times = assignment.stage_times_ms(report.plan.processors)
        stages = [
            f"{report.plan.processors[k].name}[{s[0]}:{s[1]}]={times[k]:.1f}ms"
            for k, s in enumerate(assignment.slices)
            if s is not None
        ]
        print(f"  {i}: {assignment.model_name:14s} " + "  ".join(stages))

    result = execute_plan(report.plan)
    print(f"makespan: {result.makespan_ms:.1f} ms")
    print(f"throughput: {result.throughput_per_s:.2f} inferences/s")
    for proc in soc.processors:
        print(f"  utilization {proc.name}: {result.utilization(proc.name) * 100:.0f}%")

    ordered_names = [models[i].name for i in report.plan.order]
    if args.gantt:
        from .runtime.tracing import ascii_gantt

        print()
        print(ascii_gantt(result, ordered_names))
    if args.trace:
        from .runtime.tracing import write_chrome_trace

        write_chrome_trace(result, args.trace, ordered_names)
        print(f"chrome trace written to {args.trace}")
    if args.energy:
        from .hardware.energy import estimate_energy

        energy = estimate_energy(result, soc)
        print(
            f"energy: {energy.total_mj:.0f} mJ total, "
            f"{energy.per_inference_mj(len(models)):.0f} mJ/inference "
            f"({energy.dram_mj:.0f} mJ DRAM)"
        )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    soc = get_soc(args.soc)
    names = [n.strip() for n in args.models.split(",") if n.strip()]
    if not names:
        print("no models given", file=sys.stderr)
        return 2
    stream = [get_model(n) for n in names]
    arrivals = arrival_times_ms(len(stream), args.interval)
    planner = StreamingPlanner(
        soc,
        window_size=args.window,
        coalesce_batches=args.coalesce,
    )
    result = planner.run(stream, arrivals)
    print(
        f"streamed {len(stream)} requests in {len(result.windows)} windows "
        f"on {soc.name}"
    )
    for window in result.windows:
        print(
            f"  window @ req {window.first_request}: dispatch "
            f"{window.dispatch_ms:8.1f} ms, ran {window.makespan_ms:8.1f} ms"
        )
    print(f"makespan: {result.makespan_ms:.1f} ms")
    print(f"mean request latency: {result.mean_latency_ms():.1f} ms")
    print(f"throughput: {result.throughput_per_s:.2f} inferences/s")
    return 0


def _cmd_export_model(args: argparse.Namespace) -> int:
    from .models.serialization import save_model

    try:
        model = get_model(args.model)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    save_model(model, args.path)
    print(f"wrote {model.name} ({model.num_layers} layers) to {args.path}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .profiling.calibration import CalibrationTarget, calibrate

    soc = get_soc(args.soc)
    with open(args.targets, "r", encoding="utf-8") as handle:
        entries = json.load(handle)
    targets = [
        CalibrationTarget(
            model_name=e["model"],
            processor_name=e["processor"],
            latency_ms=float(e["latency_ms"]),
        )
        for e in entries
    ]
    _, report = calibrate(soc, targets)
    print(f"calibrated {soc.name} against {len(targets)} measurements")
    for name, scale in sorted(report.scales.items()):
        print(f"  {name:10s} throughput scale {scale:.3f}")
    print(
        f"rms log-error: {report.rms_log_error_before:.4f} -> "
        f"{report.rms_log_error_after:.4f}"
    )
    return 0


def _parse_models(spec: str) -> List:
    return [get_model(n.strip()) for n in spec.split(",") if n.strip()]


def _cmd_trace(args: argparse.Namespace) -> int:
    from .runtime.tracing import write_chrome_trace

    soc = get_soc(args.soc)
    models = _parse_models(args.models)
    if not models:
        print("no models given", file=sys.stderr)
        return 2
    config = (
        PlannerConfig.no_contention_or_tail() if args.no_ct else PlannerConfig()
    )
    with obs.use_recorder(obs.InMemoryRecorder()) as rec:
        planner = Hetero2PipePlanner(soc, config)
        report = planner.plan(models)
        result = execute_plan(report.plan, trace=True)
        ordered_names = [models[i].name for i in report.plan.order]
        write_chrome_trace(result, args.out, ordered_names, recorder=rec)
    spans = len(rec.all_spans())
    flows = sum(
        1 for e in rec.events if e.kind in ("layer_stolen", "request_relocated")
    )
    if args.json:
        print(
            json.dumps(
                {
                    "schema": "hetero2pipe.trace.v1",
                    "soc": soc.name,
                    "models": [m.name for m in models],
                    "out": args.out,
                    "makespan_ms": result.makespan_ms,
                    "planner_spans": spans,
                    "executed_slices": len(result.records),
                    "provenance_events": len(rec.events),
                    "flow_arrows": flows,
                },
                sort_keys=True,
            )
        )
        return 0
    print(f"planned {len(models)} requests on {soc.name}")
    print(f"makespan: {result.makespan_ms:.1f} ms")
    print(
        f"merged trace: {spans} planner spans, {len(result.records)} "
        f"executed slices, {len(rec.events)} provenance events "
        f"({flows} steal/relocate)"
    )
    print(f"chrome trace written to {args.out} (open in ui.perfetto.dev)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    soc = get_soc(args.soc)
    models = _parse_models(args.models)
    if not models:
        print("no models given", file=sys.stderr)
        return 2
    repeat = max(1, args.repeat)
    arrival_process = make_arrival_process(
        args.arrivals,
        interval_ms=args.interval_ms,
        seed=args.arrival_seed,
    )
    with obs.use_recorder(obs.InMemoryRecorder()) as rec:
        planner = Hetero2PipePlanner(soc)
        for _ in range(repeat):
            report = planner.plan(models)
        result = execute_plan(
            report.plan,
            arrivals=arrival_process,
            deadline_ms=args.deadline_ms,
        )
    if result.num_completed > 0:
        latency = {
            "mean_ms": result.mean_latency_ms(),
            "p50_ms": result.p50_latency_ms,
            "p95_ms": result.p95_latency_ms,
            "p99_ms": result.p99_latency_ms,
        }
    else:  # every request missed its deadline: no completion latency
        latency = {"mean_ms": None, "p50_ms": None, "p95_ms": None, "p99_ms": None}
    queueing = {
        "arrival_process": args.arrivals,
        "queueing_delay_ms": result.queueing_delays_ms(),
        "mean_queueing_delay_ms": result.mean_queueing_delay_ms,
        "deadline_drops": result.deadline_drops,
        "dropped_requests": list(result.dropped_requests),
        "completed_requests": result.num_completed,
    }
    if args.json:
        snap = rec.metrics.snapshot()
        doc = {
            "schema": "hetero2pipe.stats.v1",
            "soc": soc.name,
            "models": [m.name for m in models],
            "repeat": repeat,
            "makespan_ms": result.makespan_ms,
            "throughput_per_s": result.throughput_per_s,
            "latency": latency,
            "queueing": queueing,
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "histograms": snap["histograms"],
            "provenance_events": len(rec.events),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(rec.metrics.render_text())
    print()
    if result.num_completed > 0:
        print(
            f"latency: mean {latency['mean_ms']:.1f} ms, "
            f"p50 {latency['p50_ms']:.1f} ms, p95 {latency['p95_ms']:.1f} ms, "
            f"p99 {latency['p99_ms']:.1f} ms"
        )
    else:
        print("latency: undefined (every request missed its deadline)")
    mean_delay = queueing["mean_queueing_delay_ms"]
    delay_text = (
        "undefined (no request ever started)"
        if mean_delay is None
        else f"{mean_delay:.1f} ms"
    )
    print(
        f"queueing: {args.arrivals} arrivals, mean delay "
        f"{delay_text}, "
        f"{queueing['deadline_drops']} deadline drop(s), "
        f"{queueing['completed_requests']} completed"
    )
    print()
    print(
        obs.render_explanation(
            rec.events, processor_names=[p.name for p in soc.processors]
        )
    )
    return 0


def _follow_line(window, reports) -> str:
    """One ASCII dashboard row for a closed timeline window."""
    util = " ".join(
        f"{proc} {frac * 100.0:3.0f}%"
        for proc, frac in sorted(window.utilization_frac.items())
        if frac > 0.005
    ) or "idle"
    p95 = f"{window.p95_ms:6.1f}ms" if window.p95_ms is not None else "     --"
    burn = " ".join(
        f"{r.class_name} {r.fast_burn:.1f}/{r.slow_burn:.1f}"
        for r in reports
    )
    depth = min(20, int(round(window.mean_queue_depth)))
    bar = "#" * depth + "." * (20 - depth)
    return (
        f"w{window.window:03d} [{window.start_ms:7.0f}-{window.end_ms:7.0f}ms]"
        f" q|{bar}| {window.mean_queue_depth:4.1f}"
        f" thr {window.throughput_per_s:6.1f}/s p95 {p95}"
        f" util {util}" + (f" burn {burn}" if burn else "")
    )


def _cmd_slo(args: argparse.Namespace) -> int:
    from .obs.slo import parse_class_specs, resolve_request_specs
    from .obs.timeline import TimelineAggregator
    from .runtime.engine import DiscreteEventEngine
    from .runtime.executor import plan_to_chains, replicate_chains
    from .runtime.tracing import write_chrome_trace

    soc = get_soc(args.soc)
    models = _parse_models(args.models)
    if not models:
        print("no models given", file=sys.stderr)
        return 2
    try:
        class_specs = parse_class_specs(args.classes)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        fast_text, _, slow_text = args.burn_windows.partition(",")
        fast_windows, slow_windows = int(fast_text), int(slow_text)
    except ValueError:
        print(
            f"bad --burn-windows {args.burn_windows!r}: expected FAST,SLOW",
            file=sys.stderr,
        )
        return 2
    repeat = max(1, args.repeat)
    arrival_process = make_arrival_process(
        args.arrivals,
        interval_ms=args.interval_ms,
        seed=args.arrival_seed,
    )
    # --follow shares stdout with the human summary but must not
    # corrupt a --json document; route the live rows to stderr there.
    follow_out = sys.stderr if args.json else sys.stdout

    with obs.use_recorder(obs.InMemoryRecorder()) as rec:
        planner = Hetero2PipePlanner(soc)
        report = planner.plan(models)
        base_chains = plan_to_chains(report.plan)
        chains = replicate_chains(base_chains, repeat)
        base_names = [a.model_name for a in report.plan.assignments]
        names = base_names * repeat
        stages = [len(chain) for chain in chains]
        try:
            request_specs = resolve_request_specs(names, class_specs)
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2

        engine = DiscreteEventEngine(
            soc,
            chains,
            arrivals=arrival_process,
            deadline_ms=args.deadline_ms,
            keep_events=True,
            record=False,
        )
        timeline = TimelineAggregator(
            [p.name for p in soc.processors], stages, args.window_ms
        )
        evaluator = obs.SloEvaluator(
            request_specs,
            stages,
            args.window_ms,
            fast_windows=fast_windows,
            slow_windows=slow_windows,
            burn_threshold=args.burn_threshold,
        )
        windows = []
        cursor = 0

        def _drain() -> None:
            nonlocal cursor
            log = engine.event_log
            for event in log[cursor:]:
                closed = timeline.observe(event)
                reports = evaluator.observe(event)
                windows.extend(closed)
                if args.follow:
                    for w in closed:
                        row = [r for r in reports if r.window == w.window]
                        print(_follow_line(w, row), file=follow_out)
                        for r in row:
                            if r.alert_fired:
                                print(
                                    f"  ALERT {r.class_name}: burn "
                                    f"fast {r.fast_burn:.1f} / slow "
                                    f"{r.slow_burn:.1f} > "
                                    f"{args.burn_threshold:.1f}",
                                    file=follow_out,
                                )
            cursor = len(log)

        while engine.step():
            _drain()
        _drain()
        result = engine.result()
        windows.extend(timeline.finish(result.makespan_ms))
        evaluator.finish(result.makespan_ms)
        check = timeline.littles_law()

    alerts = evaluator.alerts
    if args.jsonl:
        obs.write_slo_jsonl(
            args.jsonl, windows, evaluator.window_reports, alerts
        )
    if args.trace:
        write_chrome_trace(
            result,
            args.trace,
            names,
            recorder=rec,
            timeline_windows=windows,
            slo_reports=evaluator.window_reports,
        )
    sketch = timeline.latency_sketch
    if sketch.count:
        latency = {
            "count": sketch.count,
            "mean_ms": sketch.mean,
            "p50_ms": sketch.p50,
            "p95_ms": sketch.p95,
            "p99_ms": sketch.p99,
        }
    else:  # nothing completed inside the horizon
        latency = {
            "count": 0,
            "mean_ms": None,
            "p50_ms": None,
            "p95_ms": None,
            "p99_ms": None,
        }
    if args.json:
        doc = {
            "schema": "hetero2pipe.slo.v1",
            "soc": soc.name,
            "models": [m.name for m in models],
            "repeat": repeat,
            "requests": len(chains),
            "arrival_process": args.arrivals,
            "interval_ms": args.interval_ms,
            "window_ms": args.window_ms,
            "burn": {
                "fast_windows": fast_windows,
                "slow_windows": slow_windows,
                "threshold": args.burn_threshold,
            },
            "makespan_ms": result.makespan_ms,
            "throughput_per_s": result.throughput_per_s,
            "latency": latency,
            "queueing": {
                "mean_queueing_delay_ms": result.mean_queueing_delay_ms,
                "deadline_drops": result.deadline_drops,
                "completed_requests": result.num_completed,
            },
            "classes": evaluator.summary(),
            "windows": [w.to_dict() for w in windows],
            "alerts": [a.to_dict() for a in alerts],
            "littles_law": check.to_dict(),
            "latency_sketch": sketch.to_dict(),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(
        f"streamed {len(chains)} requests ({repeat}x {len(models)} models) "
        f"on {soc.name}: {args.arrivals} arrivals, "
        f"{len(windows)} windows of {args.window_ms:.0f} ms"
    )
    if latency["count"]:
        print(
            f"latency: p50 {latency['p50_ms']:.1f} ms, "
            f"p95 {latency['p95_ms']:.1f} ms, p99 {latency['p99_ms']:.1f} ms "
            f"(sketch, ±{sketch.relative_accuracy * 100:.0f}%)"
        )
    else:
        print("latency: undefined (nothing completed inside the horizon)")
    for name, summary in evaluator.summary().items():
        attainment = summary["attainment_frac"]
        attainment_text = (
            f"{attainment * 100:.1f}%" if attainment is not None else "--"
        )
        print(
            f"class {name}: {summary['good']}/{summary['requests']} good "
            f"({attainment_text} vs objective "
            f"{summary['spec']['objective_frac'] * 100:.0f}%), "
            f"{summary['alerts']} alert(s)"
        )
    for alert in alerts:
        print(
            f"ALERT w{alert.window:03d} {alert.class_name}: "
            f"burn fast {alert.fast_burn:.1f} / slow {alert.slow_burn:.1f} "
            f"> {alert.threshold:.1f} "
            f"(budget {alert.budget_remaining_frac * 100:.0f}% left)"
        )
    status = "ok" if check.ok else "VIOLATED"
    print(
        f"littles-law self-check: {status} "
        f"(L {check.observed_l:.4f} vs λW {check.expected_l:.4f})"
    )
    if args.jsonl:
        print(f"telemetry written to {args.jsonl}")
    if args.trace:
        print(f"chrome trace written to {args.trace}")
    return 0


def _cmd_blame(args: argparse.Namespace) -> int:
    from .obs.blame import (
        aggregate_blame,
        blame_requests,
        extract_critical_path,
    )
    from .obs.export import write_blame_jsonl
    from .obs.whatif import parse_whatifs, run_whatifs
    from .runtime.arrivals import resolve_arrivals
    from .runtime.executor import plan_to_chains, replicate_chains
    from .runtime.tracing import write_chrome_trace

    soc = get_soc(args.soc)
    models = _parse_models(args.models)
    if not models:
        print("no models given", file=sys.stderr)
        return 2
    try:
        whatifs = parse_whatifs(args.whatif) if args.whatif else []
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    repeat = max(1, args.repeat)
    arrival_process = make_arrival_process(
        args.arrivals,
        interval_ms=args.interval_ms,
        seed=args.arrival_seed,
    )
    planner = Hetero2PipePlanner(soc)
    report = planner.plan(models)
    chains = replicate_chains(plan_to_chains(report.plan), repeat)
    base_names = [a.model_name for a in report.plan.assignments]
    names = base_names * repeat
    # Materialize arrival times so the counterfactuals (fresh engine
    # runs) see the exact same floats as the baseline.
    arrivals = resolve_arrivals(len(chains), arrival_process)

    baseline, whatif_reports = run_whatifs(
        soc,
        chains,
        whatifs,
        arrivals=arrivals,
        deadline_ms=args.deadline_ms,
    )
    requests = blame_requests(baseline, request_models=names)
    path = extract_critical_path(baseline)
    aggregates = aggregate_blame(baseline, request_models=names)
    worst_residue = max(
        (abs(r.residue_ms) for r in requests), default=0.0
    )

    if args.jsonl:
        rows = write_blame_jsonl(args.jsonl, requests, path, whatif_reports)
    if args.trace:
        write_chrome_trace(baseline, args.trace, names, blame=True)
    if args.json:
        doc = {
            "schema": "hetero2pipe.blame.v1",
            "soc": soc.name,
            "models": [m.name for m in models],
            "repeat": repeat,
            "requests": len(chains),
            "arrival_process": args.arrivals,
            "makespan_ms": baseline.makespan_ms,
            "identity": {
                "worst_request_residue_ms": worst_residue,
                "critical_path_residue_ms": path.residue_ms,
            },
            "blame": [r.to_dict() for r in requests],
            "critical_path": path.to_dict(),
            "aggregates": aggregates,
            "whatifs": [w.to_dict() for w in whatif_reports],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    print(
        f"blamed {len(chains)} requests ({repeat}x {len(models)} models) "
        f"on {soc.name}: makespan {baseline.makespan_ms:.1f} ms, "
        f"worst accounting residue {worst_residue:.2e} ms"
    )
    for r in requests:
        print(
            f"  {r.request}: {r.model:14s} {r.status:9s} "
            f"latency {r.latency_ms:8.1f} ms = "
            f"solo {r.solo_ms:.1f} + contention {r.contention_ms:.1f} + "
            f"busy-wait {r.processor_busy_wait_ms:.1f} + "
            f"residency {r.residency_wait_ms:.1f} + "
            f"sched {r.scheduler_wait_ms:.1f} + "
            f"preempted {r.preempted_ms:.1f}"
        )
    print(
        f"critical path: {len(path.segments)} segments covering "
        f"{path.makespan_ms:.1f} ms "
        f"(gaps {path.total_gap_ms:.1f} ms, "
        f"residue {path.residue_ms:.2e} ms)"
    )
    for seg in path.segments:
        gap = f" after {seg.gap_ms:.1f} ms {seg.gap_cause} gap" if seg.gap_ms > 1e-6 else ""
        print(
            f"  req {seg.request} stage {seg.stage} on {seg.processor}: "
            f"{seg.duration_ms:.1f} ms{gap}"
        )
    print("blame by processor:")
    for proc, row in aggregates["by_processor"].items():
        print(
            f"  {proc:10s} solo {row['solo_ms']:8.1f} ms  "
            f"contention {row['contention_ms']:7.1f} ms  "
            f"busy-wait {row['processor_busy_wait_ms']:7.1f} ms  "
            f"residency {row['residency_wait_ms']:7.1f} ms"
        )
    for pair in aggregates["corun_pairs"]:
        print(
            f"  co-run: {pair['processor']} suffers "
            f"{pair['inflation_ms']:.1f} ms from {pair['co_runner']}"
        )
    for w in whatif_reports:
        p95 = (
            f", p95 {w.delta_p95_ms:+.1f} ms"
            if w.delta_p95_ms is not None
            else ""
        )
        print(
            f"what-if {w.intervention}: makespan "
            f"{w.makespan_ms:.1f} ms ({w.delta_makespan_ms:+.1f} ms{p95}, "
            f"{w.completed} completed, {w.delta_completed:+d})"
        )
    if args.jsonl:
        print(f"blame telemetry: {rows} rows written to {args.jsonl}")
    if args.trace:
        print(
            f"chrome trace (critical path + wait states) written to "
            f"{args.trace}"
        )
    return 0


def _perturbation_factors(args: argparse.Namespace) -> dict:
    if args.perturb is None:
        return {}
    return {args.perturb_processor: args.perturb}


def _fingerprint_digest(fingerprint: object) -> str:
    import hashlib

    return hashlib.sha1(repr(fingerprint).encode("utf-8")).hexdigest()[:12]


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from .runtime.executor import execute_plan_perturbed

    soc = get_soc(args.soc)
    models = _parse_models(args.models)
    if not models:
        print("no models given", file=sys.stderr)
        return 2
    factors = _perturbation_factors(args)
    with obs.use_recorder(obs.InMemoryRecorder()):
        planner = Hetero2PipePlanner(soc)
        report = planner.plan(models)
        predicted = execute_plan(report.plan, record=False)
        actual = (
            execute_plan_perturbed(report.plan, factors)
            if factors
            else execute_plan(report.plan)
        )
        names = [models[i].name for i in report.plan.order]
        residual = obs.join_execution(predicted, actual, model_names=names)
        monitor = obs.DriftMonitor()
        monitor.observe_report(residual)
    if args.jsonl:
        rows = obs.write_telemetry_jsonl(args.jsonl, [residual], monitor.events)
    if args.trace:
        from .runtime.tracing import write_chrome_trace

        write_chrome_trace(
            actual, args.trace, names, residuals=[residual]
        )
    overall = residual.overall()
    if args.json:
        doc = {
            "schema": "hetero2pipe.accuracy.v1",
            "soc": soc.name,
            "models": [m.name for m in models],
            "perturbation": factors,
            "summary": overall.to_dict(),
            "by_processor": {
                k: v.to_dict() for k, v in residual.by_processor().items()
            },
            "by_model": {
                k: v.to_dict() for k, v in residual.by_model().items()
            },
            "report": residual.to_dict(),
            "drift_events": [e.to_dict() for e in monitor.events],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(
        f"joined {residual.num_slices} executed slices, "
        f"{len(residual.requests)} requests on {soc.name}"
    )
    print(
        f"makespan: predicted {residual.predicted_makespan_ms:.1f} ms, "
        f"actual {residual.actual_makespan_ms:.1f} ms "
        f"(residual {residual.makespan_residual_ms:+.1f} ms, "
        f"{residual.makespan_relative_error_frac * 100:+.1f}%)"
    )
    print(
        f"slice residuals: mean {overall.mean_residual_ms:+.2f} ms, "
        f"mean |err| {overall.mean_abs_residual_ms:.2f} ms, "
        f"worst {overall.worst_relative_error * 100:+.1f}%"
    )
    for name, summary in residual.by_processor().items():
        print(
            f"  {name:10s} n={summary.count:3d} "
            f"mean {summary.mean_residual_ms:+8.2f} ms "
            f"({summary.mean_relative_error * 100:+6.1f}%)"
        )
    if monitor.events:
        for event in monitor.events:
            print(
                f"drift: {event.scope} {event.key!r} via {event.detector} "
                f"(statistic {event.statistic:.3f} > {event.threshold:.3f})"
            )
    else:
        print("drift: no detector fired")
    if args.jsonl:
        print(f"telemetry: {rows} rows written to {args.jsonl}")
    if args.trace:
        print(f"chrome trace (with residual track) written to {args.trace}")
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    from functools import partial

    from .runtime.executor import execute_plan_perturbed

    soc = get_soc(args.soc)
    models = _parse_models(args.models)
    if not models:
        print("no models given", file=sys.stderr)
        return 2
    stream = models * max(1, args.repeat)
    factors = _perturbation_factors(args)
    execute = (
        partial(execute_plan_perturbed, factors=factors) if factors else None
    )
    with obs.use_recorder(obs.InMemoryRecorder()):
        planner = StreamingPlanner(
            soc,
            window_size=args.window,
            track_accuracy=True,
            execute=execute,
        )
        result = planner.run(stream)
    digests = [_fingerprint_digest(f) for f in result.plan_fingerprints]
    if args.jsonl:
        rows = obs.write_telemetry_jsonl(
            args.jsonl, result.residuals, result.drift_events
        )
    if args.json:
        doc = {
            "schema": "hetero2pipe.drift.v1",
            "soc": soc.name,
            "models": [m.name for m in models],
            "repeat": max(1, args.repeat),
            "window_size": args.window,
            "perturbation": factors,
            "windows": len(result.windows),
            "drift_events": [e.to_dict() for e in result.drift_events],
            "replans": result.replans,
            "plan_fingerprints": digests,
            "recalibration_scales": planner.recalibration_scales,
            "window_summaries": [
                {
                    "window": r.window,
                    "num_slices": r.num_slices,
                    "makespan_relative_error_frac": r.makespan_relative_error_frac,
                    **r.overall().to_dict(),
                }
                for r in result.residuals
            ],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(
        f"streamed {len(stream)} requests in {len(result.windows)} windows "
        f"on {soc.name}"
    )
    for r in result.residuals:
        summary = r.overall()
        print(
            f"  window {r.window}: {r.num_slices} slices, mean residual "
            f"{summary.mean_residual_ms:+.2f} ms "
            f"({summary.mean_relative_error * 100:+.1f}%), "
            f"fingerprint {digests[r.window]}"
        )
    if result.drift_events:
        for event in result.drift_events:
            print(
                f"drift @ window {event.window}: {event.scope} "
                f"{event.key!r} via {event.detector} "
                f"(statistic {event.statistic:.3f} > {event.threshold:.3f})"
            )
        print(f"replans triggered: {result.replans}")
        scaled = {
            k: round(v, 3)
            for k, v in planner.recalibration_scales.items()
            if abs(v - 1.0) > 1e-9
        }
        if scaled:
            print(f"recalibrated throughput scales: {scaled}")
    else:
        print("drift: no detector fired")
    if args.jsonl:
        print(f"telemetry: {rows} rows written to {args.jsonl}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import prof

    soc = get_soc(args.soc)
    models = _parse_models(args.models)
    if not models:
        print("no models given", file=sys.stderr)
        return 2
    config = (
        PlannerConfig.uncached() if args.uncached else PlannerConfig()
    )
    repeat = max(1, args.repeat)
    cprofile_span = "plan" if args.cprofile else None
    with prof.profiling_session(
        cprofile_span=cprofile_span,
        trace_allocations=args.allocations,
    ) as rec:
        if args.stream:
            planner = StreamingPlanner(
                soc, window_size=args.window, config=config
            )
            stream = models * repeat
            result = planner.run(stream)
        else:
            planner = Hetero2PipePlanner(soc, config)
            for _ in range(repeat):
                report = planner.plan(models)
            result = execute_plan(report.plan)
    profile = prof.profile_spans(rec.spans)
    if args.speedscope:
        with open(args.speedscope, "w", encoding="utf-8") as fh:
            json.dump(prof.speedscope_document(rec.spans), fh)
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as fh:
            fh.write(prof.collapsed_stacks(rec.spans))
    if args.trace:
        from .runtime.tracing import write_chrome_trace

        if args.stream:
            print(
                "--trace requires a plan run (omit --stream)",
                file=sys.stderr,
            )
            return 2
        names = [models[i].name for i in report.plan.order]
        write_chrome_trace(result, args.trace, names, recorder=rec)
    cprofile_rows = rec.cprofile_rows(args.top) if args.cprofile else []
    if args.json:
        doc = {
            "schema": prof.PROFILE_SCHEMA,
            "soc": soc.name,
            "models": [m.name for m in models],
            "mode": "stream" if args.stream else "plan",
            "repeat": repeat,
            "uncached": bool(args.uncached),
            "total_ms": profile.total_ms,
            "attributed_frac": profile.attributed_frac,
            "phases": {
                k: v.to_dict() for k, v in sorted(profile.phases.items())
            },
            "spans": {
                k: v.to_dict() for k, v in sorted(profile.spans.items())
            },
            "cprofile": cprofile_rows,
            "allocations_traced": bool(args.allocations),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    mode = "streamed" if args.stream else "planned"
    print(
        f"{mode} {len(models)} models x{repeat} on {soc.name} "
        f"with the self-profiler on"
    )
    print()
    print(prof.render_phase_table(profile))
    if args.allocations:
        alloc = {
            name: stat.alloc_net_bytes
            for name, stat in sorted(profile.phases.items())
            if stat.alloc_net_bytes
        }
        if alloc:
            print()
            print("net allocations by phase:")
            for name, net in sorted(
                alloc.items(), key=lambda kv: kv[1], reverse=True
            ):
                print(f"  {name:<12s} {net / 1024:10.1f} KiB")
    if cprofile_rows:
        print()
        print(f"hottest functions (cProfile, top {args.top}):")
        for row in cprofile_rows:
            print(
                f"  {row['cumulative_s'] * 1e3:9.2f} ms cum  "
                f"{row['self_s'] * 1e3:8.2f} ms self  "
                f"x{row['calls']}  {row['function']}"
            )
    for flag, path in (
        ("speedscope", args.speedscope),
        ("collapsed stacks", args.collapsed),
        ("chrome trace", args.trace),
    ):
        if path:
            print(f"{flag} written to {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .obs import bench

    scenarios = (
        [s.strip() for s in args.scenarios.split(",") if s.strip()]
        if args.scenarios
        else None
    )
    socs = (
        [s.strip() for s in args.socs.split(",") if s.strip()]
        if args.socs
        else None
    )
    progress = None
    if not args.json:
        progress = lambda msg: print(f"  running {msg} ...")  # noqa: E731
    try:
        doc = bench.run_bench(
            scenarios=scenarios,
            socs=socs,
            rounds=max(1, args.rounds),
            progress=progress,
        )
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2

    exit_code = 0
    comparison_text: Optional[str] = None
    if args.update_baseline:
        target = args.baseline or bench.DEFAULT_BASELINE_PATH
        bench.write_bench_json(target, doc)
        comparison_text = f"baseline updated: {target}"
    elif args.baseline:
        try:
            baseline = bench.read_bench_json(args.baseline)
        except FileNotFoundError:
            print(
                f"baseline {args.baseline} not found; create it with "
                "--update-baseline",
                file=sys.stderr,
            )
            return 2
        comparisons = bench.compare_to_baseline(
            doc, baseline, tolerance_frac=args.tolerance
        )
        comparison_text = bench.render_comparison(comparisons)
        if bench.regressions(comparisons):
            exit_code = 1
    if args.out:
        bench.write_bench_json(args.out, doc)
    if args.json:
        print(bench.render_bench_json(doc), end="")
        if comparison_text is not None and exit_code:
            print(comparison_text, file=sys.stderr)
        return exit_code
    print(bench.render_bench_table(doc))
    if comparison_text is not None:
        print()
        print(comparison_text)
        print(
            "FAIL: scenario(s) regressed beyond the tolerance band"
            if exit_code
            else "OK: no scenario regressed beyond its tolerance band"
            if not args.update_baseline
            else "",
        )
    if args.out:
        print(f"bench document written to {args.out}")
    return exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint_command

    return run_lint_command(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hetero2pipe",
        description="Hetero2Pipe reproduction: planners, baselines, experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, models and SoCs")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see `list`)")

    plan_parser = sub.add_parser("plan", help="plan a request sequence")
    plan_parser.add_argument("--soc", default="kirin990", choices=SOC_NAMES)
    plan_parser.add_argument(
        "--models",
        required=True,
        help="comma-separated model names (see `list`)",
    )
    plan_parser.add_argument(
        "--no-ct",
        action="store_true",
        help="disable contention mitigation and tail optimization",
    )
    plan_parser.add_argument(
        "--gantt", action="store_true", help="print an ASCII schedule"
    )
    plan_parser.add_argument(
        "--trace", metavar="PATH", help="write a Chrome trace JSON"
    )
    plan_parser.add_argument(
        "--energy", action="store_true", help="print an energy breakdown"
    )

    stream_parser = sub.add_parser(
        "stream", help="windowed streaming planning over an arrival schedule"
    )
    stream_parser.add_argument("--soc", default="kirin990", choices=SOC_NAMES)
    stream_parser.add_argument("--models", required=True)
    stream_parser.add_argument(
        "--interval", type=float, default=30.0, help="inter-arrival ms"
    )
    stream_parser.add_argument(
        "--window", type=int, default=4, help="planning window size"
    )
    stream_parser.add_argument(
        "--coalesce",
        action="store_true",
        help="batch runs of identical lightweight requests",
    )

    export_parser = sub.add_parser(
        "export-model", help="write a zoo model as JSON"
    )
    export_parser.add_argument("model")
    export_parser.add_argument("path")

    calibrate_parser = sub.add_parser(
        "calibrate", help="fit processor throughput scales to measurements"
    )
    calibrate_parser.add_argument("--soc", default="kirin990", choices=SOC_NAMES)
    calibrate_parser.add_argument(
        "--targets",
        required=True,
        help="JSON file: [{model, processor, latency_ms}, ...]",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="plan + execute with the recorder on; write a merged "
        "Perfetto trace",
    )
    trace_parser.add_argument("--soc", default="kirin990", choices=SOC_NAMES)
    trace_parser.add_argument("--models", required=True)
    trace_parser.add_argument(
        "--out", required=True, metavar="PATH", help="trace JSON output path"
    )
    trace_parser.add_argument(
        "--no-ct",
        action="store_true",
        help="disable contention mitigation and tail optimization",
    )
    trace_parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable summary (hetero2pipe.trace.v1)",
    )

    stats_parser = sub.add_parser(
        "stats",
        help="plan with the recorder on; print metrics + decision provenance",
    )
    stats_parser.add_argument("--soc", default="kirin990", choices=SOC_NAMES)
    stats_parser.add_argument("--models", required=True)
    stats_parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable document (hetero2pipe.stats.v1)",
    )
    stats_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="plan the mix N times (N>1 shows the plan/objective cache "
        "counters warming up; see docs/PERFORMANCE.md)",
    )
    stats_parser.add_argument(
        "--arrivals",
        default="closed",
        choices=("closed", "periodic", "poisson"),
        help="arrival process driving the run: closed (everything at "
        "t=0, the default), periodic, or seeded Poisson open-loop",
    )
    stats_parser.add_argument(
        "--interval-ms",
        type=float,
        default=30.0,
        metavar="MS",
        help="(mean) inter-arrival time for periodic/poisson arrivals",
    )
    stats_parser.add_argument(
        "--arrival-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="RNG seed of the poisson arrival process",
    )
    stats_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="drop a request whose first slice has not started this "
        "long after its arrival (reported as deadline_drops)",
    )

    slo_parser = sub.add_parser(
        "slo",
        help="stream an open-loop run through the timeline + SLO taps; "
        "report windowed telemetry and burn-rate alerts",
    )
    slo_parser.add_argument("--soc", default="kirin990", choices=SOC_NAMES)
    slo_parser.add_argument("--models", required=True)
    slo_parser.add_argument(
        "--repeat",
        type=int,
        default=8,
        metavar="N",
        help="repeat the model mix N times to form the request stream "
        "(default: 8)",
    )
    slo_parser.add_argument(
        "--arrivals",
        default="poisson",
        choices=("closed", "periodic", "poisson"),
        help="arrival process driving the run (default: poisson)",
    )
    slo_parser.add_argument(
        "--interval-ms",
        type=float,
        default=30.0,
        metavar="MS",
        help="(mean) inter-arrival time for periodic/poisson arrivals",
    )
    slo_parser.add_argument(
        "--arrival-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="RNG seed of the poisson arrival process",
    )
    slo_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="engine admission deadline: drop a request whose first "
        "slice has not started this long after arrival (drops count "
        "as SLO-bad)",
    )
    slo_parser.add_argument(
        "--classes",
        default="*=100",
        metavar="SPECS",
        help="comma-separated NAME=DEADLINE_MS[:OBJECTIVE] SLO classes; "
        "'*' is the wildcard applied per model "
        "(default: '*=100', objective 0.95)",
    )
    slo_parser.add_argument(
        "--window-ms",
        type=float,
        default=50.0,
        metavar="MS",
        help="tumbling telemetry window width (default: 50)",
    )
    slo_parser.add_argument(
        "--burn-windows",
        default="1,12",
        metavar="FAST,SLOW",
        help="trailing window counts of the fast/slow burn-rate views "
        "(default: 1,12)",
    )
    slo_parser.add_argument(
        "--burn-threshold",
        type=float,
        default=2.0,
        metavar="X",
        help="alert when both burn views exceed X times the sustainable "
        "budget spend (default: 2.0)",
    )
    slo_parser.add_argument(
        "--follow",
        action="store_true",
        help="print a live ASCII dashboard row per closed window "
        "(to stderr when combined with --json)",
    )
    slo_parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable document (hetero2pipe.slo.v1)",
    )
    slo_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write window/SLO/alert telemetry rows as JSONL",
    )
    slo_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace with utilization / queue-depth / "
        "burn-rate counter tracks",
    )

    def _add_perturbation_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--perturb",
            type=float,
            default=None,
            metavar="FACTOR",
            help="inject a synthetic slowdown: scale solo times on the "
            "perturbed processor by FACTOR (e.g. 1.3 = +30%%)",
        )
        p.add_argument(
            "--perturb-processor",
            default="gpu",
            metavar="NAME",
            help="processor the perturbation applies to (default: gpu)",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit a machine-readable document",
        )
        p.add_argument(
            "--jsonl",
            metavar="PATH",
            help="write the residual/drift telemetry rows as JSONL",
        )

    accuracy_parser = sub.add_parser(
        "accuracy",
        help="join predicted vs executed run; report prediction residuals",
    )
    accuracy_parser.add_argument(
        "--soc", default="kirin990", choices=SOC_NAMES
    )
    accuracy_parser.add_argument("--models", required=True)
    _add_perturbation_args(accuracy_parser)
    accuracy_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace with the prediction-residual track",
    )

    drift_parser = sub.add_parser(
        "drift",
        help="streamed accuracy tracking with drift detectors and the "
        "replan trigger live",
    )
    drift_parser.add_argument("--soc", default="kirin990", choices=SOC_NAMES)
    drift_parser.add_argument("--models", required=True)
    drift_parser.add_argument(
        "--window", type=int, default=4, help="planning window size"
    )
    drift_parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        metavar="N",
        help="repeat the model list N times to form the stream (detectors "
        "need several windows of samples)",
    )
    _add_perturbation_args(drift_parser)

    profile_parser = sub.add_parser(
        "profile",
        help="plan (or stream) with the phase-attributed self-profiler on; "
        "export flamegraphs (this is software self-profiling — "
        "`repro.profiling` is the hardware latency profiler)",
    )
    profile_parser.add_argument(
        "--soc", default="kirin990", choices=SOC_NAMES
    )
    profile_parser.add_argument("--models", required=True)
    profile_parser.add_argument(
        "--stream",
        action="store_true",
        help="profile the windowed streaming planner instead of one plan",
    )
    profile_parser.add_argument(
        "--window", type=int, default=4, help="planning window size (--stream)"
    )
    profile_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="plan the mix N times (or repeat the stream N times)",
    )
    profile_parser.add_argument(
        "--uncached",
        action="store_true",
        help="disable the objective and plan caches (profile the cold path)",
    )
    profile_parser.add_argument(
        "--cprofile",
        action="store_true",
        help="scope a cProfile run to the `plan` span; print hot functions",
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="cProfile rows to show (default: 15)",
    )
    profile_parser.add_argument(
        "--allocations",
        action="store_true",
        help="attribute net tracemalloc allocations to phases",
    )
    profile_parser.add_argument(
        "--speedscope",
        metavar="PATH",
        help="write a speedscope JSON profile of the span tree",
    )
    profile_parser.add_argument(
        "--collapsed",
        metavar="PATH",
        help="write collapsed stacks (flamegraph.pl format)",
    )
    profile_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace with the phase self-profile track",
    )
    profile_parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable document (hetero2pipe.profile.v1)",
    )

    bench_parser = sub.add_parser(
        "bench",
        help="run the named planner benchmark scenarios; gate against the "
        "committed BENCH_planner.json baseline",
    )
    bench_parser.add_argument(
        "--scenarios",
        metavar="A,B",
        help="comma-separated scenario names (default: all; see "
        "docs/PERFORMANCE.md)",
    )
    bench_parser.add_argument(
        "--socs",
        metavar="A,B",
        help="comma-separated SoC names (default: all three)",
    )
    bench_parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        metavar="N",
        help="timed rounds per (scenario, soc) cell (default: 3)",
    )
    bench_parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the hetero2pipe.bench.v1 document to PATH",
    )
    bench_parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare against a baseline document; exit 1 on regression",
    )
    bench_parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current results to the baseline path instead of "
        "gating (the lint-ratchet UX)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="override every row's tolerance fraction for this comparison",
    )
    bench_parser.add_argument(
        "--json",
        action="store_true",
        help="print the hetero2pipe.bench.v1 document to stdout",
    )

    blame_parser = sub.add_parser(
        "blame",
        help="causal latency attribution: exact wait-state blame, "
        "critical path and what-if counterfactuals",
    )
    blame_parser.add_argument("--soc", default="kirin990", choices=SOC_NAMES)
    blame_parser.add_argument("--models", required=True)
    blame_parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="repeat the model mix N times to form the request stream",
    )
    blame_parser.add_argument(
        "--arrivals",
        default="closed",
        choices=("closed", "periodic", "poisson"),
        help="arrival process driving the run (default: closed)",
    )
    blame_parser.add_argument(
        "--interval-ms",
        type=float,
        default=30.0,
        metavar="MS",
        help="(mean) inter-arrival time for periodic/poisson arrivals",
    )
    blame_parser.add_argument(
        "--arrival-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="RNG seed of the poisson arrival process",
    )
    blame_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="engine admission deadline (dropped requests are blamed "
        "up to their drop time)",
    )
    blame_parser.add_argument(
        "--whatif",
        metavar="SPECS",
        help="comma-separated counterfactuals to re-simulate: "
        "scale:<proc>:<factor>, no-contention, unlimited-memory, "
        "drop:<request> (e.g. 'scale:gpu:2,no-contention')",
    )
    blame_parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable document (hetero2pipe.blame.v1)",
    )
    blame_parser.add_argument(
        "--jsonl",
        metavar="PATH",
        help="write request-blame / critical-path / what-if telemetry "
        "rows as JSONL",
    )
    blame_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace with the critical path highlighted "
        "and wait-state-colored slices",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="static analysis: AST rules, import layering, plan invariants",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(lint_parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "plan": _cmd_plan,
        "stream": _cmd_stream,
        "export-model": _cmd_export_model,
        "calibrate": _cmd_calibrate,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "slo": _cmd_slo,
        "accuracy": _cmd_accuracy,
        "drift": _cmd_drift,
        "profile": _cmd_profile,
        "bench": _cmd_bench,
        "blame": _cmd_blame,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
