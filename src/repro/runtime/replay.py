"""Post-hoc timeline analysis of executed schedules.

Given an :class:`~repro.runtime.executor.ExecutionResult`, reconstructs
the per-processor timeline: busy intervals, the idle gaps between them
(the concrete bubbles of Definition 3, with start/end timestamps), a
sampled concurrency profile, and the critical chain of records that
determined the makespan.  The examples and experiments use this to
explain *where* a schedule lost its time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutionResult, TaskRecord


@dataclass(frozen=True)
class IdleGap:
    """One bubble: a processor idle between two of its tasks."""

    processor: str
    start_ms: float
    end_ms: float
    before_request: int  # request whose task follows the gap

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class Timeline:
    """Reconstructed execution timeline."""

    makespan_ms: float
    gaps: Tuple[IdleGap, ...]
    busy_ms: Dict[str, float]

    @property
    def total_gap_ms(self) -> float:
        return sum(g.duration_ms for g in self.gaps)

    def gaps_on(self, processor: str) -> List[IdleGap]:
        return [g for g in self.gaps if g.processor == processor]

    def largest_gaps(self, count: int = 5) -> List[IdleGap]:
        return sorted(self.gaps, key=lambda g: g.duration_ms, reverse=True)[
            :count
        ]


def build_timeline(result: "ExecutionResult") -> Timeline:
    """Reconstruct per-processor idle gaps from the task records."""
    by_proc: Dict[str, List["TaskRecord"]] = {}
    for record in result.records:
        by_proc.setdefault(record.processor, []).append(record)

    gaps: List[IdleGap] = []
    for processor, records in by_proc.items():
        records = sorted(records, key=lambda r: r.start_ms)
        for earlier, later in zip(records, records[1:]):
            if later.start_ms > earlier.finish_ms + 1e-9:
                gaps.append(
                    IdleGap(
                        processor=processor,
                        start_ms=earlier.finish_ms,
                        end_ms=later.start_ms,
                        before_request=later.request,
                    )
                )
    return Timeline(
        makespan_ms=result.makespan_ms,
        gaps=tuple(sorted(gaps, key=lambda g: g.start_ms)),
        busy_ms=dict(result.processor_busy_ms),
    )


def concurrency_profile(
    result: "ExecutionResult", samples: int = 50
) -> List[Tuple[float, int]]:
    """(time, number of simultaneously running slices) samples.

    Raises:
        ValueError: for non-positive sample counts.
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if not result.records or result.makespan_ms <= 0:
        return [(0.0, 0)]
    points: List[Tuple[float, int]] = []
    for i in range(samples):
        t = result.makespan_ms * i / max(1, samples - 1)
        active = sum(
            1
            for r in result.records
            if r.start_ms <= t < r.finish_ms
        )
        points.append((t, active))
    return points


def critical_chain(result: "ExecutionResult") -> List["TaskRecord"]:
    """The chain of records ending at the makespan, walked backwards.

    From the record that finishes last, repeatedly steps to the record
    that *enabled* its start: the same request's previous stage if it
    finished exactly at the start, otherwise the record occupying the
    same processor immediately before.  The result is the sequence of
    tasks that directly determined the makespan — lengthening any of
    them lengthens the run.
    """
    if not result.records:
        return []
    records = sorted(result.records, key=lambda r: r.finish_ms)
    chain: List["TaskRecord"] = [records[-1]]
    tolerance = 1e-6
    while True:
        current = chain[-1]
        predecessor = None
        for record in records:
            if record is current:
                continue
            enables_by_chain = (
                record.request == current.request
                and abs(record.finish_ms - current.start_ms) <= tolerance
            )
            enables_by_proc = (
                record.processor == current.processor
                and abs(record.finish_ms - current.start_ms) <= tolerance
            )
            if enables_by_chain or enables_by_proc:
                predecessor = record
                break
        if predecessor is None or current.start_ms <= tolerance:
            break
        chain.append(predecessor)
    chain.reverse()
    return chain


def utilization_summary(result: "ExecutionResult") -> Dict[str, float]:
    """Busy fraction per processor over the makespan."""
    if result.makespan_ms <= 0:
        return {name: 0.0 for name in result.processor_busy_ms}
    return {
        name: busy / result.makespan_ms
        for name, busy in result.processor_busy_ms.items()
    }
