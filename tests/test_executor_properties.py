"""Property-based invariants of the event-driven simulator.

Random task chains are generated with hypothesis and the executed
schedule is checked for the properties any correct pipeline execution
must have: per-processor mutual exclusion, chain precedence (Eq. 8),
work conservation, arrival respect, and determinism.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.soc import get_soc
from repro.runtime.executor import ChainTask, simulate_chains

KIRIN = get_soc("kirin990")
PROCS = list(KIRIN.processors)


@st.composite
def chains_strategy(draw):
    """Random request chains without workloads (pure timing tasks)."""
    num_requests = draw(st.integers(1, 5))
    chains = []
    for request in range(num_requests):
        length = draw(st.integers(1, 4))
        chain = []
        for _ in range(length):
            proc = PROCS[draw(st.integers(0, len(PROCS) - 1))]
            solo = draw(
                st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False)
            )
            chain.append(
                ChainTask(
                    request=request,
                    proc=proc,
                    solo_ms=solo,
                    workload=None,
                    working_set=draw(st.floats(0, 1e8)),
                )
            )
        chains.append(chain)
    return chains


@st.composite
def arrivals_for(draw, num_requests):
    return [
        draw(st.floats(0, 200, allow_nan=False)) for _ in range(num_requests)
    ]


class TestExecutorInvariants:
    @given(chains_strategy())
    @settings(max_examples=120, deadline=None)
    def test_all_tasks_complete(self, chains):
        result = simulate_chains(KIRIN, chains)
        assert len(result.records) == sum(len(c) for c in chains)

    @given(chains_strategy())
    @settings(max_examples=120, deadline=None)
    def test_processor_mutual_exclusion(self, chains):
        result = simulate_chains(KIRIN, chains)
        by_proc = {}
        for rec in result.records:
            by_proc.setdefault(rec.processor, []).append(rec)
        for recs in by_proc.values():
            recs.sort(key=lambda r: r.start_ms)
            for a, b in zip(recs, recs[1:]):
                assert b.start_ms >= a.finish_ms - 1e-6

    @given(chains_strategy())
    @settings(max_examples=120, deadline=None)
    def test_chain_precedence(self, chains):
        result = simulate_chains(KIRIN, chains)
        by_request = {}
        for rec in result.records:
            by_request.setdefault(rec.request, []).append(rec)
        for request, recs in by_request.items():
            recs.sort(key=lambda r: r.start_ms)
            # tasks of one request never overlap and run in chain order
            for a, b in zip(recs, recs[1:]):
                assert b.start_ms >= a.finish_ms - 1e-6

    @given(chains_strategy())
    @settings(max_examples=100, deadline=None)
    def test_durations_at_least_solo(self, chains):
        # Contention can only slow tasks down, never speed them up.
        result = simulate_chains(KIRIN, chains)
        for rec in result.records:
            assert rec.duration_ms >= rec.solo_ms - 1e-6

    @given(chains_strategy())
    @settings(max_examples=100, deadline=None)
    def test_no_contention_matches_solo_sum_per_chain(self, chains):
        result = simulate_chains(KIRIN, chains, with_contention=False)
        for rec in result.records:
            assert rec.duration_ms == pytest.approx(rec.solo_ms, abs=1e-5)

    @given(chains_strategy())
    @settings(max_examples=80, deadline=None)
    def test_makespan_bounds(self, chains):
        result = simulate_chains(KIRIN, chains, with_contention=False)
        # Lower bound: the longest chain; upper bound: total serial work.
        longest_chain = max(
            sum(t.solo_ms for t in chain) for chain in chains
        )
        total = sum(t.solo_ms for chain in chains for t in chain)
        assert result.makespan_ms >= longest_chain - 1e-5
        assert result.makespan_ms <= total + 1e-5

    @given(chains_strategy())
    @settings(max_examples=80, deadline=None)
    def test_busy_time_conservation(self, chains):
        result = simulate_chains(KIRIN, chains)
        recorded = sum(r.duration_ms for r in result.records)
        busy = sum(result.processor_busy_ms.values())
        assert busy == pytest.approx(recorded, rel=1e-6, abs=1e-5)

    @given(chains_strategy())
    @settings(max_examples=60, deadline=None)
    def test_arrivals_respected(self, chains):
        arrivals = [10.0 * (i + 1) for i in range(len(chains))]
        result = simulate_chains(KIRIN, chains, arrivals=arrivals)
        firsts = {}
        for rec in result.records:
            firsts.setdefault(rec.request, rec.start_ms)
            firsts[rec.request] = min(firsts[rec.request], rec.start_ms)
        for request, start in firsts.items():
            assert start >= arrivals[request] - 1e-6

    @given(chains_strategy())
    @settings(max_examples=40, deadline=None)
    def test_determinism(self, chains):
        import copy

        a = simulate_chains(KIRIN, copy.deepcopy(chains))
        b = simulate_chains(KIRIN, copy.deepcopy(chains))
        assert a.makespan_ms == b.makespan_ms
        assert [(r.request, r.start_ms) for r in a.records] == [
            (r.request, r.start_ms) for r in b.records
        ]

    @given(chains_strategy())
    @settings(max_examples=40, deadline=None)
    def test_finish_times_match_records(self, chains):
        result = simulate_chains(KIRIN, chains)
        for request in range(len(chains)):
            last = max(
                r.finish_ms
                for r in result.records
                if r.request == request
            )
            assert result.request_finish_ms[request] == pytest.approx(last)
