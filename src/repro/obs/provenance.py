"""Replaying and explaining the planner's decision-provenance log.

Two consumers of the event stream live here:

* :func:`reconstruct_plan` — replay the committed events into the final
  execution order and per-request slices.  This is the integrity check
  behind the provenance log: if replaying the log does not produce the
  plan the planner returned, an instrumentation site is missing or
  lying (the round-trip test in ``tests/test_obs_trace.py`` enforces
  it for every planner configuration).
* :func:`render_explanation` — the terminal ``hetero2pipe stats``
  report: why each request sits where it sits, which layers moved and
  what each decision bought in makespan.

Both operate on plain event data — no planner or plan imports — so the
module stays a leaf next to :mod:`repro.obs.events`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .events import (
    LayerStolen,
    OrderCommitted,
    PlacementChanged,
    ProvenanceEvent,
    RequestRelocated,
    Slice,
    SliceChosen,
    Slices,
    TailReplaced,
)


def _apply_steal(slices: List[Slice], from_stage: int, to_stage: int) -> None:
    """Replay one boundary-layer move (mirror of ``move_boundary_layer``)."""
    src = slices[from_stage]
    if src is None:
        raise ValueError(
            f"provenance replay: steal from empty stage {from_stage}"
        )
    start, end = src
    dst = slices[to_stage]
    if to_stage > from_stage:
        slices[from_stage] = None if start > end - 1 else (start, end - 1)
        slices[to_stage] = (end, end) if dst is None else (end, dst[1])
    else:
        slices[from_stage] = None if start + 1 > end else (start + 1, end)
        slices[to_stage] = (start, start) if dst is None else (dst[0], start)


def reconstruct_plan(
    events: Sequence[ProvenanceEvent],
) -> Tuple[Tuple[int, ...], List[Slices]]:
    """Replay a committed provenance log into the final plan shape.

    Args:
        events: The recorder's event list, in emission order.

    Returns:
        ``(order, slices)`` where ``order`` maps execution position to
        original arrival index and ``slices[pos]`` is that request's
        final per-stage partition — byte-for-byte what
        ``report.plan.order`` / ``report.plan.assignments[pos].slices``
        hold for the same planning run.

    Raises:
        ValueError: on an incomplete or out-of-order log (a missing
            ``SliceChosen``, post-ordering events before
            ``OrderCommitted``, or no ``OrderCommitted`` at all).
    """
    chosen: Dict[int, Slices] = {}
    order: Optional[Tuple[int, ...]] = None
    current: List[List[Slice]] = []
    for event in events:
        if isinstance(event, SliceChosen):
            chosen[event.request] = tuple(event.slices)
        elif isinstance(event, OrderCommitted):
            missing = [i for i in event.order if i not in chosen]
            if missing:
                raise ValueError(
                    f"provenance replay: no slice_chosen for requests {missing}"
                )
            order = tuple(event.order)
            current = [list(chosen[i]) for i in order]
        elif isinstance(event, LayerStolen):
            if order is None:
                raise ValueError(
                    "provenance replay: layer_stolen before order_committed"
                )
            _apply_steal(current[event.request], event.from_stage, event.to_stage)
        elif isinstance(event, (PlacementChanged, TailReplaced)):
            if order is None:
                raise ValueError(
                    f"provenance replay: {event.kind} before order_committed"
                )
            current[event.request] = list(event.slices_after)
        # RequestRelocated carries no slice change: the committed order
        # already reflects it via OrderCommitted.
    if order is None:
        raise ValueError("provenance replay: log has no order_committed event")
    return order, [tuple(s) for s in current]


def _fmt_slices(
    slices: Slices, processor_names: Optional[Sequence[str]]
) -> str:
    parts = []
    for k, slc in enumerate(slices):
        if slc is None:
            continue
        stage = processor_names[k] if processor_names else f"stage{k}"
        parts.append(f"{stage}[{slc[0]}:{slc[1]}]")
    return " ".join(parts) if parts else "(empty)"


def render_explanation(
    events: Sequence[ProvenanceEvent],
    processor_names: Optional[Sequence[str]] = None,
) -> str:
    """Human-readable end-to-end explanation of a committed plan.

    Walks the provenance log in stage order — partitions, relocations,
    the order decision, layer steals, placement changes, the tail — and
    narrates each decision with its before/after numbers.
    """
    slice_events = [e for e in events if isinstance(e, SliceChosen)]
    relocations = [e for e in events if isinstance(e, RequestRelocated)]
    orders = [e for e in events if isinstance(e, OrderCommitted)]
    steals = [e for e in events if isinstance(e, LayerStolen)]
    placements = [e for e in events if isinstance(e, PlacementChanged)]
    tails = [e for e in events if isinstance(e, TailReplaced)]

    if not slice_events and not orders:
        return "(no provenance recorded — is an InMemoryRecorder installed?)"

    names = {e.request: e.model for e in slice_events}
    lines: List[str] = ["plan provenance:"]

    lines.append("  1. horizontal partitions (Algorithm 1 DP):")
    for e in slice_events:
        lines.append(
            f"     request {e.request} ({names.get(e.request, '?')}): "
            f"{_fmt_slices(e.slices, processor_names)}  "
            f"stage-makespan {e.makespan_ms:.2f} ms"
        )

    lines.append("  2. contention mitigation (Algorithm 2 LAP):")
    if relocations:
        for e in relocations:
            lines.append(
                f"     request {e.request} ({names.get(e.request, '?')}) "
                f"relocated position {e.source_position} -> "
                f"{e.target_position} (displacement {e.displacement}) to "
                "interleave a Low request between conflicting "
                "High-contention neighbours"
            )
    else:
        lines.append("     no relocations committed")

    if orders:
        e = orders[-1]
        if e.mitigated:
            lines.append(
                f"     mitigated order {e.order} accepted: makespan "
                f"{e.chosen_makespan_ms:.2f} ms vs {e.arrival_makespan_ms:.2f} "
                "ms for the arrival order"
            )
        else:
            lines.append(
                f"     arrival order {e.order} kept "
                f"(makespan {e.chosen_makespan_ms:.2f} ms)"
            )

    lines.append("  3. vertical alignment (Algorithm 3 work stealing):")
    if steals:
        per_request: Dict[int, List[LayerStolen]] = {}
        for s in steals:
            per_request.setdefault(s.request, []).append(s)
        for pos in sorted(per_request):
            moves = per_request[pos]
            gain = sum(m.gain_ms for m in moves)
            detail = ", ".join(
                f"layer {m.layer}: stage {m.from_stage}->{m.to_stage} "
                f"({m.phase})"
                for m in moves
            )
            lines.append(
                f"     position {pos}: {len(moves)} boundary move(s), "
                f"objective gain {gain:.2f} ms — {detail}"
            )
    else:
        lines.append("     no boundary layers moved")

    if placements or tails:
        lines.append("  4. placement search and tail re-allocation:")
        for e in placements:
            lines.append(
                f"     position {e.request} re-placed "
                f"{_fmt_slices(e.slices_before, processor_names)} -> "
                f"{_fmt_slices(e.slices_after, processor_names)}  "
                f"makespan {e.makespan_before_ms:.2f} -> "
                f"{e.makespan_after_ms:.2f} ms"
            )
        for e in tails:
            lines.append(
                f"     tail (position {e.request}) re-allocated "
                f"{_fmt_slices(e.slices_before, processor_names)} -> "
                f"{_fmt_slices(e.slices_after, processor_names)}  "
                f"makespan {e.makespan_before_ms:.2f} -> "
                f"{e.makespan_after_ms:.2f} ms"
            )
    else:
        lines.append("  4. placement search and tail: no changes")

    return "\n".join(lines)
