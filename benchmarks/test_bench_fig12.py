"""Fig. 12 benchmark: bubble-size vs latency linearity (Property 1)."""

from repro.experiments import fig12_bubble_latency


def test_bench_fig12_bubble_latency(run_once):
    results = run_once(fig12_bubble_latency.run, num_plans=50)
    print("\n" + fig12_bubble_latency.render(results))

    assert {r.label for r in results} == {"five_network", "three_network"}
    for result in results:
        # Property 1: a positive-slope, strongly linear relation.
        assert result.fit.slope > 0
        assert result.fit.r_squared > 0.5
        assert len(result.points) == 50

    # The two configurations have different slopes (the paper notes the
    # model combination determines the slope).
    slopes = sorted(r.fit.slope for r in results)
    assert slopes[1] > slopes[0] * 1.05
