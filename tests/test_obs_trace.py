"""Integration tests: instrumented planner, merged trace export, CLI.

Covers the observability acceptance criteria end to end: every event in
the merged Chrome trace obeys the schema (``ph`` in {X, M, C, s, f},
monotone per-track timestamps, non-negative durations), the provenance
log replays byte-for-byte into the committed plan, and the ``trace`` /
``stats`` CLI verbs produce loadable artifacts.
"""

import json
from collections import defaultdict

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.core.planner import Hetero2PipePlanner, PlannerConfig
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.obs import reconstruct_plan, render_explanation
from repro.runtime.executor import execute_plan
from repro.runtime.tracing import ascii_gantt, to_chrome_trace

#: A mix whose mitigated order wins: bert (High) and mobilenetv2 (High)
#: arrive adjacent and a Low request is relocated between them.
RELOCATING_MODELS = "bert,mobilenetv2,squeezenet,vit,resnet50,googlenet"

VALID_PHASES = {"X", "M", "C", "s", "f"}


def _models(spec):
    return [get_model(n) for n in spec.split(",")]


def _plan_and_run(model_spec, config=None, trace=True):
    soc = get_soc("kirin990")
    rec = obs.InMemoryRecorder()
    with obs.use_recorder(rec):
        planner = Hetero2PipePlanner(soc, config)
        report = planner.plan(_models(model_spec))
        result = execute_plan(report.plan, trace=trace)
    return soc, rec, report, result


@pytest.fixture(scope="module")
def planned():
    return _plan_and_run("resnet50,yolov4,bert,squeezenet,vit")


@pytest.fixture(scope="module")
def relocated():
    return _plan_and_run(RELOCATING_MODELS)


# ------------------------------------------------------- instrumentation


class TestPlannerInstrumentation:
    def test_span_tree_covers_all_planner_stages(self, planned):
        _, rec, _, _ = planned
        names = {s.name for s in rec.all_spans()}
        assert {
            "plan", "plan.partition", "plan.classify", "plan.mitigate",
            "plan.candidate", "plan.vertical", "plan.steal",
            "plan.refine_global", "plan.placements", "execute",
        } <= names
        roots = [s.name for s in rec.spans]
        assert roots == ["plan", "execute"]

    def test_work_metrics_recorded(self, planned):
        _, rec, report, result = planned
        counters = rec.metrics.snapshot()["counters"]
        assert counters["dp_cells_evaluated"] > 0
        assert counters["requests_scored"] == len(report.scores)
        assert counters["steal_moves"] > 0
        assert counters["objective_evaluations"] > 0
        # Only the real execution counts, not the planner's objective
        # re-simulations.
        assert counters["tasks_executed"] == len(result.records)
        gauges = rec.metrics.snapshot()["gauges"]
        assert gauges["last_plan_makespan_ms"] > 0

    def test_every_span_is_closed(self, planned):
        _, rec, _, _ = planned
        assert all(s.end_s is not None for s in rec.all_spans())

    def test_disabled_recorder_produces_identical_plan(self, planned):
        _, _, instrumented, _ = planned
        soc = get_soc("kirin990")
        planner = Hetero2PipePlanner(soc)
        bare = planner.plan(_models("resnet50,yolov4,bert,squeezenet,vit"))
        assert bare.plan.order == instrumented.plan.order
        assert [a.slices for a in bare.plan.assignments] == [
            a.slices for a in instrumented.plan.assignments
        ]


# ------------------------------------------------------------ round trip


class TestProvenanceRoundTrip:
    def test_reconstructs_unmitigated_plan(self, planned):
        _, rec, report, _ = planned
        order, slices = reconstruct_plan(rec.events)
        assert order == report.plan.order
        assert list(slices) == [
            tuple(a.slices) for a in report.plan.assignments
        ]

    def test_reconstructs_mitigated_plan_with_relocation(self, relocated):
        _, rec, report, _ = relocated
        relocations = [
            e for e in rec.events if e.kind == "request_relocated"
        ]
        assert relocations, "fixture must commit at least one relocation"
        order, slices = reconstruct_plan(rec.events)
        assert order == report.plan.order
        assert order != tuple(range(len(order)))  # mitigation reordered
        assert list(slices) == [
            tuple(a.slices) for a in report.plan.assignments
        ]

    def test_round_trip_for_ablation_configs(self):
        for config in (
            PlannerConfig.no_contention_or_tail(),
            PlannerConfig(enable_work_stealing=False),
        ):
            _, rec, report, _ = _plan_and_run(
                "resnet50,bert,squeezenet", config=config, trace=False
            )
            order, slices = reconstruct_plan(rec.events)
            assert order == report.plan.order
            assert list(slices) == [
                tuple(a.slices) for a in report.plan.assignments
            ]

    def test_incomplete_log_raises(self, planned):
        _, rec, _, _ = planned
        committed = [e for e in rec.events if e.kind == "order_committed"]
        steals = [e for e in rec.events if e.kind == "layer_stolen"]
        with pytest.raises(ValueError):
            reconstruct_plan([])  # no order_committed at all
        with pytest.raises(ValueError):
            reconstruct_plan(steals[:1])  # steal before order
        with pytest.raises(ValueError):
            reconstruct_plan(committed)  # order without slice_chosen

    def test_explanation_narrates_each_stage(self, relocated):
        soc, rec, _, _ = relocated
        text = render_explanation(
            rec.events, processor_names=[p.name for p in soc.processors]
        )
        assert "horizontal partitions" in text
        assert "relocated position" in text
        assert "mitigated order" in text
        assert "boundary move" in text
        assert render_explanation([]).startswith("(no provenance")


# ---------------------------------------------------------- trace schema


class TestChromeTraceSchema:
    @pytest.fixture(scope="class")
    def trace_doc(self, planned):
        _, rec, report, result = planned
        names = [
            _models("resnet50,yolov4,bert,squeezenet,vit")[i].name
            for i in report.plan.order
        ]
        return json.loads(to_chrome_trace(result, names, recorder=rec))

    def test_only_allowed_phases(self, trace_doc):
        phases = {e["ph"] for e in trace_doc["traceEvents"]}
        assert phases <= VALID_PHASES
        assert "X" in phases and "M" in phases and "C" in phases

    def test_x_events_monotone_per_track_nonnegative_dur(self, trace_doc):
        by_track = defaultdict(list)
        for e in trace_doc["traceEvents"]:
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
                assert e["ts"] >= 0.0
                by_track[(e["pid"], e["tid"])].append(e["ts"])
        assert by_track, "trace must contain X slices"
        for track, stamps in by_track.items():
            assert stamps == sorted(stamps), f"ts not monotone on {track}"

    def test_process_and_thread_metadata(self, trace_doc):
        meta = [e for e in trace_doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "process_name"
        }
        assert process_names[0] == "execution (simulated time)"
        assert process_names[1] == "planner (wall time)"
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert "planner" in thread_names
        assert any(n in thread_names for n in ("cpu_big", "gpu", "npu"))

    def test_counter_tracks_include_queue_depth(self, trace_doc):
        counters = [e for e in trace_doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "queue_depth" in names
        assert "dp_cells_evaluated" in names  # metrics registry track
        depth_samples = [
            e for e in counters if e["name"] == "queue_depth"
        ]
        assert len(depth_samples) >= 2
        for e in depth_samples:
            assert e["args"]["requests"] >= 0

    def test_flow_arrows_pair_up(self, trace_doc):
        flows = [
            e for e in trace_doc["traceEvents"] if e["ph"] in ("s", "f")
        ]
        assert flows, "steal decisions must draw flow arrows"
        by_id = defaultdict(list)
        for e in flows:
            by_id[e["id"]].append(e)
        for flow_id, pair in by_id.items():
            phases = sorted(e["ph"] for e in pair)
            assert phases == ["f", "s"], f"unpaired flow {flow_id}"
            s = next(e for e in pair if e["ph"] == "s")
            f = next(e for e in pair if e["ph"] == "f")
            assert f["bp"] == "e"
            if s["pid"] == f["pid"]:
                # Cross-process arrows span two clock domains, so their
                # timestamps are only comparable within one process.
                assert s["ts"] <= f["ts"]

    def test_relocation_flow_crosses_processes(self):
        soc, rec, report, result = _plan_and_run(RELOCATING_MODELS)
        names = [
            _models(RELOCATING_MODELS)[i].name for i in report.plan.order
        ]
        doc = json.loads(to_chrome_trace(result, names, recorder=rec))
        rel = [
            e
            for e in doc["traceEvents"]
            if e.get("name") == "request_relocated" and e["ph"] in ("s", "f")
        ]
        assert rel, "relocation fixture must draw a flow arrow"
        starts = [e for e in rel if e["ph"] == "s"]
        finishes = [e for e in rel if e["ph"] == "f"]
        assert all(e["pid"] == 1 for e in starts)  # planner process
        assert all(e["pid"] == 0 for e in finishes)  # execution process

    def test_without_recorder_trace_stays_single_process(self, planned):
        _, _, _, result = planned
        doc = json.loads(to_chrome_trace(result))
        assert {e["pid"] for e in doc["traceEvents"]} == {0}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"X", "M", "C"}


# ------------------------------------------------------------ ascii gantt


class TestAsciiGantt:
    def test_minimum_width_renders_clean_ruler(self, planned):
        _, _, _, result = planned
        text = ascii_gantt(result, width=10)
        ruler = next(l for l in text.splitlines() if "0 ms" in l)
        assert "-" in ruler  # dashes clamp to >= 1 instead of vanishing
        assert "ms" in ruler

    def test_width_below_minimum_rejected(self, planned):
        _, _, _, result = planned
        with pytest.raises(ValueError):
            ascii_gantt(result, width=9)

    def test_rows_match_requested_width(self, planned):
        _, _, _, result = planned
        lines = ascii_gantt(result, width=24).splitlines()
        body = [l for l in lines if "|" in l]
        assert body
        for line in body:
            start = line.index("|")
            assert line.rindex("|") - start - 1 == 24


# ------------------------------------------------------------------- CLI


class TestObservabilityCli:
    def test_trace_verb_writes_loadable_perfetto_json(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        code = cli_main(
            [
                "trace", "--soc", "kirin990",
                "--models", "resnet50,yolov4", "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= VALID_PHASES
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert any(
            e["ph"] == "C" and e["name"] == "queue_depth"
            for e in doc["traceEvents"]
        )
        assert "chrome trace written" in capsys.readouterr().out

    def test_stats_verb_prints_metrics_and_explanation(self, capsys):
        code = cli_main(
            ["stats", "--soc", "kirin990", "--models", RELOCATING_MODELS]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "dp_cells_evaluated" in out
        assert "plan provenance:" in out
        assert "relocated position" in out  # >= 1 relocated request

    def test_stats_json_mode(self, capsys):
        code = cli_main(
            ["stats", "--models", "resnet50,squeezenet", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert "counters" in doc and "gauges" in doc

    def test_stats_json_stable_schema(self, capsys):
        code = cli_main(
            ["stats", "--models", "resnet50,squeezenet", "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "hetero2pipe.stats.v1"
        assert {
            "soc",
            "models",
            "repeat",
            "makespan_ms",
            "throughput_per_s",
            "latency",
            "counters",
            "gauges",
            "histograms",
            "provenance_events",
        } <= set(doc)
        latency = doc["latency"]
        assert {"mean_ms", "p50_ms", "p95_ms", "p99_ms"} <= set(latency)
        assert (
            latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        )

    def test_stats_text_mode_reports_latency_line(self, capsys):
        code = cli_main(["stats", "--models", "resnet50,squeezenet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "p95" in out and "p99" in out

    def test_trace_json_stable_schema(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = cli_main(
            [
                "trace",
                "--models",
                "resnet50,squeezenet",
                "--out",
                str(out),
                "--json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "hetero2pipe.trace.v1"
        assert doc["out"] == str(out)
        assert out.exists()
        assert {
            "soc",
            "models",
            "makespan_ms",
            "planner_spans",
            "executed_slices",
            "provenance_events",
            "flow_arrows",
        } <= set(doc)
        assert doc["executed_slices"] > 0

    def test_recorder_is_restored_after_cli(self):
        assert not obs.enabled()
