"""Solo-execution profiling and co-execution slowdown modelling.

Naming note: this package is **hardware latency profiling** — the
paper's offline step (solo latencies, PMU features, co-execution
slowdowns of the *simulated SoC*).  The other "profiler" in this repo,
:mod:`repro.obs.prof`, is **software self-profiling** — where the
planner's *own wall time* goes (``hetero2pipe profile``).  See
``docs/ARCHITECTURE.md`` for the disambiguation.
"""

from .calibration import CalibrationReport, CalibrationTarget, calibrate
from .latency import (
    MAX_AMPLIFICATION,
    copy_latency_ms,
    layer_latency_ms,
    layer_traffic_bytes,
    traffic_amplification,
)
from .pmu import PerfCounters, ground_truth_intensity, measure_counters
from .report import LayerReport, ModelReport, profile_report, render_report
from .profiler import INFEASIBLE, ModelProfile, SocProfiler
from .slowdown import (
    MAX_SLOWDOWN,
    REFERENCE_BANDWIDTH_GBPS,
    SliceWorkload,
    co_execution_ms,
    intra_cluster_slowdown,
    pairwise_slowdown_table,
    slowdown_fraction,
)

__all__ = [
    "CalibrationReport",
    "CalibrationTarget",
    "calibrate",
    "MAX_AMPLIFICATION",
    "copy_latency_ms",
    "layer_latency_ms",
    "layer_traffic_bytes",
    "traffic_amplification",
    "PerfCounters",
    "LayerReport",
    "ModelReport",
    "profile_report",
    "render_report",
    "ground_truth_intensity",
    "measure_counters",
    "INFEASIBLE",
    "ModelProfile",
    "SocProfiler",
    "MAX_SLOWDOWN",
    "REFERENCE_BANDWIDTH_GBPS",
    "SliceWorkload",
    "co_execution_ms",
    "intra_cluster_slowdown",
    "pairwise_slowdown_table",
    "slowdown_fraction",
]
