"""Tests for the column-synchronous schedule and bubble accounting."""

import pytest

from repro.core.partition import partition_model
from repro.core.plan import PipelinePlan, StageAssignment
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler
from repro.runtime.schedule import (
    async_makespan_ms,
    build_schedule,
    plan_bubbles_ms,
    plan_makespan_ms,
    tail_bubble_ms,
)


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


def make_plan(profiler, kirin, names):
    return PipelinePlan(
        soc=kirin,
        processors=tuple(kirin.processors),
        assignments=[
            StageAssignment(
                profile=profiler.profile(get_model(n)),
                slices=list(
                    partition_model(
                        profiler.profile(get_model(n)), kirin.processors
                    ).slices
                ),
            )
            for n in names
        ],
    )


class TestSchedule:
    def test_column_count(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50", "bert"])
        schedule = build_schedule(plan)
        assert len(schedule.columns) == plan.num_requests + plan.depth - 1

    def test_column_duration_is_max_member(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50"])
        schedule = build_schedule(plan, with_contention=False)
        for col in schedule.columns:
            active = [c.co_ms for c in col.cells if c.co_ms > 0]
            if active:
                assert col.duration_ms == max(active)
            else:
                assert col.duration_ms == 0.0

    def test_bubble_definition_eq3(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert", "yolov4"])
        schedule = build_schedule(plan, with_contention=False)
        for col in schedule.columns:
            active = [c.co_ms for c in col.cells if c.co_ms > 0]
            if len(active) >= 2:
                expected = sum(max(active) - t for t in active)
                assert col.bubble_ms == pytest.approx(expected)

    def test_makespan_is_sum_of_columns(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit", "resnet50", "bert"])
        schedule = build_schedule(plan)
        assert schedule.makespan_ms == pytest.approx(
            sum(c.duration_ms for c in schedule.columns)
        )

    def test_contention_inflates_schedule(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert", "yolov4", "vgg16"])
        assert plan_makespan_ms(plan, True) >= plan_makespan_ms(plan, False)
        assert plan_bubbles_ms(plan, True) >= 0.0

    def test_single_request_has_no_cross_bubbles(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["vit"])
        # Each column holds at most one active cell.
        schedule = build_schedule(plan)
        for col in schedule.columns:
            active = [c for c in col.cells if c.co_ms > 0]
            assert len(active) <= 1
            assert col.bubble_ms == 0.0

    def test_tail_bubble_subset_of_total(self, profiler, kirin):
        plan = make_plan(profiler, kirin, ["bert", "yolov4", "vit"])
        assert tail_bubble_ms(plan) <= plan_bubbles_ms(plan) + 1e-9

    def test_async_never_exceeds_sync(self, profiler, kirin):
        # Relaxing the lockstep can only shorten the schedule when
        # contention is off (identical task durations, fewer barriers).
        plan = make_plan(profiler, kirin, ["bert", "yolov4", "vit", "resnet50"])
        assert async_makespan_ms(plan, with_contention=False) <= (
            plan_makespan_ms(plan, with_contention=False) + 1e-6
        )
