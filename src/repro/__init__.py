"""Hetero2Pipe reproduction: contention-aware multi-DNN pipeline planning
for heterogeneous mobile SoCs.

Reproduces "Hetero2Pipe: Pipelining Multi-DNN Inference on Heterogeneous
Mobile Processors under Co-Execution Slowdown" (ICDCS 2025) as a pure
Python library: the two-step DP + work-stealing planner, the contention
model, a simulated SoC substrate (Kirin 990, Snapdragon 778G/870), the
baselines (MNN-serial, Pipe-it, Band, exhaustive, annealing) and an
experiment harness regenerating every table and figure.

Quickstart::

    from repro import Hetero2PipePlanner, get_model, get_soc, execute_plan

    soc = get_soc("kirin990")
    planner = Hetero2PipePlanner(soc)
    report = planner.plan([get_model("yolov4"), get_model("bert"),
                           get_model("squeezenet")])
    result = execute_plan(report.plan)
    print(result.makespan_ms, result.throughput_per_s)
"""

from .core.planner import Hetero2PipePlanner, PlannerConfig, PlanReport
from .hardware.soc import SOC_NAMES, get_soc
from .models.zoo import MODEL_NAMES, all_models, get_model
from .runtime.executor import ExecutionResult, execute_plan

__version__ = "1.0.0"

__all__ = [
    "Hetero2PipePlanner",
    "PlannerConfig",
    "PlanReport",
    "SOC_NAMES",
    "get_soc",
    "MODEL_NAMES",
    "all_models",
    "get_model",
    "ExecutionResult",
    "execute_plan",
    "__version__",
]
