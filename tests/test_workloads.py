"""Tests for workload generation and lightweight batching."""

import pytest

from repro.hardware.soc import get_soc
from repro.models.zoo import MODEL_NAMES, get_model
from repro.profiling.profiler import SocProfiler
from repro.workloads.batching import (
    batch_latency_model,
    batch_size_to_match,
    latency_growth_rates,
)
from repro.workloads.generator import (
    WorkloadSpec,
    arrival_times_ms,
    sample_combinations,
)


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


class TestGenerator:
    def test_count_and_sizes(self):
        specs = sample_combinations(count=50, min_size=3, max_size=8, seed=1)
        assert len(specs) == 50
        assert all(3 <= len(s) <= 8 for s in specs)

    def test_deterministic_for_seed(self):
        a = sample_combinations(count=10, seed=5)
        b = sample_combinations(count=10, seed=5)
        assert [s.model_names for s in a] == [s.model_names for s in b]

    def test_different_seeds_differ(self):
        a = sample_combinations(count=10, seed=5)
        b = sample_combinations(count=10, seed=6)
        assert [s.model_names for s in a] != [s.model_names for s in b]

    def test_models_resolve(self):
        spec = sample_combinations(count=1, seed=0)[0]
        models = spec.models()
        assert len(models) == len(spec)
        assert all(m.name in MODEL_NAMES for m in models)

    def test_without_replacement_unique(self):
        specs = sample_combinations(
            count=20, min_size=5, max_size=10, seed=2, with_replacement=False
        )
        for spec in specs:
            assert len(set(spec.model_names)) == len(spec.model_names)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_combinations(count=0)
        with pytest.raises(ValueError):
            sample_combinations(min_size=5, max_size=3)
        with pytest.raises(ValueError):
            sample_combinations(pool=[])
        with pytest.raises(ValueError):
            sample_combinations(
                min_size=11, max_size=12, with_replacement=False
            )

    def test_arrivals_spacing(self):
        times = arrival_times_ms(5, 100.0)
        assert times == [0.0, 100.0, 200.0, 300.0, 400.0]

    def test_arrivals_jitter_sorted_and_bounded(self):
        times = arrival_times_ms(10, 50.0, jitter=0.2, seed=3)
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_arrivals_invalid(self):
        with pytest.raises(ValueError):
            arrival_times_ms(3, 0.0)
        with pytest.raises(ValueError):
            arrival_times_ms(3, 10.0, jitter=1.5)
        with pytest.raises(ValueError):
            arrival_times_ms(-1, 10.0)


class TestBatching:
    def test_affine_model_matches_solo_at_batch_one(self, kirin, profiler):
        profile = profiler.profile(get_model("mobilenetv2"))
        affine = batch_latency_model(profile, kirin.cpu_big)
        solo = profile.whole_model_ms(kirin.cpu_big)
        # batch of 1 ~ solo + setup overhead
        assert affine.latency_ms(1) >= solo
        assert affine.latency_ms(1) <= solo * 1.5

    def test_latency_monotone_in_batch(self, kirin, profiler):
        profile = profiler.profile(get_model("squeezenet"))
        affine = batch_latency_model(profile, kirin.gpu)
        lats = [affine.latency_ms(b) for b in (1, 2, 4, 8, 16)]
        assert lats == sorted(lats)

    def test_per_sample_cost_decreases(self, kirin, profiler):
        profile = profiler.profile(get_model("squeezenet"))
        affine = batch_latency_model(profile, kirin.npu)
        assert affine.per_sample_ms(16) < affine.per_sample_ms(1)

    def test_invalid_batch_size(self, kirin, profiler):
        profile = profiler.profile(get_model("squeezenet"))
        affine = batch_latency_model(profile, kirin.cpu_big)
        with pytest.raises(ValueError):
            affine.latency_ms(0)

    def test_unsupported_processor_rejected(self, kirin, profiler):
        profile = profiler.profile(get_model("bert"))
        with pytest.raises(ValueError):
            batch_latency_model(profile, kirin.npu)

    def test_batch_size_to_match_closes_gap(self, kirin, profiler):
        # Appendix D: batch the light model until it fills a BERT-sized
        # stage (20-40x gap).
        light = profiler.profile(get_model("mobilenetv2"))
        heavy = profiler.profile(get_model("bert"))
        target = heavy.whole_model_ms(kirin.cpu_big)
        batch = batch_size_to_match(light, kirin.cpu_big, target)
        affine = batch_latency_model(light, kirin.cpu_big)
        assert batch > 1
        assert affine.latency_ms(batch) >= target * 0.9

    def test_batch_size_capped(self, kirin, profiler):
        light = profiler.profile(get_model("mobilenetv2"))
        batch = batch_size_to_match(light, kirin.npu, 1e9, max_batch=64)
        assert batch == 64

    def test_batch_size_invalid_target(self, kirin, profiler):
        light = profiler.profile(get_model("mobilenetv2"))
        with pytest.raises(ValueError):
            batch_size_to_match(light, kirin.cpu_big, -5.0)

    def test_growth_rates_nearly_flat(self, kirin, profiler):
        # Fig. 13: affine latency means near-constant growth rate.
        profile = profiler.profile(get_model("squeezenet"))
        rates = latency_growth_rates(
            profile, kirin.cpu_big, (1, 2, 4, 8, 16, 32)
        )
        assert max(rates) - min(rates) <= 0.3 * max(rates)

    def test_growth_rates_need_two_sizes(self, kirin, profiler):
        profile = profiler.profile(get_model("squeezenet"))
        with pytest.raises(ValueError):
            latency_growth_rates(profile, kirin.cpu_big, (4,))

    def test_measured_latency_deterministic(self, kirin, profiler):
        profile = profiler.profile(get_model("squeezenet"))
        affine = batch_latency_model(profile, kirin.cpu_big)
        assert affine.measured_latency_ms(8) == affine.measured_latency_ms(8)
