"""Table II benchmark: pairwise co-execution slowdowns."""

from repro.experiments import table2_slowdown


def test_bench_table2_slowdown(run_once):
    rows = run_once(table2_slowdown.run)
    print("\n" + table2_slowdown.render(rows))

    # Rows come in (cpu victim, gpu victim) pairs per experiment.
    sq_cpu, bert_gpu_a, vit_cpu, bert_gpu_b = rows

    # Paper magnitudes: CPU-GPU co-execution slows both sides by
    # roughly 5-30 %.
    for row in rows:
        assert 3.0 <= row.slowdown_pct <= 35.0

    # Observation 3 (the table's point): SqueezeNet hurts its BERT peer
    # more than the 70x larger ViT does.
    assert bert_gpu_a.slowdown_pct > bert_gpu_b.slowdown_pct

    # Co-execution time always exceeds solo time.
    for row in rows:
        assert row.co_ms > row.solo_ms
