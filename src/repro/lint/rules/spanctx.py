"""H2P108 — obs spans must be used as context managers.

:func:`repro.obs.span` returns a context manager; its whole contract
(the span closes on every exit path, including raises, and nesting is
derived from entry order) only holds when the call sits in a ``with``
statement.  Assigning the span to a variable and entering it manually —
or never entering it — leaks an open span into the recorder, which
corrupts the span tree and the Perfetto export.  PR 3 fixed exactly this
leak by hand in ``plan.mitigate``; this rule keeps the class of bug from
coming back.

Both call shapes are in scope: ``obs.span(...)`` via the package import
and bare ``span(...)`` when the module imported the helper from an obs
module.  Conditional expressions inside a ``with`` item are fine — the
executor's ``with (obs.span(...) if record else obs.NULL_SPAN):``
pattern keeps the call inside the context expression.

``repro.obs`` itself is exempt: it implements the helper and its
internals legitimately hold span objects.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import Finding, LintContext, LintRule, register_rule


def _exempt_module(ctx: LintContext) -> bool:
    parts = ctx.package_parts
    if not parts or parts[0] != "repro":
        return True  # only repro library code is in scope
    if len(parts) >= 2 and parts[1] == "obs":
        return True  # the implementation itself
    return False


def _span_importing_names(tree: ast.Module) -> Set[str]:
    """Local names that ``span`` was imported under from an obs module."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        module = node.module or ""
        tail = module.split(".")[-1] if module else ""
        if tail not in ("obs", "recorder"):
            continue
        for alias in node.names:
            if alias.name == "span":
                names.add(alias.asname or alias.name)
    return names


def _is_span_call(node: ast.Call, local_names: Set[str]) -> bool:
    fn = node.func
    if isinstance(fn, ast.Attribute) and fn.attr == "span":
        return isinstance(fn.value, ast.Name) and fn.value.id == "obs"
    if isinstance(fn, ast.Name):
        return fn.id in local_names
    return False


def _with_item_nodes(tree: ast.Module) -> Set[int]:
    """ids of every AST node inside a ``with`` item's context expression."""
    inside: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for child in ast.walk(item.context_expr):
                    inside.add(id(child))
    return inside


@register_rule
class SpanContextRule(LintRule):
    code = "H2P108"
    name = "span-as-context-manager"
    rationale = (
        "obs.span() must be entered via `with`, so the span closes on "
        "every exit path; a manually held span leaks into the recorder "
        "and corrupts the span tree"
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        if _exempt_module(ctx):
            return
        local_names = _span_importing_names(tree)
        sanctioned = _with_item_nodes(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_span_call(node, local_names):
                continue
            if id(node) in sanctioned:
                continue
            yield self.finding(
                ctx,
                node,
                "obs span opened outside a `with` statement; use "
                "`with obs.span(...) as sp:` so the span closes on every "
                "exit path",
            )
