#!/usr/bin/env python3
"""Fault tolerance: what happens when the NPU dies mid-run.

Real accelerators drop out — thermal shutdown, driver resets, firmware
watchdogs.  This example plans an NPU-heavy workload, then injects NPU
failures at different times and shows the executor's operator-level
fallback re-routing the pending work, with Gantt charts before and
after.

Run:
    python examples/fault_tolerance.py
"""

from repro import Hetero2PipePlanner, get_model, get_soc
from repro.runtime.executor import plan_to_chains, simulate_chains
from repro.runtime.tracing import ascii_gantt

WORKLOAD = ("vit", "resnet50", "googlenet", "inceptionv4", "mobilenetv2")


def main() -> None:
    soc = get_soc("kirin990")
    names = list(WORKLOAD)
    plan = Hetero2PipePlanner(soc).plan(
        [get_model(n) for n in names]
    ).plan
    ordered = [names[i] for i in plan.order]

    healthy = simulate_chains(soc, plan_to_chains(plan))
    print(f"healthy run: {healthy.makespan_ms:.1f} ms")
    print(ascii_gantt(healthy, ordered, width=64))

    for label, offline_at in (
        ("NPU offline from the start", 0.0),
        ("NPU dies at 1/3 of the healthy makespan", healthy.makespan_ms / 3),
    ):
        degraded = simulate_chains(
            soc,
            plan_to_chains(plan),
            processor_offline_ms={"npu": offline_at},
        )
        slowdown = degraded.makespan_ms / healthy.makespan_ms
        print(f"\n{label}: {degraded.makespan_ms:.1f} ms "
              f"({slowdown:.2f}x the healthy run)")
        print(ascii_gantt(degraded, ordered, width=64))


if __name__ == "__main__":
    main()
