"""Planner micro-benchmarks: the costs Sec. V's complexity analysis bounds.

Unlike the figure regenerations, these measure the planner's own
components with repeated rounds: the O(n^2 K) horizontal DP, the
O(|M|^3) Kuhn-Munkres mitigation and the full two-step plan.
"""

import pytest

from repro.core.assignment import kuhn_munkres
from repro.core.mitigation import mitigate_sequence
from repro.core.partition import partition_model
from repro.core.planner import Hetero2PipePlanner, PlannerConfig
from repro.hardware.soc import get_soc
from repro.models.zoo import get_model
from repro.profiling.profiler import SocProfiler


@pytest.fixture(scope="module")
def kirin():
    return get_soc("kirin990")


@pytest.fixture(scope="module")
def profiler(kirin):
    return SocProfiler(kirin)


def test_bench_horizontal_dp(benchmark, kirin, profiler):
    profile = profiler.profile(get_model("vit"))
    result = benchmark(partition_model, profile, kirin.processors)
    assert result.makespan_ms > 0


def test_bench_kuhn_munkres_16x16(benchmark):
    import random

    rng = random.Random(0)
    cost = [[rng.uniform(0, 10) for _ in range(16)] for _ in range(16)]
    pairs, total = benchmark(kuhn_munkres, cost)
    assert len(pairs) == 16


def test_bench_mitigation_sequence(benchmark):
    labels = [i % 3 == 0 for i in range(24)]
    result = benchmark(mitigate_sequence, labels, 4)
    assert sorted(result.order) == list(range(24))


def test_bench_full_planner(benchmark, kirin):
    # Caches off: pytest-benchmark re-runs the callable, so a warm plan
    # cache would turn every round after the first into a dict lookup
    # and this would stop measuring planning work.
    planner = Hetero2PipePlanner(kirin, PlannerConfig.uncached())
    models = [
        get_model(n)
        for n in ("yolov4", "bert", "squeezenet", "resnet50", "vit")
    ]
    report = benchmark(planner.plan, models)
    assert report.plan.num_requests == 5


def test_bench_full_planner_warm_cache(benchmark, kirin):
    """The cached re-plan path: one cold plan, then timed cache hits."""
    planner = Hetero2PipePlanner(kirin)
    models = [
        get_model(n)
        for n in ("yolov4", "bert", "squeezenet", "resnet50", "vit")
    ]
    planner.plan(models)  # warm the plan cache
    report = benchmark(planner.plan, models)
    assert report.plan.num_requests == 5
