#!/usr/bin/env python3
"""Contention deep dive: PMU features, the Eq. 1 regression, and what
re-ordering buys under a contention-heavy request stream.

Reproduces the motivation chain of Sec. III end to end:

1. read synthetic perf counters for every model's solo run;
2. fit the ridge regression and rank models by predicted intensity
   (finding the SqueezeNet/GoogLeNet lightweight outliers);
3. build an adversarial stream that clusters High-contention requests
   and show Algorithm 2 interleaving them.

Run:
    python examples/contention_analysis.py
"""

from repro import get_model, get_soc
from repro.core import ContentionEstimator, mitigate_sequence
from repro.models import all_models
from repro.profiling import SocProfiler, ground_truth_intensity, measure_counters


def main() -> None:
    soc = get_soc("kirin990")
    profiler = SocProfiler(soc)
    estimator = ContentionEstimator.fit_from_zoo(soc, all_models())

    print("per-model perf events and intensity (solo runs on CPU big):\n")
    print(f"  {'model':14s} {'IPC':>5s} {'miss':>6s} {'stall':>6s} "
          f"{'pred':>7s} {'truth':>7s}  label")
    rows = []
    for model in all_models():
        profile = profiler.profile(model)
        counters = measure_counters(profile, soc.cpu_big)
        score = estimator.score(profile)
        truth = ground_truth_intensity(profile, soc.cpu_big)
        rows.append((score.intensity, model.name, counters, score, truth))
    for intensity, name, c, score, truth in sorted(rows, reverse=True):
        label = "HIGH" if score.is_high else "low"
        print(f"  {name:14s} {c.ipc:5.2f} {c.cache_miss_rate:6.3f} "
              f"{c.stalled_backend:6.2f} {intensity:7.3f} {truth:7.3f}  {label}")

    # An adversarial stream: all the High-contention models up front.
    ranked = [name for _, name, *_ in sorted(rows, reverse=True)]
    stream = ranked[:3] + ranked[3:]
    labels = [
        estimator.score(profiler.profile(get_model(n))).is_high for n in stream
    ]
    k = soc.num_processors

    print(f"\nadversarial stream (K={k}): "
          f"{['H' if h else 'L' for h in labels]}")
    result = mitigate_sequence(labels, k)
    new_labels = [labels[i] for i in result.order]
    print(f"after Algorithm 2      : "
          f"{['H' if h else 'L' for h in new_labels]}")
    print(f"fully mitigated: {result.mitigated}   "
          f"moves: {len(result.moves)}   displacement cost: {result.total_cost}")
    print("execution order:", [stream[i] for i in result.order])


if __name__ == "__main__":
    main()
