"""Kuhn–Munkres (Hungarian) algorithm for the Linear Assignment Problem.

Algorithm 2 reduces contention mitigation to a min-cost assignment of
low-contention models to relocation slots (P3, Eq. 9-10) and solves it
"by the Kuhn–Munkres Algorithm in O(|M|^3)".  This is a from-scratch
implementation using the shortest-augmenting-path formulation with dual
potentials (Jonker-Volgenant style), the standard O(n^3) realization of
Kuhn–Munkres.

Forbidden pairs are expressed with ``math.inf`` costs; the solver treats
them as unassignable and raises :class:`InfeasibleAssignmentError` when
no complete finite-cost assignment of the smaller side exists.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


class InfeasibleAssignmentError(ValueError):
    """No complete assignment avoiding forbidden (infinite-cost) pairs."""


def kuhn_munkres(
    cost: Sequence[Sequence[float]],
) -> Tuple[List[Tuple[int, int]], float]:
    """Solve the rectangular linear assignment problem.

    Finds a minimum-total-cost matching that assigns every row (if
    ``n_rows <= n_cols``) or every column (otherwise) — i.e. a complete
    matching of the smaller side, like ``scipy.optimize.linear_sum_assignment``.

    Args:
        cost: 2-D cost matrix; ``math.inf`` marks forbidden pairs.

    Returns:
        ``(pairs, total)`` where ``pairs`` is a list of ``(row, col)``
        tuples sorted by row, and ``total`` their summed cost.

    Raises:
        InfeasibleAssignmentError: if forbidden pairs make a complete
            matching of the smaller side impossible.
        ValueError: on empty or ragged input.
    """
    matrix = [list(map(float, row)) for row in cost]
    if not matrix or not matrix[0]:
        raise ValueError("cost matrix must be non-empty")
    width = len(matrix[0])
    if any(len(row) != width for row in matrix):
        raise ValueError("cost matrix must be rectangular")
    for row in matrix:
        for value in row:
            if math.isnan(value):
                raise ValueError("cost matrix contains NaN")

    transposed = len(matrix) > width
    if transposed:
        matrix = [list(col) for col in zip(*matrix)]
    n = len(matrix)  # rows (small side)
    m = len(matrix[0])  # cols

    # Shortest-augmenting-path LAP with potentials.  1-indexed sentinel
    # column 0 simplifies the augmentation bookkeeping.
    INF = math.inf
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)  # match[j] = row assigned to column j (1-indexed)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        mins = [INF] * (m + 1)
        way = [0] * (m + 1)
        visited = [False] * (m + 1)
        while True:
            visited[j0] = True
            i0 = match[j0]
            row = matrix[i0 - 1]
            delta, j1 = INF, 0
            for j in range(1, m + 1):
                if visited[j]:
                    continue
                reduced = row[j - 1] - u[i0] - v[j]
                if reduced < mins[j]:
                    mins[j] = reduced
                    way[j] = j0
                if mins[j] < delta:
                    delta = mins[j]
                    j1 = j
            if math.isinf(delta):
                raise InfeasibleAssignmentError(
                    "forbidden pairs leave some row unassignable"
                )
            for j in range(m + 1):
                if visited[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    mins[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        # Augment along the alternating path back to the virtual column.
        while j0 != 0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1

    pairs: List[Tuple[int, int]] = []
    total = 0.0
    for j in range(1, m + 1):
        if match[j] != 0:
            row_idx, col_idx = match[j] - 1, j - 1
            if transposed:
                row_idx, col_idx = col_idx, row_idx
            value = cost[row_idx][col_idx]
            if math.isinf(value):
                raise InfeasibleAssignmentError(
                    "optimal matching uses a forbidden pair"
                )
            pairs.append((row_idx, col_idx))
            total += value
    pairs.sort()
    return pairs, total


def assignment_cost(
    cost: Sequence[Sequence[float]], pairs: Sequence[Tuple[int, int]]
) -> float:
    """Total cost of a given assignment (validation helper)."""
    return sum(cost[i][j] for i, j in pairs)
