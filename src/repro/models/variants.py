"""Parameterized architecture families (depth / width variants).

The evaluation zoo pins each architecture at its published size; this
module exposes the families as generators so studies can sweep model
scale — e.g. how partition shape changes from ResNet-18 to ResNet-101,
or how a 6-layer DistilBERT pipelines differently from BERT-base.

Variants are plain :class:`~repro.models.ir.ModelGraph` objects built
with the same block helpers as the zoo, so every planner feature works
on them unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from . import flops as F
from .ir import Layer, ModelGraph, OpType
from .zoo import (
    _bottleneck_block,
    _conv_layer,
    _fc_layer,
    _pool_layer,
    _transformer_encoder_block,
)

#: Residual-stage block counts per published ResNet depth.
_RESNET_STAGES: Dict[int, Tuple[int, int, int, int]] = {
    18: (2, 2, 2, 2),
    34: (3, 4, 6, 3),
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}

#: Conv counts per VGG stage for the published depths.
_VGG_STAGES: Dict[int, Tuple[int, ...]] = {
    11: (1, 1, 2, 2, 2),
    13: (2, 2, 2, 2, 2),
    16: (2, 2, 3, 3, 3),
    19: (2, 2, 4, 4, 4),
}


def build_resnet(depth: int = 50) -> ModelGraph:
    """A ResNet of any published depth (18/34/50/101/152).

    Depths below 50 use basic blocks in the published architecture; for
    slicing purposes we keep the fused-bottleneck representation with
    proportional cost, which preserves per-stage FLOP totals within a
    few percent.

    Raises:
        KeyError: for unpublished depths.
    """
    if depth not in _RESNET_STAGES:
        raise KeyError(
            f"unknown ResNet depth {depth}; options: {sorted(_RESNET_STAGES)}"
        )
    counts = _RESNET_STAGES[depth]
    layers: List[Layer] = []
    layer, dim = _conv_layer("stem_conv", 3, 64, 7, 224, 2, 3)
    layers.append(layer)
    pool, dim = _pool_layer("stem_pool", 64, dim, 3, 2, 1)
    layers.append(pool)
    stage_params = [
        (counts[0], 64, 256, 1),
        (counts[1], 128, 512, 2),
        (counts[2], 256, 1024, 2),
        (counts[3], 512, 2048, 2),
    ]
    in_ch = 64
    for stage_no, (count, mid, out, first_stride) in enumerate(
        stage_params, start=2
    ):
        for rep in range(count):
            stride = first_stride if rep == 0 else 1
            block, dim = _bottleneck_block(
                f"res{stage_no}_{rep + 1}", in_ch, mid, out, dim, stride
            )
            layers.append(block)
            in_ch = out
    pool, dim = _pool_layer("global_pool", in_ch, dim, dim, 1)
    layers.append(pool)
    layers.append(_fc_layer("fc", in_ch, 1000))
    return ModelGraph(
        name=f"resnet{depth}",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


def build_vgg(depth: int = 16) -> ModelGraph:
    """A VGG of any published depth (11/13/16/19).

    Raises:
        KeyError: for unpublished depths.
    """
    if depth not in _VGG_STAGES:
        raise KeyError(
            f"unknown VGG depth {depth}; options: {sorted(_VGG_STAGES)}"
        )
    stage_counts = _VGG_STAGES[depth]
    channels_per_stage = (64, 128, 256, 512, 512)
    layers: List[Layer] = []
    dim = 224
    in_ch = 3
    for stage_no, (channels, count) in enumerate(
        zip(channels_per_stage, stage_counts), start=1
    ):
        for rep in range(count):
            layer, dim = _conv_layer(
                f"conv{stage_no}_{rep + 1}", in_ch, channels, 3, dim, 1, 1
            )
            layers.append(layer)
            in_ch = channels
        pool, dim = _pool_layer(f"pool{stage_no}", channels, dim, 2, 2)
        layers.append(pool)
    feat = in_ch * dim * dim
    layers.append(_fc_layer("fc6", feat, 4096))
    layers.append(_fc_layer("fc7", 4096, 4096))
    layers.append(_fc_layer("fc8", 4096, 1000))
    return ModelGraph(
        name=f"vgg{depth}",
        layers=tuple(layers),
        family="cnn",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )


def build_bert_variant(
    num_layers: int = 12,
    hidden: int = 768,
    seq_len: int = 128,
    name: str | None = None,
) -> ModelGraph:
    """A BERT-family encoder of configurable depth/width.

    ``num_layers=6, hidden=768`` approximates DistilBERT;
    ``num_layers=24, hidden=1024`` approximates BERT-large.  Masked
    attention keeps every variant NPU-incompatible, like the base model.

    Raises:
        ValueError: for non-positive dimensions.
    """
    if num_layers < 1 or hidden < 1 or seq_len < 1:
        raise ValueError("num_layers, hidden and seq_len must be positive")
    heads = max(1, hidden // 64)
    intermediate = hidden * 4
    vocab = 30522
    layers: List[Layer] = [
        Layer(
            name="embedding",
            op=OpType.EMBEDDING,
            flops=F.elementwise_flops(seq_len, hidden) * 3,
            weight_bytes=F.tensor_bytes(vocab, hidden)
            + F.tensor_bytes(512, hidden),
            activation_bytes=2 * F.tensor_bytes(seq_len, hidden),
            output_bytes=F.tensor_bytes(seq_len, hidden),
            output_shape=(seq_len, hidden),
        )
    ]
    for i in range(num_layers):
        layers.append(
            _transformer_encoder_block(
                f"encoder{i + 1}", seq_len, hidden, heads, intermediate,
                masked=True,
            )
        )
    layers.append(_fc_layer("pooler", hidden, hidden))
    return ModelGraph(
        name=name or f"bert_l{num_layers}_h{hidden}",
        layers=tuple(layers),
        family="transformer",
        input_bytes=F.tensor_bytes(seq_len) * 2,
    )


def build_vit_variant(
    num_layers: int = 12,
    hidden: int = 768,
    patch: int = 16,
    name: str | None = None,
) -> ModelGraph:
    """A ViT-family encoder of configurable depth/width/patch size.

    ``num_layers=12, hidden=192`` approximates ViT-Tiny;
    ``num_layers=24, hidden=1024`` approximates ViT-Large.

    Raises:
        ValueError: for invalid dimensions.
    """
    if num_layers < 1 or hidden < 1:
        raise ValueError("num_layers and hidden must be positive")
    if 224 % patch != 0:
        raise ValueError("patch size must divide 224")
    seq_len = (224 // patch) ** 2 + 1
    heads = max(1, hidden // 64)
    intermediate = hidden * 4
    patch_embed, _ = _conv_layer("patch_embed", 3, hidden, patch, 224, patch, 0)
    layers: List[Layer] = [patch_embed]
    for i in range(num_layers):
        layers.append(
            _transformer_encoder_block(
                f"encoder{i + 1}", seq_len, hidden, heads, intermediate,
                masked=False,
            )
        )
    layers.append(_fc_layer("head", hidden, 1000))
    return ModelGraph(
        name=name or f"vit_l{num_layers}_h{hidden}_p{patch}",
        layers=tuple(layers),
        family="transformer",
        input_bytes=F.tensor_bytes(3, 224, 224),
    )
