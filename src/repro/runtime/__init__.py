"""Pipeline execution substrate: timetables, event simulation, metrics."""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrival_process,
    resolve_arrivals,
)
from .engine import EVENT_KINDS, DiscreteEventEngine, Event
from .executor import (
    ChainTask,
    ExecutionResult,
    PipelineExecutor,
    TaskRecord,
    TracePoint,
    execute_plan,
    plan_to_chains,
    simulate_chains,
)
from .metrics import ComparisonMatrix, Scheme, compare_schemes, standard_schemes
from .replay import (
    IdleGap,
    Timeline,
    build_timeline,
    concurrency_profile,
    critical_chain,
    utilization_summary,
)
from .tracing import ascii_gantt, to_chrome_trace, write_chrome_trace
from .schedule import (
    DiagonalCell,
    DiagonalColumn,
    SynchronousSchedule,
    async_makespan_ms,
    build_schedule,
    plan_bubbles_ms,
    plan_makespan_ms,
    tail_bubble_ms,
)

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "TraceArrivals",
    "make_arrival_process",
    "resolve_arrivals",
    "DiscreteEventEngine",
    "Event",
    "EVENT_KINDS",
    "ChainTask",
    "ExecutionResult",
    "PipelineExecutor",
    "TaskRecord",
    "TracePoint",
    "execute_plan",
    "plan_to_chains",
    "simulate_chains",
    "ComparisonMatrix",
    "IdleGap",
    "Timeline",
    "build_timeline",
    "concurrency_profile",
    "critical_chain",
    "utilization_summary",
    "Scheme",
    "compare_schemes",
    "standard_schemes",
    "ascii_gantt",
    "to_chrome_trace",
    "write_chrome_trace",
    "DiagonalCell",
    "DiagonalColumn",
    "SynchronousSchedule",
    "async_makespan_ms",
    "build_schedule",
    "plan_bubbles_ms",
    "plan_makespan_ms",
    "tail_bubble_ms",
]
