"""Fig. 9 benchmark: memory frequency and footprint traces."""

from repro.experiments import fig9_memory
from repro.hardware.soc import get_soc


def test_bench_fig9_memory_traces(run_once):
    traces = run_once(fig9_memory.run)
    print("\n" + fig9_memory.render(traces))

    soc = get_soc("kirin990")
    by_label = {t.label: t for t in traces}

    # NPU-only execution never demands the max memory state...
    assert (
        by_label["npu_only_lightweight"].max_freq_mhz
        < soc.memory_freq_mhz[-1]
    )
    # ...but CPU/GPU pipelines pin the controller to the maximum.
    for label in ("two_stage_medium", "three_stage_large", "mixed_all_tiers"):
        assert by_label[label].max_freq_mhz == soc.memory_freq_mhz[-1]

    # Available memory drains with pipeline size: from the ~2.5 GB
    # initial headroom down toward the paper's few-hundred-MB regime.
    lightweight = by_label["npu_only_lightweight"].min_available_bytes
    large = by_label["three_stage_large"].min_available_bytes
    assert large < lightweight
    assert large < 1.6e9
    assert lightweight > 2.0e9
